//! Quickstart: Mr. Smith's errand (the paper's §1 motivating example).
//!
//! Mr. Smith is new in town. He wants to visit a post office first, then
//! a restaurant, walking as little as possible. Post offices and
//! restaurants are broadcast on two wireless channels; his phone listens
//! to both simultaneously and answers the transitive nearest-neighbor
//! query on air.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use tnn::prelude::*;
use tnn_datasets::uniform_points;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10 km × 10 km city with 400 post offices and 1,200 restaurants.
    let city = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
    let post_offices = uniform_points(400, &city, 1);
    let restaurants = uniform_points(1_200, &city, 2);

    // The broadcast server packs each dataset into an R-tree (STR, as in
    // the paper) and schedules a (1, m) interleaved program per channel.
    let params = BroadcastParams::new(64);
    let s_tree = Arc::new(RTree::build(
        &post_offices,
        params.rtree_params(),
        PackingAlgorithm::Str,
    )?);
    let r_tree = Arc::new(RTree::build(
        &restaurants,
        params.rtree_params(),
        PackingAlgorithm::Str,
    )?);
    println!(
        "channel 1: {} post offices, index {} pages; channel 2: {} restaurants, index {} pages",
        s_tree.num_objects(),
        s_tree.num_nodes(),
        r_tree.num_objects(),
        r_tree.num_nodes(),
    );

    // Two channels with arbitrary phases (Mr. Smith tunes in at a random
    // moment of each program), behind one query engine.
    let env = MultiChannelEnv::new(vec![s_tree, r_tree], params, &[1_234, 56_789]);
    let engine = QueryEngine::new(env);

    // Mr. Smith stands at the station and asks for the best errand.
    let here = Point::new(4_200.0, 5_100.0);
    println!("\nMr. Smith is at ({:.0}, {:.0})\n", here.x, here.y);

    for alg in [
        Algorithm::WindowBased,
        Algorithm::ApproximateTnn,
        Algorithm::DoubleNn,
        Algorithm::HybridNn,
    ] {
        let run = engine.run(&Query::tnn(here).algorithm(alg))?;
        match run.tnn_pair() {
            Some(pair) => println!(
                "{:18} post office #{} then restaurant #{} — walk {:7.1} m | access {:6} pages, tune-in {:4} pages",
                alg.name(),
                pair.s.1,
                pair.r.1,
                pair.dist,
                run.access_time(),
                run.tune_in(),
            ),
            None => println!("{:18} failed to find an answer", alg.name()),
        }
    }

    // Sanity: the exact oracle agrees.
    let oracle = exact_tnn(
        here,
        engine.env().channel(0).tree(),
        engine.env().channel(1).tree(),
    );
    println!("\nexact oracle: {:.1} m", oracle.dist);
    Ok(())
}
