//! City tour over skewed geography: runs TNN queries against the CITY
//! and POST stand-in datasets (the clustered workloads behind the
//! paper's Table 3) and shows *why* Approximate-TNN fails on them while
//! the index-based algorithms never do.
//!
//! ```sh
//! cargo run --release --example city_tour
//! ```

use std::sync::Arc;
use tnn::prelude::*;
use tnn_core::approximate_radius_for_env;
use tnn_datasets::{city_like, paper_region, post_like};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating clustered datasets (CITY ≈ 6k points, POST ≈ 124k points)…");
    let city = city_like(0xC17);
    let post = post_like(0x9057);

    let params = BroadcastParams::new(64);
    let s_tree = Arc::new(RTree::build(
        &city,
        params.rtree_params(),
        PackingAlgorithm::Str,
    )?);
    let r_tree = Arc::new(RTree::build(
        &post,
        params.rtree_params(),
        PackingAlgorithm::Str,
    )?);
    println!(
        "CITY index: {} pages (height {}); POST index: {} pages (height {})",
        s_tree.num_nodes(),
        s_tree.height(),
        r_tree.num_nodes(),
        r_tree.height(),
    );
    let engine = QueryEngine::new(MultiChannelEnv::new(
        vec![s_tree, r_tree],
        params,
        &[7, 99_999],
    ));
    println!(
        "Approximate-TNN would use the uniformity radius {:.0} m everywhere\n",
        approximate_radius_for_env(&engine.env())
    );

    // Tour a line of query points crossing clusters and voids.
    let region = paper_region();
    let mut approx_failures = 0;
    let steps = 12;
    for i in 0..steps {
        let t = i as f64 / (steps - 1) as f64;
        let p = Point::new(
            region.min.x + t * region.width(),
            region.min.y + (1.0 - t) * region.height() * 0.8 + 0.1 * region.height(),
        );
        let hybrid = engine.run(&Query::tnn(p).algorithm(Algorithm::HybridNn))?;
        let approx = engine.run(&Query::tnn(p).algorithm(Algorithm::ApproximateTnn))?;
        let env = engine.env();
        let oracle = exact_tnn(p, env.channel(0).tree(), env.channel(1).tree());
        let hybrid_dist = hybrid.total_dist.expect("hybrid never fails");
        assert!((hybrid_dist - oracle.dist).abs() < 1e-6);

        let approx_verdict = match approx.total_dist {
            Some(dist) if (dist - oracle.dist).abs() < 1e-6 => "ok".to_string(),
            Some(dist) => {
                approx_failures += 1;
                format!("WRONG (+{:.0} m)", dist - oracle.dist)
            }
            None => {
                approx_failures += 1;
                "NO ANSWER".to_string()
            }
        };
        println!(
            "({:6.0},{:6.0})  true detour {:8.0} m | hybrid radius {:7.0}, tune-in {:4} | approx: {}",
            p.x,
            p.y,
            oracle.dist,
            hybrid.search_radius,
            hybrid.tune_in(),
            approx_verdict,
        );
    }
    println!(
        "\nApproximate-TNN failed {approx_failures}/{steps} tour stops; Hybrid-NN failed 0 (Theorem 1)."
    );
    Ok(())
}
