//! Chained TNN over more than two datasets — the paper's future-work
//! item 1, served by the k-ary core pipeline (`Query::chain`):
//! pharmacy → florist → restaurant, each category on its own broadcast
//! channel, visited in order with minimum total walking distance.
//!
//! ```sh
//! cargo run --release --example multi_dataset_route
//! ```

use std::sync::Arc;
use tnn::prelude::*;
use tnn_core::exact_chain_tnn;
use tnn_datasets::uniform_points;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let city = Rect::from_coords(0.0, 0.0, 8_000.0, 8_000.0);
    let categories = [
        ("pharmacies", 150usize),
        ("florists", 90),
        ("restaurants", 400),
    ];

    let params = BroadcastParams::new(64);
    let mut trees = Vec::new();
    for (i, (name, n)) in categories.iter().enumerate() {
        let pts = uniform_points(*n, &city, 0xF10 + i as u64);
        let tree = Arc::new(RTree::build(
            &pts,
            params.rtree_params(),
            PackingAlgorithm::Str,
        )?);
        println!(
            "channel {i}: {n} {name}, index {} pages, cycle-relevant height {}",
            tree.num_nodes(),
            tree.height()
        );
        trees.push(tree);
    }
    let engine = QueryEngine::new(MultiChannelEnv::new(trees, params, &[100, 2_000, 30_000]));

    let home = Point::new(3_900.0, 4_100.0);
    println!("\nstarting at ({:.0}, {:.0})", home.x, home.y);

    // One chained query over all three channels — the engine treats the
    // channel count as a first-class parameter.
    let run = engine.run(&Query::chain(home).ann(AnnMode::Exact))?;
    let total = run.total_dist.expect("chained estimates are feasible");
    println!(
        "\nbest route ({} stops, total {:.1} m, radius {:.1} m):",
        run.route.len(),
        total,
        run.search_radius,
    );
    let mut at = home;
    for (i, stop) in run.route.iter().enumerate() {
        println!(
            "  {}. {} #{} at ({:6.0},{:6.0})  — leg {:7.1} m (channel {})",
            i + 1,
            categories[i].0.trim_end_matches('s'),
            stop.object,
            stop.point.x,
            stop.point.y,
            at.dist(stop.point),
            stop.channel,
        );
        at = stop.point;
    }
    println!(
        "\ncosts: access {} pages, tune-in {} pages across {} channels",
        run.access_time(),
        run.tune_in(),
        run.channels.len(),
    );

    // The broadcast answer matches the in-memory oracle.
    let env = engine.env();
    let oracle_trees: Vec<&RTree> = env.channels().iter().map(|c| c.tree()).collect();
    let (_, oracle_total) = exact_chain_tnn(home, &oracle_trees);
    assert!((total - oracle_total).abs() < 1e-6);
    println!("verified against the exact chain oracle ({oracle_total:.1} m).");
    Ok(())
}
