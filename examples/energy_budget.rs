//! Energy budgeting with the ANN optimization (paper §5): shows the
//! tune-in / search-radius trade-off as the dynamic-α factor grows, and
//! that the final answer never changes (Theorem 1).
//!
//! Tune-in time is the paper's proxy for battery drain: every downloaded
//! page costs receiver energy, so a dispatcher planning thousands of
//! queries per charge wants the smallest page budget that still returns
//! exact answers.
//!
//! ```sh
//! cargo run --release --example energy_budget
//! ```

use std::sync::Arc;
use tnn::prelude::*;
use tnn_datasets::{paper_region, unif, uniform_points};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's UNIF(-5.0) workload on both channels.
    let params = BroadcastParams::new(64);
    let s_tree = Arc::new(RTree::build(
        &unif(-5.0, 1),
        params.rtree_params(),
        PackingAlgorithm::Str,
    )?);
    let r_tree = Arc::new(RTree::build(
        &unif(-5.0, 2),
        params.rtree_params(),
        PackingAlgorithm::Str,
    )?);
    let engine = QueryEngine::new(MultiChannelEnv::new(vec![s_tree, r_tree], params, &[0, 0]));

    let queries = uniform_points(200, &paper_region(), 77);

    println!("Double-NN on UNIF(-5.0) × UNIF(-5.0), 200 queries, 64-byte pages\n");
    println!(
        "{:>10} | {:>14} | {:>14} | {:>12} | {:>8}",
        "α factor", "est. pages", "filter pages", "radius [m]", "exact?"
    );
    for factor in [0.0, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let mode = if factor == 0.0 {
            AnnMode::Exact
        } else {
            AnnMode::Dynamic { factor }
        };
        let mut est = 0u64;
        let mut filter = 0u64;
        let mut radius = 0.0f64;
        let mut all_exact = true;
        for (i, &q) in queries.iter().enumerate() {
            let run = engine.run(
                &Query::tnn(q)
                    .algorithm(Algorithm::DoubleNn)
                    .ann_modes(&[mode, mode])
                    .issued_at(i as u64 * 131),
            )?;
            est += run.tune_in_estimate();
            filter += run.tune_in_filter();
            radius += run.search_radius;
            let oracle = exact_tnn(
                q,
                engine.env().channel(0).tree(),
                engine.env().channel(1).tree(),
            );
            let dist = run.total_dist.expect("exact algorithms always answer");
            all_exact &= (dist - oracle.dist).abs() < 1e-6;
        }
        let n = queries.len() as f64;
        println!(
            "{:>10} | {:>14.1} | {:>14.1} | {:>12.1} | {:>8}",
            if factor == 0.0 {
                "eNN".to_string()
            } else {
                format!("{factor}")
            },
            est as f64 / n,
            filter as f64 / n,
            radius / n,
            if all_exact { "yes" } else { "NO" },
        );
        assert!(all_exact, "ANN must never change the answer (Theorem 1)");
    }
    println!(
        "\nLarger factors buy a cheaper estimate phase with a bigger filter radius;\n\
         the answer stays exact because the radius always comes from a feasible pair."
    );
    Ok(())
}
