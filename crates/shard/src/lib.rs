//! # tnn-shard
//!
//! Spatially-sharded scatter-gather serving for transitive
//! nearest-neighbor queries, with hot-shard replication.
//!
//! One [`tnn_serve::Server`] scales by workers; this crate scales by
//! *data*: [`ShardPlan`] splits every channel's dataset into spatial
//! shards (a uniform grid, or the top-level split of a probe R-tree —
//! [`Partition`]), [`ShardRouter`] runs one server pool per shard and
//! answers each query by **scatter → prune → gather → merge**:
//!
//! 1. **Scatter** the query to shard-local servers. Each eligible shard
//!    (one holding objects of every channel) answers over its own slice;
//!    any shard-local route is globally feasible, so the best sub-total
//!    is a valid transitive bound `B` on the true optimum. Shards whose
//!    MBR lies entirely beyond the current bound are pruned before they
//!    are ever contacted ([`tnn_geom::Rect::min_dist_sq`], the same
//!    arithmetic the in-tree search prunes with).
//! 2. **Gather** every candidate within the `B`-circle around the query
//!    point from every shard sub-tree — Theorem 1 of the paper, applied
//!    at the cluster level, guarantees the circle contains every stop of
//!    the optimal route.
//! 3. **Merge** the per-channel layers through
//!    [`tnn_core::merge_route_layers`] — the *same* k-layer sweep join
//!    every unsharded pipeline ends in — so the final route and total
//!    are **byte-identical** to an unsharded
//!    [`tnn_core::QueryEngine::run`] (gated across shard counts,
//!    replication factors, all four algorithms, and every query kind in
//!    `crates/bench/tests/shard_equivalence.rs`).
//!
//! **Hot-shard replication**: each shard starts with one replica; when a
//! shard's observed share of routed sub-queries exceeds a configurable
//! multiple of the fair share, the router spawns another replica (up to
//! [`ShardConfig::replication`]) and routes every sub-query to the
//! replica with the shallowest queue — skewed workloads stop queueing
//! behind one server without any re-partitioning.
//!
//! Like the rest of the workspace this crate is dependency-free:
//! `std::thread` workers under the shard servers, `std::sync` for the
//! replica sets, no async runtime.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod partition;
mod router;
mod stats;

pub use config::{Partition, ShardConfig};
pub use partition::ShardPlan;
pub use router::{ShardOutcome, ShardRouter};
pub use stats::ShardStats;
