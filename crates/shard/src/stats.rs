//! Router-level counters, folded with the per-replica serving stats.

use tnn_serve::ServeStats;

/// A snapshot of one [`crate::ShardRouter`]'s activity: scatter-gather
/// counters plus the [`ServeStats::fold`] of every shard replica's
/// serving counters.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Queries accepted by [`crate::ShardRouter::run`] (before
    /// validation; failed validations count too).
    pub queries: u64,
    /// Sub-queries admitted by shard servers during scatter.
    pub scattered: u64,
    /// Sub-queries a shard server refused at the door (full lane under
    /// `Backpressure::Reject`, or shutdown). The route is still exact —
    /// a refused shard just cannot tighten the gather bound.
    pub scatter_rejected: u64,
    /// Admitted sub-queries that resolved to an error (cancelled,
    /// expired, …) instead of a bound-tightening outcome.
    pub scatter_errors: u64,
    /// Shards skipped in the scatter phase because the transitive bound
    /// proved they cannot improve the best-known route.
    pub scatter_pruned: u64,
    /// `(shard, channel)` sub-trees actually range-searched in the
    /// gather phase.
    pub gather_probed: u64,
    /// `(shard, channel)` sub-trees skipped in the gather phase because
    /// their root MBR lies entirely outside the gather circle.
    pub gather_pruned: u64,
    /// Queries that found no eligible shard (no single shard holds all
    /// `k` channels) and fell back to a locally computed gather bound.
    pub fallbacks: u64,
    /// Extra replicas spawned by hot-shard scale-up (beyond the one
    /// every eligible shard starts with).
    pub replicas_spawned: u64,
    /// Environment swaps published through
    /// [`crate::ShardRouter::swap_env`] — each one re-partitions the
    /// data and replaces every shard's replica set.
    pub env_swaps: u64,
    /// Replicas drained and retired by environment swaps. Their serving
    /// counters are *not* lost: each retiree's final stats fold into
    /// [`ShardStats::serve`] alongside the live replicas'.
    pub retired_replicas: u64,
    /// [`ServeStats::fold`] over every replica of every shard — the live
    /// ones plus every replica retired by an environment swap.
    pub serve: ServeStats,
}

impl ShardStats {
    /// Fraction of gather sub-tree visits avoided by MBR pruning, in
    /// `[0, 1]` (`0.0` when nothing was gathered yet).
    pub fn gather_prune_rate(&self) -> f64 {
        let total = self.gather_probed + self.gather_pruned;
        if total == 0 {
            0.0
        } else {
            self.gather_pruned as f64 / total as f64
        }
    }

    /// The sharded conservation invariant: the folded serving stats
    /// conserve tickets, every scatter submission the router made is
    /// accounted for by the shard servers
    /// (`serve.submitted = scattered + scatter_rejected`), errored
    /// sub-queries are a subset of admitted ones, fallbacks are a
    /// subset of queries, and replicas retire only through environment
    /// swaps (`retired_replicas == 0 || env_swaps > 0`) — the folded
    /// serving stats span retirees and live replicas alike, so a swap
    /// can never drop or double-count pre-swap completions.
    pub fn conserved(&self) -> bool {
        self.serve.conserved()
            && self.serve.submitted == self.scattered + self.scatter_rejected
            && self.scatter_errors <= self.scattered
            && self.fallbacks <= self.queries
            && (self.retired_replicas == 0 || self.env_swaps > 0)
    }

    /// Adds `other`'s counters (and folded serving stats) into `self` —
    /// aggregation across routers, mirroring [`ServeStats::merge`].
    /// Every [`ShardStats::conserved`] clause is linear or a sum-side
    /// inequality, so merging conserved snapshots yields a conserved
    /// result.
    pub fn merge(&mut self, other: &ShardStats) {
        self.queries += other.queries;
        self.scattered += other.scattered;
        self.scatter_rejected += other.scatter_rejected;
        self.scatter_errors += other.scatter_errors;
        self.scatter_pruned += other.scatter_pruned;
        self.gather_probed += other.gather_probed;
        self.gather_pruned += other.gather_pruned;
        self.fallbacks += other.fallbacks;
        self.replicas_spawned += other.replicas_spawned;
        self.env_swaps += other.env_swaps;
        self.retired_replicas += other.retired_replicas;
        self.serve.merge(&other.serve);
    }

    /// [`ShardStats::merge`] over any number of snapshots.
    pub fn fold<'a>(snapshots: impl IntoIterator<Item = &'a ShardStats>) -> ShardStats {
        let mut acc = ShardStats::default();
        for snapshot in snapshots {
            acc.merge(snapshot);
        }
        acc
    }

    /// Publishes this snapshot into `registry`: the scatter-gather
    /// counters under `tnn_shard_*`, then the folded fleet serving
    /// stats through [`ServeStats::publish_metrics`] (so the
    /// `tnn_serve_*` series of a sharded deployment aggregate every
    /// replica, retirees included). All fields only ever grow on a live
    /// router, so repeated publications are monotone.
    pub fn publish_metrics(&self, registry: &tnn_trace::MetricsRegistry) {
        registry.counter(
            "tnn_shard_queries_total",
            "Queries accepted by the shard router",
            self.queries,
        );
        registry.counter(
            "tnn_shard_scattered_total",
            "Sub-queries admitted by shard servers during scatter",
            self.scattered,
        );
        registry.counter(
            "tnn_shard_scatter_rejected_total",
            "Sub-queries refused at a shard server's door",
            self.scatter_rejected,
        );
        registry.counter(
            "tnn_shard_scatter_errors_total",
            "Admitted sub-queries that resolved to an error",
            self.scatter_errors,
        );
        registry.counter(
            "tnn_shard_scatter_pruned_total",
            "Shards skipped by the transitive scatter bound",
            self.scatter_pruned,
        );
        registry.counter(
            "tnn_shard_gather_probed_total",
            "(shard, channel) sub-trees range-searched in the gather phase",
            self.gather_probed,
        );
        registry.counter(
            "tnn_shard_gather_pruned_total",
            "(shard, channel) sub-trees skipped by root-MBR pruning",
            self.gather_pruned,
        );
        registry.counter(
            "tnn_shard_fallbacks_total",
            "Queries that fell back to a locally computed gather bound",
            self.fallbacks,
        );
        registry.counter(
            "tnn_shard_replicas_spawned_total",
            "Extra replicas spawned by hot-shard scale-up",
            self.replicas_spawned,
        );
        registry.counter(
            "tnn_shard_env_swaps_total",
            "Environment swaps published through the router",
            self.env_swaps,
        );
        registry.counter(
            "tnn_shard_retired_replicas_total",
            "Replicas drained and retired by environment swaps",
            self.retired_replicas,
        );
        self.serve.publish_metrics(registry);
    }
}
