//! Spatial partitioning of a multi-channel environment into shards.
//!
//! Every channel's dataset is split by the *same* set of partition cells
//! — a shard holds one sub-tree per channel. The broadcast layout
//! requires each tree's [`ObjectId`]s to be dense (`0..n`), so shard
//! sub-trees are bulk-loaded with dense *local* ids and the plan keeps a
//! per-shard, per-channel remap table back to the original ids — the
//! gather phase restores them, so a sharded answer is comparable
//! stop-for-stop with an unsharded one. The cells come from either a
//! uniform grid over the
//! union region ([`Partition::Grid`]) or the top-level split of a probe
//! R-tree over all channels' points ([`Partition::TopLevel`], via
//! [`RTree::top_level_partitions`]).
//!
//! Assignment is deterministic: a point joins the lowest-indexed cell
//! that contains it, falling back to the cell with the smallest
//! [`Rect::min_dist_sq`] when no cell does (possible only for
//! [`Partition::TopLevel`], whose cells need not tile the plane).

use crate::config::{Partition, ShardConfig};
use std::sync::Arc;
use tnn_broadcast::{Channel, MultiChannelEnv};
use tnn_geom::{Point, Rect};
use tnn_rtree::{ObjectId, RTree};

/// One shard: a full `k`-channel sub-environment plus the routing
/// metadata the scatter-gather layer prunes with.
#[derive(Debug, Clone)]
struct ShardData {
    /// The shard's own `k`-channel environment — same broadcast
    /// parameters and phases as the source, one sub-tree per channel
    /// (empty channels are represented by [`RTree::empty`]).
    env: MultiChannelEnv,
    /// Union of the non-empty sub-trees' root MBRs — the tightest
    /// rectangle enclosing every object the shard holds (`None` for an
    /// entirely empty shard).
    mbr: Option<Rect>,
    /// Whether every channel of the shard is non-empty — only such
    /// shards can answer a whole `k`-hop sub-query on their own.
    eligible: bool,
    /// Per channel: shard-local [`ObjectId`] (dense, the sub-tree's own)
    /// → the object's id in the source channel tree.
    remaps: Vec<Vec<ObjectId>>,
}

/// The partitioning of one [`MultiChannelEnv`] into shards: the cells,
/// the per-shard sub-environments, and the per-shard routing metadata.
///
/// Built once per environment epoch by [`ShardPlan::build`]; the
/// [`crate::ShardRouter`] prunes and scatters against it on every query
/// (and builds a fresh plan when [`crate::ShardRouter::swap_env`]
/// publishes a new environment). Cloning is cheap-ish — trees are
/// shared [`Arc`]s; only the remap tables copy.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    k: usize,
    cells: Vec<Rect>,
    shards: Vec<ShardData>,
    eligible: Vec<usize>,
}

impl ShardPlan {
    /// Partitions `env` into shards per `config`.
    ///
    /// Every object of every channel lands in exactly one shard, with
    /// its original [`ObjectId`] preserved. A zero-channel environment
    /// yields a zero-shard plan (the router rejects its queries before
    /// ever touching the plan).
    pub fn build(env: &MultiChannelEnv, config: &ShardConfig) -> ShardPlan {
        let k = env.len();
        if k == 0 {
            return ShardPlan {
                k,
                cells: Vec::new(),
                shards: Vec::new(),
                eligible: Vec::new(),
            };
        }
        let params = *env.channel(0).params();
        let phases: Vec<u64> = env.channels().iter().map(Channel::phase).collect();
        let per_channel: Vec<Vec<(Point, ObjectId)>> = env
            .channels()
            .iter()
            .map(|c| c.tree().objects_in_leaf_order().collect())
            .collect();

        let cells = match config.partition {
            Partition::Grid => grid_cells(union_region(env), config.shards.max(1)),
            Partition::TopLevel => top_level_cells(env, &per_channel),
        };

        let mut buckets: Vec<Vec<Vec<(Point, ObjectId)>>> =
            (0..cells.len()).map(|_| vec![Vec::new(); k]).collect();
        for (c, objects) in per_channel.iter().enumerate() {
            for &(point, object) in objects {
                buckets[assign(&cells, point)][c].push((point, object));
            }
        }

        let shards: Vec<ShardData> = buckets
            .into_iter()
            .map(|channels| {
                let remaps: Vec<Vec<ObjectId>> = channels
                    .iter()
                    .map(|objects| objects.iter().map(|&(_, id)| id).collect())
                    .collect();
                let trees: Vec<Arc<RTree>> = channels
                    .iter()
                    .zip(env.channels())
                    .map(|(objects, channel)| {
                        let source = channel.tree();
                        if objects.is_empty() {
                            Arc::new(RTree::empty(source.params()))
                        } else {
                            // Dense local ids (the bucket position) keep
                            // the broadcast layout's O(1) id → slot map
                            // valid; `remaps` restores the originals.
                            let points: Vec<Point> =
                                objects.iter().map(|&(point, _)| point).collect();
                            Arc::new(
                                RTree::build(&points, source.params(), source.packing())
                                    // check:allow(R2, plan construction is pre-serving — a malformed bucket must abort the build, not limp into traffic)
                                    .expect("a non-empty bucket bulk-loads"),
                            )
                        }
                    })
                    .collect();
                let mbr = trees
                    .iter()
                    .filter(|t| t.num_objects() > 0)
                    .map(|t| t.root_mbr())
                    .reduce(|a, b| a.union(&b));
                let eligible = trees.iter().all(|t| t.num_objects() > 0);
                let env = MultiChannelEnv::new(trees, params, &phases);
                ShardData {
                    env,
                    mbr,
                    eligible,
                    remaps,
                }
            })
            .collect();
        let eligible = (0..shards.len()).filter(|&i| shards[i].eligible).collect();
        ShardPlan {
            k,
            cells,
            shards,
            eligible,
        }
    }

    /// Number of channels the plan was built over.
    pub fn channels(&self) -> usize {
        self.k
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The partition cells, in shard order.
    pub fn cells(&self) -> &[Rect] {
        &self.cells
    }

    /// Shard `i`'s sub-environment.
    pub fn shard_env(&self, i: usize) -> &MultiChannelEnv {
        &self.shards[i].env
    }

    /// Shard `i`'s channel-`c` sub-tree.
    pub fn tree(&self, i: usize, c: usize) -> &RTree {
        self.shards[i].env.channel(c).tree()
    }

    /// The tightest rectangle enclosing every object shard `i` holds
    /// (`None` when the shard is empty). Tighter than the partition
    /// cell, so pruning against it is strictly stronger.
    pub fn mbr(&self, i: usize) -> Option<Rect> {
        self.shards[i].mbr
    }

    /// Shard `i`'s channel-`c` objects with their *original* ids — the
    /// sub-tree's dense local ids mapped back through the remap table,
    /// in shard-tree leaf order.
    pub fn objects(&self, i: usize, c: usize) -> Vec<(Point, ObjectId)> {
        let remap = &self.shards[i].remaps[c];
        self.tree(i, c)
            .objects_in_leaf_order()
            .map(|(point, local)| (point, remap[local.index()]))
            .collect()
    }

    /// Shard `i`'s channel-`c` remap table: local [`ObjectId`] index →
    /// original id in the source channel tree.
    pub fn original_ids(&self, i: usize, c: usize) -> &[ObjectId] {
        &self.shards[i].remaps[c]
    }

    /// Whether every channel of shard `i` is non-empty.
    pub fn is_eligible(&self, i: usize) -> bool {
        self.shards[i].eligible
    }

    /// Indices of eligible shards, ascending.
    pub fn eligible_shards(&self) -> &[usize] {
        &self.eligible
    }
}

/// Union of the non-empty channels' bounding rectangles — the region the
/// grid tiles. Degenerate when every channel is empty.
fn union_region(env: &MultiChannelEnv) -> Rect {
    env.channels()
        .iter()
        .filter(|c| c.tree().num_objects() > 0)
        .map(|c| c.tree().bounding_rect())
        .reduce(|a, b| a.union(&b))
        .unwrap_or(Rect::from_coords(0.0, 0.0, 0.0, 0.0))
}

/// `cols × rows = n` with `cols` the largest divisor of `n` at most
/// `√n` — as square a grid as `n` divides into.
fn grid_dims(n: usize) -> (usize, usize) {
    let mut cols = 1;
    for d in 1..=n {
        if n.is_multiple_of(d) && d * d <= n {
            cols = d;
        }
    }
    (cols, n / cols)
}

/// Exactly `n` cells tiling `region` row-major. Adjacent cells share
/// their edge coordinate (computed once per grid line), so the tiling
/// has no float gaps for boundary points to fall through.
fn grid_cells(region: Rect, n: usize) -> Vec<Rect> {
    let (cols, rows) = grid_dims(n);
    let edge = |lo: f64, hi: f64, i: usize, steps: usize| {
        if i == steps {
            hi
        } else {
            lo + (hi - lo) * (i as f64 / steps as f64)
        }
    };
    let xs: Vec<f64> = (0..=cols)
        .map(|i| edge(region.min.x, region.max.x, i, cols))
        .collect();
    let ys: Vec<f64> = (0..=rows)
        .map(|i| edge(region.min.y, region.max.y, i, rows))
        .collect();
    let mut cells = Vec::with_capacity(n);
    for r in 0..rows {
        for c in 0..cols {
            cells.push(Rect::from_coords(xs[c], ys[r], xs[c + 1], ys[r + 1]));
        }
    }
    cells
}

/// Data-adaptive cells: the root-child MBRs of a probe tree bulk-loaded
/// over the points of all channels together. Falls back to one
/// degenerate cell when every channel is empty.
fn top_level_cells(env: &MultiChannelEnv, per_channel: &[Vec<(Point, ObjectId)>]) -> Vec<Rect> {
    let points: Vec<Point> = per_channel
        .iter()
        .flatten()
        .map(|&(point, _)| point)
        .collect();
    if points.is_empty() {
        return vec![Rect::from_coords(0.0, 0.0, 0.0, 0.0)];
    }
    let source = env.channel(0).tree();
    let probe = RTree::build(&points, source.params(), source.packing())
        // check:allow(R2, plan construction is pre-serving and the empty case returned early above)
        .expect("the pooled dataset is non-empty");
    probe
        .top_level_partitions()
        .iter()
        .map(|(mbr, _)| *mbr)
        .collect()
}

/// The lowest-indexed cell containing `p`, else the cell nearest to `p`
/// (ties to the lower index — `min_by` keeps the first minimum).
fn assign(cells: &[Rect], p: Point) -> usize {
    cells
        .iter()
        .position(|cell| cell.contains(p))
        .unwrap_or_else(|| {
            cells
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.min_dist_sq(p).total_cmp(&b.1.min_dist_sq(p)))
                // check:allow(R2, every constructor emits at least one cell — the empty-input path returns a single degenerate rect)
                .expect("plans hold at least one cell")
                .0
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardConfig;
    use tnn_broadcast::BroadcastParams;
    use tnn_datasets::uniform_points;
    use tnn_rtree::PackingAlgorithm;

    fn build_env(layers: &[Vec<Point>]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = layers
            .iter()
            .map(|pts| {
                Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        let phases: Vec<u64> = (0..layers.len() as u64).map(|i| i * 7 + 2).collect();
        MultiChannelEnv::new(trees, params, &phases)
    }

    fn sample_env(k: usize) -> MultiChannelEnv {
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let layers: Vec<Vec<Point>> = (0..k)
            .map(|i| uniform_points(150 + 40 * i, &region, 0xBEEF + i as u64))
            .collect();
        build_env(&layers)
    }

    #[test]
    fn grid_dims_follow_the_divisor_rule() {
        assert_eq!(grid_dims(1), (1, 1));
        assert_eq!(grid_dims(2), (1, 2));
        assert_eq!(grid_dims(4), (2, 2));
        assert_eq!(grid_dims(6), (2, 3));
        assert_eq!(grid_dims(8), (2, 4));
        assert_eq!(grid_dims(9), (3, 3));
        assert_eq!(grid_dims(7), (1, 7));
    }

    #[test]
    fn grid_plan_covers_every_object_exactly_once_with_ids() {
        let env = sample_env(3);
        for shards in [1usize, 2, 4, 8] {
            let plan = ShardPlan::build(&env, &ShardConfig::new().shards(shards));
            assert_eq!(plan.num_shards(), shards);
            assert_eq!(plan.cells().len(), shards);
            for (c, channel) in env.channels().iter().enumerate() {
                let mut original: Vec<(Point, ObjectId)> =
                    channel.tree().objects_in_leaf_order().collect();
                let mut sharded: Vec<(Point, ObjectId)> =
                    (0..shards).flat_map(|s| plan.objects(s, c)).collect();
                let key = |&(p, id): &(Point, ObjectId)| (p.x.to_bits(), p.y.to_bits(), id.0);
                original.sort_by_key(key);
                sharded.sort_by_key(key);
                assert_eq!(original, sharded, "channel {c} at {shards} shards");
            }
        }
    }

    #[test]
    fn shard_mbrs_bound_their_objects_and_flag_eligibility() {
        let env = sample_env(2);
        let plan = ShardPlan::build(&env, &ShardConfig::new().shards(4));
        assert!(
            !plan.eligible_shards().is_empty(),
            "uniform data fills some shard"
        );
        for s in 0..plan.num_shards() {
            let holds_objects = (0..2).any(|c| plan.tree(s, c).num_objects() > 0);
            assert_eq!(plan.mbr(s).is_some(), holds_objects);
            if let Some(mbr) = plan.mbr(s) {
                for c in 0..2 {
                    for (p, _) in plan.tree(s, c).objects_in_leaf_order() {
                        assert!(mbr.contains(p), "shard {s} object {p:?} outside {mbr:?}");
                    }
                }
            }
            assert_eq!(
                plan.is_eligible(s),
                (0..2).all(|c| plan.tree(s, c).num_objects() > 0)
            );
        }
    }

    #[test]
    fn top_level_plan_matches_probe_root_fanout() {
        let env = sample_env(2);
        let points: Vec<Point> = env
            .channels()
            .iter()
            .flat_map(|c| c.tree().objects_in_leaf_order().map(|(p, _)| p))
            .collect();
        let source = env.channel(0).tree();
        let probe = RTree::build(&points, source.params(), source.packing()).unwrap();
        let plan = ShardPlan::build(&env, &ShardConfig::new().partition(Partition::TopLevel));
        assert_eq!(plan.num_shards(), probe.top_level_partitions().len());
        // Exactly-once coverage holds for adaptive cells too.
        for (c, channel) in env.channels().iter().enumerate() {
            let total: usize = (0..plan.num_shards())
                .map(|s| plan.tree(s, c).num_objects())
                .sum();
            assert_eq!(total, channel.tree().num_objects());
        }
    }

    #[test]
    fn shard_envs_inherit_params_and_phases() {
        let env = sample_env(2);
        let plan = ShardPlan::build(&env, &ShardConfig::new().shards(2));
        for s in 0..plan.num_shards() {
            let shard_env = plan.shard_env(s);
            assert_eq!(shard_env.len(), env.len());
            for (a, b) in shard_env.channels().iter().zip(env.channels()) {
                assert_eq!(a.phase(), b.phase());
                assert_eq!(a.params(), b.params());
            }
        }
    }

    #[test]
    fn boundary_points_join_exactly_one_grid_cell() {
        // Points sitting exactly on interior grid lines must not be
        // duplicated or lost.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(500.0, 500.0),
            Point::new(1000.0, 1000.0),
            Point::new(500.0, 0.0),
            Point::new(0.0, 500.0),
            Point::new(250.0, 750.0),
        ];
        let env = build_env(&[pts.clone(), pts.clone()]);
        let plan = ShardPlan::build(&env, &ShardConfig::new().shards(4));
        for c in 0..2 {
            let total: usize = (0..plan.num_shards())
                .map(|s| plan.tree(s, c).num_objects())
                .sum();
            assert_eq!(total, pts.len());
        }
    }

    #[test]
    fn zero_channel_env_builds_an_empty_plan() {
        let params = BroadcastParams::new(64);
        let env = MultiChannelEnv::new(Vec::new(), params, &[]);
        let plan = ShardPlan::build(&env, &ShardConfig::new());
        assert_eq!(plan.num_shards(), 0);
        assert_eq!(plan.channels(), 0);
    }
}
