//! Configuration of the sharded serving layer: how many shards, how the
//! plane is partitioned into them, and how aggressively hot shards are
//! replicated.

use tnn_serve::ServeConfig;

/// How the broadcast region is split into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partition {
    /// A uniform `cols × rows` grid over the union of every channel's
    /// bounding rectangle, with exactly [`ShardConfig::shards`] cells
    /// (`cols` is the largest divisor of the shard count that is at most
    /// its square root, so 4 shards → 2×2, 8 → 2×4). Cell edges are
    /// shared coordinates, so the grid tiles the region without float
    /// gaps; boundary points deterministically join the lowest-indexed
    /// containing cell.
    #[default]
    Grid,
    /// Data-adaptive cells: the top-level split of a probe R-tree bulk-
    /// loaded over the points of *all* channels — one shard per root
    /// child, so the shard count follows the tree's fanout and the
    /// cells hug the data distribution ([`ShardConfig::shards`] is
    /// ignored).
    TopLevel,
}

/// Configuration for a [`crate::ShardRouter`] — builder-style, like
/// [`ServeConfig`].
///
/// ```
/// use tnn_shard::{Partition, ShardConfig};
/// use tnn_serve::ServeConfig;
///
/// let cfg = ShardConfig::new()
///     .shards(4)
///     .replication(2)
///     .partition(Partition::Grid)
///     .serve(ServeConfig::new().workers(1).queue_capacity(64));
/// assert_eq!(cfg.shards, 4);
/// assert_eq!(cfg.replication, 2);
/// ```
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards for [`Partition::Grid`] (clamped to at least 1;
    /// ignored by [`Partition::TopLevel`], which derives the count from
    /// the probe tree's root fanout). Default 4.
    pub shards: usize,
    /// Maximum replicas per shard (clamped to at least 1). Every
    /// eligible shard starts with one replica; a shard observed to be
    /// *hot* — its share of routed sub-queries exceeds
    /// [`ShardConfig::hot_fair_share_factor`] times the fair share —
    /// is grown one replica at a time up to this factor. Default 1
    /// (no replication).
    pub replication: usize,
    /// How the plane is partitioned. Default [`Partition::Grid`].
    pub partition: Partition,
    /// A shard is replicated once its share of routed sub-queries
    /// exceeds this multiple of the fair share `1/eligible_shards`
    /// (e.g. `2.0` = twice the fair share). Default 2.0.
    pub hot_fair_share_factor: f64,
    /// Routed sub-queries to observe across all shards before any
    /// replication decision — hotness over a handful of queries is
    /// noise. Default 32.
    pub replication_warmup: u64,
    /// Configuration applied to every per-shard [`tnn_serve::Server`]
    /// replica (workers, queue capacity, backpressure, cache, …).
    pub serve: ServeConfig,
}

impl ShardConfig {
    /// The default configuration: 4 grid shards, no replication, default
    /// serving terms.
    pub fn new() -> Self {
        ShardConfig::default()
    }

    /// Sets the shard count for [`Partition::Grid`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the maximum replicas per hot shard.
    pub fn replication(mut self, replication: usize) -> Self {
        self.replication = replication.max(1);
        self
    }

    /// Sets the partitioning scheme.
    pub fn partition(mut self, partition: Partition) -> Self {
        self.partition = partition;
        self
    }

    /// Sets the hotness threshold as a multiple of the fair share.
    pub fn hot_fair_share_factor(mut self, factor: f64) -> Self {
        self.hot_fair_share_factor = factor.max(1.0);
        self
    }

    /// Sets the observation warmup before replication decisions.
    pub fn replication_warmup(mut self, warmup: u64) -> Self {
        self.replication_warmup = warmup;
        self
    }

    /// Sets the per-replica serving configuration.
    pub fn serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            replication: 1,
            partition: Partition::default(),
            hot_fair_share_factor: 2.0,
            replication_warmup: 32,
            serve: ServeConfig::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_conservative() {
        let cfg = ShardConfig::new();
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.replication, 1);
        assert_eq!(cfg.partition, Partition::Grid);
        assert_eq!(cfg.hot_fair_share_factor, 2.0);
        assert_eq!(cfg.replication_warmup, 32);
    }

    #[test]
    fn builders_clamp_degenerate_values() {
        let cfg = ShardConfig::new()
            .shards(0)
            .replication(0)
            .hot_fair_share_factor(0.5);
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.replication, 1);
        assert_eq!(cfg.hot_fair_share_factor, 1.0);
    }
}
