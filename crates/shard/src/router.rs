//! The scatter-gather router: one [`tnn_serve::Server`] pool per
//! eligible shard, a transitive-bound pruner in front of them, and a
//! final merge through the same k-layer sweep join the unsharded
//! pipelines use.
//!
//! ## Why the sharded answer is byte-identical
//!
//! Every query kind minimizes a sum of hop distances along its route, so
//! the triangle inequality bounds each stop of an optimal route by the
//! route's own total `T*`: `dis(p, s) ≤ T*` for the open kinds and
//! `2·dis(p, s) ≤ T*` for round-trip tours. Any *feasible* route total
//! `B ≥ T*` therefore yields a circle around `p` guaranteed to contain
//! every optimal stop — exactly Theorem 1 of the paper, applied at the
//! cluster level. The router obtains `B` by scattering the query to
//! shard-local servers (each answers over its own slice, and any
//! shard-local route is globally feasible because shard objects are
//! real dataset objects), gathers all candidates within the `B`-circle
//! from every shard sub-tree, and joins them with
//! [`tnn_core::merge_route_layers`] — the *same* function the unsharded
//! pipelines call, folding the same distances in the same order, so the
//! winning route and its total come out bit-for-bit identical.
//!
//! Shards whose MBR lower bound [`Rect::min_dist_sq`] exceeds the
//! current bound are pruned from both phases; pruning can only skip
//! sub-trees that provably contain no optimal stop, so it never changes
//! the answer (gated in `crates/bench/tests/shard_equivalence.rs`).
//!
//! [`Rect::min_dist_sq`]: tnn_geom::Rect::min_dist_sq

use crate::config::ShardConfig;
use crate::partition::ShardPlan;
use crate::stats::ShardStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Duration;
use tnn_broadcast::MultiChannelEnv;
use tnn_core::{
    approximate_radius_for_env, merge_route_layers, Algorithm, ArrivalHeap, CandidateQueue,
    JoinScratch, Query, QueryEngine, QueryKind, RouteObjective, RouteStop, TnnError,
};
use tnn_geom::{Circle, Point};
use tnn_qos::Qos;
use tnn_rtree::ObjectId;
use tnn_serve::{ServeStats, Server, ShutdownMode, Ticket};
use tnn_trace::{FlightRecorder, MetricsRegistry, QueryTrace, SpanKind};

/// The engine's own floating-point guard on filter radii — candidates at
/// exactly the estimate distance must not be lost to rounding.
const FP_PAD: f64 = 1.0 + 4.0 * f64::EPSILON;

/// The result of one sharded query: the merged route (byte-identical to
/// an unsharded [`tnn_core::QueryEngine::run`] of the same query) plus
/// per-query scatter-gather accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// What was asked.
    pub kind: QueryKind,
    /// The merged route, one stop per channel in visit order. Empty only
    /// for a failed [`Algorithm::ApproximateTnn`] query (the one
    /// non-guaranteed algorithm).
    pub route: Vec<RouteStop>,
    /// The route's total length under the kind's objective; `None` when
    /// the query failed.
    pub total_dist: Option<f64>,
    /// The gather radius actually searched (the transitive bound after
    /// scatter, padded like the engine's filter radius).
    pub search_radius: f64,
    /// Sub-queries admitted by shard servers for this query.
    pub shards_scattered: usize,
    /// Shards the transitive bound pruned from the scatter phase.
    pub shards_pruned: usize,
    /// Whether the gather bound had to be computed locally because no
    /// shard could answer a whole sub-query (no eligible shard, or all
    /// scatters were refused).
    pub fallback: bool,
}

#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    scattered: AtomicU64,
    scatter_rejected: AtomicU64,
    scatter_errors: AtomicU64,
    scatter_pruned: AtomicU64,
    gather_probed: AtomicU64,
    gather_pruned: AtomicU64,
    fallbacks: AtomicU64,
    replicas_spawned: AtomicU64,
    /// Environment swaps published via [`ShardRouter::swap_env`].
    env_swaps: AtomicU64,
    /// Replicas drained and retired by environment swaps (their final
    /// stats live on in the `retired` fold).
    retired_replicas: AtomicU64,
    /// Routed sub-query attempts over all shards — the denominator of
    /// the hotness share.
    routed: AtomicU64,
}

struct ShardHandle<Q: CandidateQueue + 'static> {
    /// The shard's live replicas — starts at one for eligible shards,
    /// grows (under the write lock) up to [`ShardConfig::replication`]
    /// when the shard runs hot. Ineligible shards serve nothing.
    replicas: RwLock<Vec<Server<Q>>>,
    /// Sub-query attempts routed to this shard — the numerator of the
    /// hotness share.
    routed: AtomicU64,
}

/// One environment epoch's serving structure: the environment, its
/// partitioning, and the shard servers built over it. Swapped as a unit
/// by [`ShardRouter::swap_env`] — queries hold a read guard on the
/// current topology for their whole scatter-gather pass, so a swap
/// (which takes the write side) never tears a query between epochs.
struct Topology<Q: CandidateQueue + 'static> {
    env: MultiChannelEnv,
    plan: ShardPlan,
    shards: Vec<ShardHandle<Q>>,
}

fn build_topology<Q: CandidateQueue + 'static>(
    env: MultiChannelEnv,
    config: &ShardConfig,
) -> Topology<Q> {
    let plan = ShardPlan::build(&env, config);
    let shards = (0..plan.num_shards())
        .map(|i| {
            let replicas = if plan.is_eligible(i) {
                vec![spawn_replica::<Q>(plan.shard_env(i), config)]
            } else {
                Vec::new()
            };
            ShardHandle {
                replicas: RwLock::new(replicas),
                routed: AtomicU64::new(0),
            }
        })
        .collect();
    Topology { env, plan, shards }
}

/// Scatter-gather front-end over a spatially sharded environment.
///
/// [`ShardRouter::spawn`] partitions the environment (see
/// [`ShardPlan`]), starts one [`Server`] per *eligible* shard (a shard
/// holding objects of every channel), and then answers queries by
/// scatter → prune → gather → merge:
///
/// 1. **Scatter** the query to the primary shard (smallest
///    [`tnn_geom::Rect::min_max_dist_sq`] to the query point — the
///    shard guaranteed to contain a nearby object), seeding the
///    transitive bound `B` with its sub-route total; then to every
///    other eligible shard the bound does not prune, tightening `B`
///    with each sub-result. Per shard, the sub-query goes to the
///    replica with the shallowest queue.
/// 2. **Gather** every candidate within the `B`-circle from every
///    shard sub-tree (pruning whole sub-trees by root-MBR distance).
/// 3. **Merge** the per-channel candidate layers through
///    [`tnn_core::merge_route_layers`] — the same k-layer sweep join
///    the unsharded pipelines end in — into the final route.
///
/// ```
/// use std::sync::Arc;
/// use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
/// use tnn_core::Query;
/// use tnn_geom::Point;
/// use tnn_rtree::{PackingAlgorithm, RTree};
/// use tnn_serve::{ServeConfig, ShutdownMode};
/// use tnn_shard::{ShardConfig, ShardRouter};
///
/// let params = BroadcastParams::new(64);
/// let pts: Vec<Point> =
///     (0..60).map(|i| Point::new((i * 7 % 53) as f64, (i * 11 % 59) as f64)).collect();
/// let tree = |seed: usize| {
///     let shifted: Vec<Point> =
///         pts.iter().map(|p| Point::new(p.x + seed as f64, p.y)).collect();
///     Arc::new(RTree::build(&shifted, params.rtree_params(), PackingAlgorithm::Str).unwrap())
/// };
/// let env = MultiChannelEnv::new(vec![tree(0), tree(1)], params, &[17, 42]);
///
/// let router = ShardRouter::spawn(
///     env,
///     ShardConfig::new().shards(4).serve(ServeConfig::new().workers(1)),
/// );
/// let outcome = router.run(&Query::tnn(Point::new(25.0, 25.0))).unwrap();
/// assert_eq!(outcome.route.len(), 2);
/// router.shutdown(ShutdownMode::Drain);
/// ```
pub struct ShardRouter<Q: CandidateQueue + 'static = ArrivalHeap> {
    /// The current serving topology (environment + plan + shard
    /// servers). Queries read-lock it for their whole scatter-gather
    /// pass; [`ShardRouter::swap_env`] write-locks it to publish the
    /// next environment epoch atomically.
    topology: RwLock<Topology<Q>>,
    config: ShardConfig,
    counters: Counters,
    /// Folded replica stats frozen at shutdown, so [`ShardRouter::stats`]
    /// keeps answering afterwards.
    final_serve: Mutex<Option<ServeStats>>,
    /// Folded final stats of replicas retired by environment swaps —
    /// merged into every [`ShardRouter::stats`] snapshot so pre-swap
    /// work is never dropped or double-counted.
    retired: Mutex<ServeStats>,
    /// The router-level flight recorder, `Some` when the shard servers'
    /// [`tnn_serve::ServeConfig::trace`] is on. Router traces carry the
    /// scatter/gather waits (derived from sub-ticket latencies — this
    /// crate reads no clock itself) and the folded engine counters of
    /// every scattered sub-outcome; replica-level traces live in each
    /// replica's own recorder.
    recorder: Option<FlightRecorder>,
}

impl ShardRouter<ArrivalHeap> {
    /// Spawns a router over `env` with the production heap-ordered
    /// candidate-queue backend.
    pub fn spawn(env: MultiChannelEnv, config: ShardConfig) -> Self {
        ShardRouter::spawn_with_backend(env, config)
    }
}

impl<Q: CandidateQueue + 'static> ShardRouter<Q> {
    /// [`ShardRouter::spawn`] generic over the candidate-queue backend,
    /// mirroring [`QueryEngine::with_queue_backend`] — benchmarks
    /// instantiate the paper-literal linear reference through this.
    pub fn spawn_with_backend(env: MultiChannelEnv, config: ShardConfig) -> Self {
        let recorder = config.serve.trace.recorder().map(FlightRecorder::new);
        ShardRouter {
            topology: RwLock::new(build_topology::<Q>(env, &config)),
            config,
            counters: Counters::default(),
            final_serve: Mutex::new(None),
            retired: Mutex::new(ServeStats::default()),
            recorder,
        }
    }

    /// A snapshot of the full (unsharded) environment currently being
    /// served — O(1): channels sit behind a shared `Arc`. Carries the
    /// epoch/fingerprint of the topology queries run against right now.
    pub fn env(&self) -> MultiChannelEnv {
        self.topology
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .env
            .clone()
    }

    /// The configuration the router was spawned with.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// A snapshot of the partitioning the router currently scatters
    /// over (rebuilt by every [`ShardRouter::swap_env`]).
    pub fn plan(&self) -> ShardPlan {
        self.topology
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .plan
            .clone()
    }

    /// Live replica count of shard `i` (0 for ineligible shards).
    pub fn replica_count(&self, i: usize) -> usize {
        let topology = self.topology.read().unwrap_or_else(|e| e.into_inner());
        let replicas = topology.shards[i]
            .replicas
            .read()
            .unwrap_or_else(|e| e.into_inner());
        replicas.len()
    }

    /// Publishes `env` as the serving environment: re-partitions the
    /// data, spawns fresh shard servers over the new slices, swaps them
    /// in atomically (in-flight queries finish on the topology they
    /// started with — the swap waits for their read guards), then
    /// drains the old replicas and folds their final serving stats into
    /// the retired ledger ([`ShardStats`] conservation holds across the
    /// swap). Scatter sub-queries admitted after the swap carry the new
    /// environment's epoch/fingerprint in their cache keys, so replica
    /// caches can never replay pre-swap answers — and the old replicas'
    /// caches retire wholesale with their servers.
    ///
    /// # Errors
    /// [`TnnError::WrongChannelCount`] when `env`'s channel count
    /// differs from the current environment's (a swap changes data,
    /// never shape), and [`TnnError::Cancelled`] after
    /// [`ShardRouter::shutdown`] — a shut-down router stays shut.
    pub fn swap_env(&self, env: MultiChannelEnv) -> Result<(), TnnError> {
        if self
            .final_serve
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
        {
            return Err(TnnError::Cancelled);
        }
        let needed = {
            let topology = self.topology.read().unwrap_or_else(|e| e.into_inner());
            topology.env.len()
        };
        if env.len() != needed {
            return Err(TnnError::WrongChannelCount {
                needed,
                available: env.len(),
            });
        }
        // Partitioning and replica spawn happen *before* the write lock:
        // queries keep flowing on the old topology while the new one
        // warms up, and the swap itself is just a pointer exchange (plus
        // waiting out in-flight read guards).
        let fresh = build_topology::<Q>(env, &self.config);
        let old = {
            let mut topology = self.topology.write().unwrap_or_else(|e| e.into_inner());
            std::mem::replace(&mut *topology, fresh)
        };
        // Drain the retirees outside the lock — queries already run on
        // the new topology — and bank their final counters so stats
        // snapshots keep conserving across the swap.
        let mut folded = ServeStats::default();
        let mut count = 0u64;
        for handle in &old.shards {
            let replicas = handle.replicas.read().unwrap_or_else(|e| e.into_inner());
            for server in replicas.iter() {
                folded.merge(&server.shutdown(ShutdownMode::Drain));
                count += 1;
            }
        }
        {
            let mut retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
            retired.merge(&folded);
        }
        self.counters
            .retired_replicas
            .fetch_add(count, Ordering::Relaxed);
        self.counters.env_swaps.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Runs `query` under default QoS terms (batch class, no deadline).
    ///
    /// # Errors
    /// Exactly the validation errors of [`QueryEngine::run`]:
    /// [`TnnError::WrongChannelCount`], [`TnnError::NonFiniteQuery`],
    /// [`TnnError::EmptyChannel`] — with identical precedence, so the
    /// equivalence gates compare errors too. Scatter-phase refusals or
    /// sub-query errors never fail the query; they only weaken the
    /// gather bound.
    ///
    /// # Panics
    /// As [`QueryEngine::run`]: per-channel phase or ANN-mode lists that
    /// do not match the environment's channel count.
    pub fn run(&self, query: &Query) -> Result<ShardOutcome, TnnError> {
        self.run_with(query, Qos::default())
    }

    /// [`ShardRouter::run`] under explicit [`Qos`] terms, applied to
    /// every scattered sub-query.
    ///
    /// # Errors
    /// As [`ShardRouter::run`].
    ///
    /// # Panics
    /// As [`ShardRouter::run`].
    pub fn run_with(&self, query: &Query, qos: Qos) -> Result<ShardOutcome, TnnError> {
        let seq = self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let mut trace = self.recorder.as_ref().map(|_| QueryTrace::new(seq));
        // The read guard pins one topology for the whole scatter-gather
        // pass: a concurrent swap_env waits until every in-flight query
        // releases it, so no query ever mixes epochs.
        let topology = self.topology.read().unwrap_or_else(|e| e.into_inner());
        let topology = &*topology;
        validate(&topology.env, query)?;
        let p = query.point();
        let kind = query.kind();

        // Approximate-TNN's radius is a *global* density artifact (eq. 1
        // over the full region and cardinalities); shard sub-queries
        // would each derive a different radius from their slice and the
        // non-guaranteed failure behavior would diverge from the
        // unsharded run. So: no scatter — gather with exactly the
        // full-environment radius and join, reproducing the engine's
        // answer (including its failures) bit-for-bit.
        if kind == QueryKind::Tnn(Algorithm::ApproximateTnn) {
            let radius = approximate_radius_for_env(&topology.env) * FP_PAD;
            let layers = self.gather(topology, p, radius);
            let mut join = JoinScratch::default();
            let merged = merge_route_layers(&mut join, RouteObjective::Chain, p, &layers, None);
            self.seal_trace(trace);
            return Ok(match merged {
                Some(m) => self.outcome(kind, m, radius, 0, 0, false),
                None => ShardOutcome {
                    kind,
                    route: Vec::new(),
                    total_dist: None,
                    search_radius: radius,
                    shards_scattered: 0,
                    shards_pruned: 0,
                    fallback: false,
                },
            });
        }

        let (objective, round_trip) = match kind {
            QueryKind::Tnn(_) | QueryKind::Chain => (RouteObjective::Chain, false),
            QueryKind::OrderFree => (RouteObjective::OrderFree, false),
            QueryKind::RoundTrip => (RouteObjective::RoundTrip, true),
        };

        // -- Scatter: seed and tighten the transitive bound B ---------
        let mut scattered = 0usize;
        let mut pruned = 0usize;
        let mut bound = f64::INFINITY;
        let eligible = topology.plan.eligible_shards();
        if !eligible.is_empty() {
            // The primary shard minimizes min_max_dist_sq to p — the
            // classic R-tree guarantee that it *does* contain an object
            // near p, so its sub-route seeds a tight bound.
            let primary = eligible
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let da = shard_mbr(&topology.plan, a).min_max_dist_sq(p);
                    let db = shard_mbr(&topology.plan, b).min_max_dist_sq(p);
                    da.total_cmp(&db)
                })
                // check:allow(R2, min_by over `eligible` which the enclosing `!eligible.is_empty()` guard proves non-empty)
                .expect("eligible is non-empty");
            match self.submit_to_shard(topology, primary, query, qos) {
                Ok(ticket) => {
                    scattered += 1;
                    self.counters.scattered.fetch_add(1, Ordering::Relaxed);
                    match ticket.wait() {
                        Ok(outcome) => {
                            if let Some(t) = trace.as_mut() {
                                fold_sub_outcome(t, &outcome);
                            }
                            if let Some(total) = outcome.total_dist {
                                bound = total;
                            }
                        }
                        Err(_) => {
                            self.counters.scatter_errors.fetch_add(1, Ordering::Relaxed);
                            if let Some(t) = trace.as_mut() {
                                t.errored = true;
                            }
                        }
                    }
                    // The scatter wait is the primary sub-ticket's own
                    // submission-to-resolution latency — this crate
                    // reads no clock (R1), the shard server stamped it.
                    if let (Some(t), Some(latency)) = (trace.as_mut(), ticket.latency()) {
                        t.span(SpanKind::ShardScatter, latency);
                    }
                }
                Err(_) => {
                    self.counters
                        .scatter_rejected
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            // Every stop of an optimal route lies within B of p (B/2
            // for tours) — shards entirely farther than that cannot
            // improve the route and are pruned. Survivors run
            // concurrently across their shard servers; the waits fold
            // the bound down in ascending shard order.
            let prune_factor = if round_trip { 2.0 } else { 1.0 };
            let mut waits: Vec<Ticket> = Vec::new();
            for &s in eligible.iter().filter(|&&s| s != primary) {
                if shard_mbr(&topology.plan, s).min_dist(p) * prune_factor > bound {
                    pruned += 1;
                    self.counters.scatter_pruned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                match self.submit_to_shard(topology, s, query, qos) {
                    Ok(ticket) => {
                        scattered += 1;
                        self.counters.scattered.fetch_add(1, Ordering::Relaxed);
                        waits.push(ticket);
                    }
                    Err(_) => {
                        self.counters
                            .scatter_rejected
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let mut gather_wait = Duration::ZERO;
            for ticket in waits {
                match ticket.wait() {
                    Ok(outcome) => {
                        if let Some(t) = trace.as_mut() {
                            fold_sub_outcome(t, &outcome);
                        }
                        if let Some(total) = outcome.total_dist {
                            if total < bound {
                                bound = total;
                            }
                        }
                    }
                    Err(_) => {
                        self.counters.scatter_errors.fetch_add(1, Ordering::Relaxed);
                        if let Some(t) = trace.as_mut() {
                            t.errored = true;
                        }
                    }
                }
                // Surviving sub-queries run concurrently, so the gather
                // wait is the *max* sub-ticket latency, not the sum.
                if let Some(latency) = ticket.latency() {
                    gather_wait = gather_wait.max(latency);
                }
            }
            if let Some(t) = trace.as_mut() {
                if !gather_wait.is_zero() {
                    t.span(SpanKind::ShardGather, gather_wait);
                }
            }
        }
        let fallback = !bound.is_finite();
        if fallback {
            // No shard answered (no eligible shard, or every scatter was
            // refused): bound the gather with any feasible route,
            // computed locally — first object of each channel, walked in
            // channel order. Correctness only needs *feasibility*.
            self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
            bound = fallback_bound(&topology.env, p, round_trip);
        }

        // -- Gather and merge -----------------------------------------
        let radius = if round_trip {
            bound * 0.5 * FP_PAD
        } else {
            bound * FP_PAD
        };
        let layers = self.gather(topology, p, radius);
        let mut join = JoinScratch::default();
        // The gather bound comes from a feasible route, so every layer
        // holds that route's stop and the merge cannot come up empty —
        // but a defect here must surface as an error, not a panic in
        // whatever thread runs the router.
        let merged =
            merge_route_layers(&mut join, objective, p, &layers, None).ok_or(TnnError::Internal)?;
        self.seal_trace(trace);
        Ok(self.outcome(kind, merged, radius, scattered, pruned, fallback))
    }

    /// Seals and records a router-level trace. Its total is the span
    /// sum — every duration here is derived from sub-ticket latencies,
    /// this crate never reads a clock (R1 determinism) — so totals are
    /// an under-estimate that excludes the local gather/merge work.
    fn seal_trace(&self, trace: Option<QueryTrace>) {
        if let (Some(recorder), Some(mut trace)) = (&self.recorder, trace) {
            trace.total = trace.span_sum();
            recorder.record(trace);
        }
    }

    /// A snapshot of the router's counters plus the fold of every
    /// replica's serving stats — live replicas *and* the ones already
    /// retired by environment swaps (frozen by
    /// [`ShardRouter::shutdown`]).
    pub fn stats(&self) -> ShardStats {
        let frozen = *self.final_serve.lock().unwrap_or_else(|e| e.into_inner());
        let serve = frozen.unwrap_or_else(|| {
            let topology = self.topology.read().unwrap_or_else(|e| e.into_inner());
            let snapshots: Vec<ServeStats> = topology
                .shards
                .iter()
                .flat_map(|handle| {
                    let replicas = handle.replicas.read().unwrap_or_else(|e| e.into_inner());
                    replicas.iter().map(Server::stats).collect::<Vec<_>>()
                })
                .collect();
            drop(topology);
            let mut folded = ServeStats::fold(snapshots.iter());
            let retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
            folded.merge(&retired);
            folded
        });
        ShardStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            scattered: self.counters.scattered.load(Ordering::Relaxed),
            scatter_rejected: self.counters.scatter_rejected.load(Ordering::Relaxed),
            scatter_errors: self.counters.scatter_errors.load(Ordering::Relaxed),
            scatter_pruned: self.counters.scatter_pruned.load(Ordering::Relaxed),
            gather_probed: self.counters.gather_probed.load(Ordering::Relaxed),
            gather_pruned: self.counters.gather_pruned.load(Ordering::Relaxed),
            fallbacks: self.counters.fallbacks.load(Ordering::Relaxed),
            replicas_spawned: self.counters.replicas_spawned.load(Ordering::Relaxed),
            env_swaps: self.counters.env_swaps.load(Ordering::Relaxed),
            retired_replicas: self.counters.retired_replicas.load(Ordering::Relaxed),
            serve,
        }
    }

    /// Shuts every replica of every shard down under `mode` and returns
    /// the final stats. Idempotent; later [`ShardRouter::stats`] calls
    /// keep returning the frozen fold.
    pub fn shutdown(&self, mode: ShutdownMode) -> ShardStats {
        {
            let mut guard = self.final_serve.lock().unwrap_or_else(|e| e.into_inner());
            if guard.is_none() {
                let topology = self.topology.read().unwrap_or_else(|e| e.into_inner());
                let mut snapshots = Vec::new();
                for handle in &topology.shards {
                    let replicas = handle.replicas.read().unwrap_or_else(|e| e.into_inner());
                    for server in replicas.iter() {
                        snapshots.push(server.shutdown(mode));
                    }
                }
                drop(topology);
                let mut folded = ServeStats::fold(snapshots.iter());
                {
                    let retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
                    folded.merge(&retired);
                }
                *guard = Some(folded);
            }
        }
        self.stats()
    }

    /// The router-level flight recorder, `None` unless the shard
    /// servers' [`tnn_serve::ServeConfig::trace`] is on. Router traces
    /// carry the scatter/gather waits (derived from sub-ticket
    /// latencies) and the folded engine counters of every scattered
    /// sub-outcome; the per-sub-query traces live in each replica's own
    /// recorder.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Publishes a snapshot of the router's metrics into `registry`:
    /// the scatter-gather counters under `tnn_shard_*`, the fleet fold
    /// of every replica's serving stats under `tnn_serve_*` (see
    /// [`ShardStats::publish_metrics`]), and the router recorder's
    /// retention counters when tracing is on. Monotone across repeated
    /// publications, like [`Server::publish_metrics`].
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        self.stats().publish_metrics(registry);
        if let Some(recorder) = &self.recorder {
            registry.counter(
                "tnn_shard_trace_recorded_total",
                "Router-level query traces offered to the flight recorder",
                recorder.recorded(),
            );
            registry.gauge(
                "tnn_shard_trace_retained",
                "Router-level query traces currently retained",
                recorder.len() as f64,
            );
        }
    }

    /// Routes one sub-query to `shard`: bumps the hotness counters,
    /// scales the replica set up if the shard runs hot, and submits to
    /// the replica with the shallowest queue (ties to the lowest
    /// index — `min_by_key` keeps the first minimum).
    fn submit_to_shard(
        &self,
        topology: &Topology<Q>,
        shard: usize,
        query: &Query,
        qos: Qos,
    ) -> Result<Ticket, TnnError> {
        let handle = &topology.shards[shard];
        let shard_routed = handle.routed.fetch_add(1, Ordering::Relaxed) + 1;
        let total_routed = self.counters.routed.fetch_add(1, Ordering::Relaxed) + 1;
        self.maybe_replicate(topology, shard, shard_routed, total_routed);
        let replicas = handle.replicas.read().unwrap_or_else(|e| e.into_inner());
        let server = replicas
            .iter()
            .min_by_key(|server| {
                let stats = server.stats();
                stats.queued + stats.in_flight
            })
            // An empty replica set would be a spawn defect; refuse the
            // sub-query (callers count Err as scatter_rejected) rather
            // than take the router thread down.
            .ok_or(TnnError::Overloaded)?;
        server.submit_with(query.clone(), qos)
    }

    /// Adds a replica to `shard` when its observed share of routed
    /// sub-queries exceeds [`ShardConfig::hot_fair_share_factor`] times
    /// the fair share — bounded by [`ShardConfig::replication`] and
    /// quiet during the warmup window.
    fn maybe_replicate(
        &self,
        topology: &Topology<Q>,
        shard: usize,
        shard_routed: u64,
        total_routed: u64,
    ) {
        if self.config.replication <= 1 || total_routed < self.config.replication_warmup {
            return;
        }
        let fair = topology.plan.eligible_shards().len() as f64;
        if fair <= 1.0 {
            // A single eligible shard's share is always 1 — "hot" is
            // meaningless without siblings to compare against.
            return;
        }
        let share = shard_routed as f64 / total_routed as f64;
        if share * fair < self.config.hot_fair_share_factor {
            return;
        }
        let mut replicas = topology.shards[shard]
            .replicas
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if replicas.len() >= self.config.replication {
            return;
        }
        replicas.push(spawn_replica::<Q>(
            topology.plan.shard_env(shard),
            &self.config,
        ));
        self.counters
            .replicas_spawned
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Collects every candidate within `radius` of `p`, per channel,
    /// walking shards in ascending index. Whole sub-trees are skipped
    /// when their root MBR lies entirely outside the circle — the same
    /// test [`tnn_rtree::RTree::range_circle`] applies at its root, so
    /// pruning skips only provably hit-free searches.
    fn gather(&self, topology: &Topology<Q>, p: Point, radius: f64) -> Vec<Vec<(Point, ObjectId)>> {
        let r_sq = radius * radius;
        let circle = Circle::new(p, radius);
        let mut layers: Vec<Vec<(Point, ObjectId)>> = vec![Vec::new(); topology.env.len()];
        for s in 0..topology.plan.num_shards() {
            for (c, layer) in layers.iter_mut().enumerate() {
                let tree = topology.plan.tree(s, c);
                if tree.num_objects() == 0 {
                    continue;
                }
                if tree.root_mbr().min_dist_sq(p) > r_sq {
                    self.counters.gather_pruned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                self.counters.gather_probed.fetch_add(1, Ordering::Relaxed);
                // Shard trees carry dense local ids; restore the
                // originals so the merged route's stops are the same
                // bytes an unsharded run reports.
                let remap = topology.plan.original_ids(s, c);
                layer.extend(
                    tree.range_circle(&circle)
                        .hits
                        .into_iter()
                        .map(|(point, local)| (point, remap[local.index()])),
                );
            }
        }
        layers
    }

    fn outcome(
        &self,
        kind: QueryKind,
        merged: tnn_core::MergedRoute,
        radius: f64,
        scattered: usize,
        pruned: usize,
        fallback: bool,
    ) -> ShardOutcome {
        ShardOutcome {
            kind,
            route: merged
                .stops
                .into_iter()
                .map(|(point, object, channel)| RouteStop {
                    point,
                    object,
                    channel,
                })
                .collect(),
            total_dist: Some(merged.total_dist),
            search_radius: radius,
            shards_scattered: scattered,
            shards_pruned: pruned,
            fallback,
        }
    }
}

fn spawn_replica<Q: CandidateQueue + 'static>(
    env: &MultiChannelEnv,
    config: &ShardConfig,
) -> Server<Q> {
    Server::spawn_engine(
        QueryEngine::<Q>::with_queue_backend(env.clone()),
        config.serve,
    )
}

/// Mirrors [`QueryEngine::run_with`]'s validation, with identical
/// error/panic precedence (phase-arity assert, then the recoverable
/// channel-count error, then — in kind order — the ANN-arity assert
/// and the non-finite check, then the first empty channel).
fn validate(env: &MultiChannelEnv, query: &Query) -> Result<(), TnnError> {
    let k = env.len();
    if let Some(phases) = query.phase_overrides() {
        assert_eq!(
            phases.len(),
            k,
            "one phase per channel is required (got {} for {k} channels)",
            phases.len()
        );
    }
    if k < 2 {
        return Err(TnnError::WrongChannelCount {
            needed: 2,
            available: k,
        });
    }
    match query.kind() {
        QueryKind::Tnn(_) | QueryKind::Chain => {
            query.ann_spec().check_channels(k);
            if !query.point().is_finite() {
                return Err(TnnError::NonFiniteQuery);
            }
        }
        QueryKind::OrderFree | QueryKind::RoundTrip => {
            if !query.point().is_finite() {
                return Err(TnnError::NonFiniteQuery);
            }
            query.ann_spec().check_channels(k);
        }
    }
    for (i, channel) in env.channels().iter().enumerate() {
        if channel.tree().num_objects() == 0 {
            return Err(TnnError::EmptyChannel { channel: i });
        }
    }
    Ok(())
}

fn shard_mbr(plan: &ShardPlan, shard: usize) -> tnn_geom::Rect {
    // check:allow(R2, only called with indices from eligible_shards(), whose cells have MBRs by construction)
    plan.mbr(shard).expect("eligible shards hold objects")
}

/// A feasible route total computed without any index search: the
/// first stored object of each channel, walked in channel order
/// (plus the hop home for tours). Any feasible total is a valid
/// gather bound.
fn fallback_bound(env: &MultiChannelEnv, p: Point, round_trip: bool) -> f64 {
    let mut total = 0.0;
    let mut cursor = p;
    for channel in env.channels() {
        let (stop, _) = channel
            .tree()
            .objects_in_leaf_order()
            .next()
            // check:allow(R2, validate() rejected empty channels before any query runs, so every tree yields an object)
            .expect("validation rejected empty channels");
        total += cursor.dist(stop);
        cursor = stop;
    }
    if round_trip {
        total += cursor.dist(p);
    }
    total
}

/// Folds one scattered sub-outcome's engine counters into the
/// router-level trace: visits, tune-in slots, and prune hits add up
/// across shards; the peak queue is a max (sub-queries run concurrently
/// on distinct broadcast clients); one degraded sub-answer taints the
/// whole trace.
fn fold_sub_outcome(trace: &mut QueryTrace, outcome: &tnn_core::QueryOutcome) {
    trace.node_visits += outcome.node_visits();
    trace.tune_in += outcome.tune_in();
    trace.prune_hits += outcome.prune_hits();
    trace.peak_queue = trace.peak_queue.max(outcome.peak_queue());
    trace.degraded |= outcome.degraded;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Partition;
    use std::sync::Arc;
    use tnn_broadcast::BroadcastParams;
    use tnn_datasets::uniform_points;
    use tnn_geom::Rect;
    use tnn_rtree::{PackingAlgorithm, RTree};
    use tnn_serve::ServeConfig;

    fn build_env(layers: &[Vec<Point>]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = layers
            .iter()
            .map(|pts| {
                let tree = if pts.is_empty() {
                    RTree::empty(params.rtree_params())
                } else {
                    RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap()
                };
                Arc::new(tree)
            })
            .collect();
        let phases: Vec<u64> = (0..layers.len() as u64).map(|i| i * 5 + 3).collect();
        MultiChannelEnv::new(trees, params, &phases)
    }

    fn sample_env(k: usize) -> MultiChannelEnv {
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let layers: Vec<Vec<Point>> = (0..k)
            .map(|i| uniform_points(140 + 25 * i, &region, 0xD1CE + i as u64))
            .collect();
        build_env(&layers)
    }

    fn small_serve() -> ServeConfig {
        ServeConfig::new().workers(1).queue_capacity(32)
    }

    fn query_mix(p: Point) -> Vec<Query> {
        let mut queries: Vec<Query> = Algorithm::ALL
            .iter()
            .map(|&alg| Query::tnn(p).algorithm(alg))
            .collect();
        queries.push(Query::chain(p));
        queries.push(Query::order_free(p));
        queries.push(Query::round_trip(p));
        queries
    }

    #[test]
    fn sharded_routes_match_the_unsharded_engine() {
        for k in [2usize, 3] {
            let env = sample_env(k);
            let engine = QueryEngine::new(env.clone());
            for partition in [Partition::Grid, Partition::TopLevel] {
                let router = ShardRouter::spawn(
                    env.clone(),
                    ShardConfig::new()
                        .shards(4)
                        .partition(partition)
                        .serve(small_serve()),
                );
                for p in [
                    Point::new(481.0, 522.0),
                    Point::new(3.0, 995.0),
                    Point::new(-250.0, 400.0),
                ] {
                    for query in query_mix(p) {
                        let got = router.run(&query).unwrap();
                        let want = engine.run(&query).unwrap();
                        assert_eq!(got.route, want.route, "k={k} {partition:?} {query:?}");
                        assert_eq!(
                            got.total_dist, want.total_dist,
                            "k={k} {partition:?} {query:?}"
                        );
                    }
                }
                let stats = router.shutdown(ShutdownMode::Drain);
                assert!(stats.conserved(), "{stats:?}");
            }
        }
    }

    #[test]
    fn validation_errors_match_the_engine() {
        // Empty channel 1: same error, same index.
        let region = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let env = build_env(&[uniform_points(30, &region, 7), Vec::new()]);
        let engine = QueryEngine::new(env.clone());
        let router = ShardRouter::spawn(env, ShardConfig::new().shards(2).serve(small_serve()));
        let q = Query::tnn(Point::new(5.0, 5.0));
        assert_eq!(router.run(&q).unwrap_err(), engine.run(&q).unwrap_err());

        // One-channel environment: recoverable channel-count error.
        let env1 = build_env(&[uniform_points(30, &region, 8)]);
        let engine1 = QueryEngine::new(env1.clone());
        let router1 = ShardRouter::spawn(env1, ShardConfig::new().shards(2).serve(small_serve()));
        assert_eq!(router1.run(&q).unwrap_err(), engine1.run(&q).unwrap_err());

        // Non-finite query point.
        let env2 = sample_env(2);
        let engine2 = QueryEngine::new(env2.clone());
        let router2 = ShardRouter::spawn(env2, ShardConfig::new().shards(2).serve(small_serve()));
        let bad = Query::chain(Point::new(f64::NAN, 1.0));
        assert_eq!(
            router2.run(&bad).unwrap_err(),
            engine2.run(&bad).unwrap_err()
        );
        router2.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn clustered_data_prunes_distant_shards() {
        // Two tight clusters in opposite corners; querying inside one
        // cluster must prune the sub-trees (and scatter) of the other.
        let region_a = Rect::from_coords(0.0, 0.0, 60.0, 60.0);
        let region_b = Rect::from_coords(940.0, 940.0, 1000.0, 1000.0);
        let mut s = uniform_points(60, &region_a, 11);
        s.extend(uniform_points(60, &region_b, 12));
        let mut r = uniform_points(60, &region_a, 13);
        r.extend(uniform_points(60, &region_b, 14));
        let env = build_env(&[s, r]);
        let router = ShardRouter::spawn(env, ShardConfig::new().shards(4).serve(small_serve()));
        let outcome = router.run(&Query::tnn(Point::new(10.0, 10.0))).unwrap();
        assert_eq!(outcome.route.len(), 2);
        let stats = router.shutdown(ShutdownMode::Drain);
        assert!(
            stats.gather_pruned > 0,
            "far-corner sub-trees must be pruned: {stats:?}"
        );
        assert!(stats.conserved(), "{stats:?}");
    }

    #[test]
    fn hot_shard_grows_replicas_up_to_the_cap() {
        let env = sample_env(2);
        let router = ShardRouter::spawn(
            env,
            ShardConfig::new()
                .shards(4)
                .replication(2)
                .replication_warmup(8)
                .serve(small_serve()),
        );
        assert!(
            router.plan().eligible_shards().len() > 1,
            "test needs sibling shards"
        );
        // Hammer one corner so its shard's share dwarfs the fair share.
        for i in 0..40u32 {
            let p = Point::new(30.0 + f64::from(i % 7), 40.0 + f64::from(i % 5));
            router.run(&Query::tnn(p)).unwrap();
        }
        let stats = router.stats();
        assert!(
            stats.replicas_spawned >= 1,
            "hot shard never replicated: {stats:?}"
        );
        for i in 0..router.plan().num_shards() {
            assert!(router.replica_count(i) <= 2);
        }
        let final_stats = router.shutdown(ShutdownMode::Drain);
        assert!(final_stats.conserved(), "{final_stats:?}");
    }

    #[test]
    fn approximate_queries_reproduce_engine_failures() {
        // Skewed data far from the query point: the approximate radius
        // misses, and the sharded run must fail exactly like the engine.
        let region = Rect::from_coords(900.0, 900.0, 1000.0, 1000.0);
        let env = build_env(&[
            uniform_points(80, &region, 21),
            uniform_points(80, &region, 22),
        ]);
        let engine = QueryEngine::new(env.clone());
        let router = ShardRouter::spawn(env, ShardConfig::new().shards(4).serve(small_serve()));
        let q = Query::tnn(Point::new(5.0, 5.0)).algorithm(Algorithm::ApproximateTnn);
        let got = router.run(&q).unwrap();
        let want = engine.run(&q).unwrap();
        assert_eq!(got.total_dist, want.total_dist);
        assert_eq!(got.route, want.route);
        assert!(
            want.failed(),
            "this layout should defeat the approximate radius"
        );
        router.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn stats_account_for_every_scatter_submission() {
        let env = sample_env(2);
        let router = ShardRouter::spawn(env, ShardConfig::new().shards(4).serve(small_serve()));
        for i in 0..12u32 {
            let p = Point::new(f64::from(i) * 80.0, f64::from(i) * 70.0);
            router.run(&Query::order_free(p)).unwrap();
        }
        let stats = router.shutdown(ShutdownMode::Drain);
        assert_eq!(stats.queries, 12);
        assert!(stats.scattered > 0);
        assert!(stats.conserved(), "{stats:?}");
        assert_eq!(stats.serve.completed, stats.scattered);
    }

    #[test]
    fn tracing_records_router_level_traces_and_publishes_metrics() {
        let env = sample_env(2);
        let router = ShardRouter::spawn(
            env,
            ShardConfig::new()
                .shards(4)
                .serve(small_serve().trace(tnn_serve::TraceConfig::on())),
        );
        assert!(router.recorder().is_some());
        let p = Point::new(420.0, 510.0);
        for query in query_mix(p) {
            let _ = router.run(&query);
        }
        let recorder = router.recorder().expect("tracing is on");
        let recorded = recorder.recorded();
        assert!(recorded > 0);
        let slowest = recorder.slowest();
        // A scattered query folds the sub-outcomes' engine counters and
        // carries a scatter span derived from the primary sub-ticket.
        let traced = slowest
            .iter()
            .find(|t| !t.duration_of(SpanKind::ShardScatter).is_zero())
            .expect("a scattered query was retained");
        assert!(traced.node_visits > 0, "{traced:?}");
        assert!(traced.tune_in > 0, "{traced:?}");
        assert_eq!(traced.total, traced.span_sum(), "no clock in this crate");

        let registry = MetricsRegistry::new();
        router.publish_metrics(&registry);
        let text = registry.render_prometheus();
        for series in [
            "tnn_shard_queries_total",
            "tnn_serve_completed_total",
            "tnn_shard_trace_recorded_total",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }

        let stats = router.shutdown(ShutdownMode::Drain);
        assert!(recorded <= stats.queries, "recorded at most once per query");
        assert!(stats.conserved(), "{stats:?}");
    }

    /// `env` with every channel's data replaced by a fresh uniform
    /// sample — same shape, next epoch.
    fn advanced(env: &MultiChannelEnv, seed: u64) -> MultiChannelEnv {
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let trees = (0..env.len())
            .map(|i| {
                let pts = uniform_points(120 + 20 * i, &region, seed + i as u64);
                Arc::new(
                    RTree::build(
                        &pts,
                        env.channel(0).params().rtree_params(),
                        PackingAlgorithm::Str,
                    )
                    .unwrap(),
                )
            })
            .collect();
        env.advance(trees)
    }

    #[test]
    fn env_swap_publishes_new_answers_and_banks_retired_stats() {
        let env = sample_env(2);
        let router = ShardRouter::spawn(
            env.clone(),
            ShardConfig::new().shards(4).serve(small_serve()),
        );
        for i in 0..8u32 {
            let p = Point::new(f64::from(i) * 110.0, f64::from(i) * 90.0);
            router.run(&Query::tnn(p)).unwrap();
        }
        let before = router.stats();
        assert!(before.serve.completed > 0);

        let next = advanced(&env, 0xBEEF);
        router.swap_env(next.clone()).unwrap();
        assert_eq!(router.env().epoch(), env.epoch() + 1);
        assert_eq!(router.env().fingerprint(), next.fingerprint());

        // Post-swap answers come from the new data, byte-identical to
        // an unsharded engine over the swapped-in environment.
        let engine = QueryEngine::new(next);
        for p in [Point::new(481.0, 522.0), Point::new(40.0, 900.0)] {
            for query in query_mix(p) {
                let got = router.run(&query).unwrap();
                let want = engine.run(&query).unwrap();
                assert_eq!(got.route, want.route, "{query:?}");
                assert_eq!(got.total_dist, want.total_dist, "{query:?}");
            }
        }

        let stats = router.shutdown(ShutdownMode::Drain);
        assert_eq!(stats.env_swaps, 1);
        assert!(stats.retired_replicas > 0, "{stats:?}");
        assert!(
            stats.serve.completed >= before.serve.completed,
            "pre-swap completions were dropped: {before:?} vs {stats:?}"
        );
        assert!(stats.conserved(), "{stats:?}");
    }

    #[test]
    fn swap_under_concurrent_load_conserves_stats() {
        let env = sample_env(2);
        let next = advanced(&env, 0xFACE);
        let old_engine = QueryEngine::new(env.clone());
        let new_engine = QueryEngine::new(next.clone());
        let router = ShardRouter::spawn(env, ShardConfig::new().shards(4).serve(small_serve()));
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..3u64)
                .map(|t| {
                    let router = &router;
                    let old_engine = &old_engine;
                    let new_engine = &new_engine;
                    scope.spawn(move || {
                        for i in 0..10u64 {
                            let p = Point::new(
                                ((t * 10 + i) * 97 % 1000) as f64,
                                ((t * 10 + i) * 61 % 1000) as f64,
                            );
                            let query = Query::tnn(p);
                            let got = router.run(&query).unwrap();
                            // A query pinned to either epoch's topology is
                            // fine — but it must match *one* of them
                            // exactly, never a mix.
                            let old = old_engine.run(&query).unwrap();
                            let new = new_engine.run(&query).unwrap();
                            assert!(
                                (got.route == old.route && got.total_dist == old.total_dist)
                                    || (got.route == new.route && got.total_dist == new.total_dist),
                                "query at {p:?} matched neither epoch"
                            );
                        }
                    })
                })
                .collect();
            router.swap_env(next.clone()).unwrap();
            for worker in workers {
                worker.join().unwrap();
            }
        });
        let stats = router.shutdown(ShutdownMode::Drain);
        assert_eq!(stats.env_swaps, 1);
        assert!(stats.retired_replicas > 0, "{stats:?}");
        assert!(stats.conserved(), "{stats:?}");
    }

    #[test]
    fn swap_env_rejects_shape_changes_and_stays_shut() {
        let env = sample_env(2);
        let router = ShardRouter::spawn(
            env.clone(),
            ShardConfig::new().shards(2).serve(small_serve()),
        );
        assert_eq!(
            router.swap_env(sample_env(3)),
            Err(TnnError::WrongChannelCount {
                needed: 2,
                available: 3,
            })
        );
        router.shutdown(ShutdownMode::Drain);
        assert_eq!(
            router.swap_env(advanced(&env, 0xD00D)),
            Err(TnnError::Cancelled)
        );
    }
}
