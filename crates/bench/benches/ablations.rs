//! Benchmarks for the design-choice ablations DESIGN.md calls out:
//! packing algorithm, interleave factor, page capacity and the chained
//! extension — wall-clock cost of the simulation slices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tnn_bench::fixture_points;
use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, AnnMode, TnnConfig};
use tnn_datasets::paper_region;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_sim::{run_batch, run_chain_batch, BatchConfig};

fn bench_packing(c: &mut Criterion) {
    let pts_s = fixture_points(10_000, 31);
    let pts_r = fixture_points(10_000, 32);
    let mut g = c.benchmark_group("ablations/packing");
    g.sample_size(10);
    for algo in PackingAlgorithm::ALL {
        let params = BroadcastParams::new(64);
        let s = Arc::new(RTree::build(&pts_s, params.rtree_params(), algo).unwrap());
        let r = Arc::new(RTree::build(&pts_r, params.rtree_params(), algo).unwrap());
        g.bench_function(algo.name(), |b| {
            let cfg = BatchConfig {
                params,
                tnn: TnnConfig::exact(Algorithm::DoubleNn),
                queries: 32,
                seed: 0x11,
                check_oracle: false,
            };
            b.iter(|| run_batch(&s, &r, &paper_region(), &cfg))
        });
    }
    g.finish();
}

fn bench_page_capacity(c: &mut Criterion) {
    let pts_s = fixture_points(10_000, 41);
    let pts_r = fixture_points(10_000, 42);
    let mut g = c.benchmark_group("ablations/page_capacity");
    g.sample_size(10);
    for cap in [64usize, 128, 256, 512] {
        let params = BroadcastParams::new(cap);
        let s =
            Arc::new(RTree::build(&pts_s, params.rtree_params(), PackingAlgorithm::Str).unwrap());
        let r =
            Arc::new(RTree::build(&pts_r, params.rtree_params(), PackingAlgorithm::Str).unwrap());
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, _| {
            let cfg = BatchConfig {
                params,
                tnn: TnnConfig::exact(Algorithm::HybridNn),
                queries: 32,
                seed: 0x22,
                check_oracle: false,
            };
            b.iter(|| run_batch(&s, &r, &paper_region(), &cfg))
        });
    }
    g.finish();
}

fn bench_chain(c: &mut Criterion) {
    let params = BroadcastParams::new(64);
    let mut g = c.benchmark_group("ablations/chain");
    g.sample_size(10);
    for k in [2usize, 3, 4] {
        let trees: Vec<Arc<RTree>> = (0..k)
            .map(|i| {
                Arc::new(
                    RTree::build(
                        &fixture_points(6_000, 50 + i as u64),
                        params.rtree_params(),
                        PackingAlgorithm::Str,
                    )
                    .unwrap(),
                )
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| run_chain_batch(&trees, &paper_region(), params, AnnMode::Exact, 16, 0x33))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_packing, bench_page_capacity, bench_chain);
criterion_main!(benches);
