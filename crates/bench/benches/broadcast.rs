//! Benchmarks for the broadcast substrate: arrival arithmetic and program
//! construction must stay O(1)/O(n) respectively, since every simulated
//! page decision goes through them.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tnn_bench::fixture_tree;
use tnn_broadcast::{BroadcastLayout, BroadcastParams, Channel};
use tnn_rtree::NodeId;

fn bench_layout(c: &mut Criterion) {
    let tree = fixture_tree(95_969, 3);
    let params = BroadcastParams::new(64);

    let mut g = c.benchmark_group("broadcast");
    g.bench_function("layout_build_96k", |b| {
        b.iter(|| BroadcastLayout::new(black_box(&tree), black_box(&params)))
    });

    let channel = Channel::new(Arc::clone(&tree), params, 12_345);
    let node = NodeId((tree.num_nodes() / 2) as u32);
    g.bench_function("next_node_arrival", |b| {
        b.iter(|| channel.next_node_arrival(black_box(node), black_box(777_777)))
    });
    let (_, object) = tree.objects_in_leaf_order().next().unwrap();
    g.bench_function("retrieve_object", |b| {
        b.iter(|| channel.retrieve_object(black_box(object), black_box(999_999)))
    });
    g.bench_function("with_phase", |b| {
        b.iter(|| channel.with_phase(black_box(42)))
    });
    g.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
