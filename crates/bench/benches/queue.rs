//! The heap-queue acceptance benchmark: heap-ordered vs. linear-scan
//! candidate queues on a Figure-9-style workload (10k × 10k uniform
//! points, DoubleNn, paper region). The full 1,000-query comparison —
//! plus the bit-identical `BatchStats` check — runs in the
//! `perf-baseline` binary, which writes the committed `BENCH_*.json`
//! trajectory files; this criterion target measures a smaller slice so
//! `cargo bench queue` stays interactive.

use criterion::{criterion_group, criterion_main, Criterion};
use tnn_bench::fixture_tree;
use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, TnnConfig};
use tnn_datasets::paper_region;
use tnn_sim::{run_batch, run_batch_linear, BatchConfig};

fn bench_queue_backends(c: &mut Criterion) {
    let s = fixture_tree(10_000, 1);
    let r = fixture_tree(10_000, 2);
    let cfg = BatchConfig {
        params: BroadcastParams::new(64),
        tnn: TnnConfig::exact(Algorithm::DoubleNn),
        queries: 64,
        seed: 0xF19,
        check_oracle: false,
    };

    // Identical results are a precondition for a meaningful comparison.
    let heap_stats = run_batch(&s, &r, &paper_region(), &cfg);
    let linear_stats = run_batch_linear(&s, &r, &paper_region(), &cfg);
    assert_eq!(heap_stats, linear_stats, "backends diverged");

    let mut g = c.benchmark_group("queue/double_nn_10k");
    g.sample_size(10);
    g.bench_function("heap", |b| {
        b.iter(|| run_batch(&s, &r, &paper_region(), &cfg))
    });
    g.bench_function("linear_reference", |b| {
        b.iter(|| run_batch_linear(&s, &r, &paper_region(), &cfg))
    });
    g.finish();
}

criterion_group!(benches, bench_queue_backends);
criterion_main!(benches);
