//! Microbenchmarks for the geometry kernel: the transitive metrics and
//! overlap areas sit on the hot path of every simulated query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tnn_geom::{
    circle_rect_overlap_area, ellipse_rect_overlap_area, max_dist, min_max_trans_dist,
    min_trans_dist, Circle, Ellipse, Point, Rect, Segment,
};

fn bench_metrics(c: &mut Criterion) {
    let p = Point::new(-3.0, 1.5);
    let r = Point::new(11.0, -4.0);
    let mbr = Rect::from_coords(2.0, 0.0, 6.0, 3.0);
    let seg = Segment::new(Point::new(2.0, 0.0), Point::new(6.0, 0.0));

    let mut g = c.benchmark_group("geom/metrics");
    g.bench_function("min_dist", |b| {
        b.iter(|| black_box(&mbr).min_dist(black_box(p)))
    });
    g.bench_function("min_max_dist", |b| {
        b.iter(|| black_box(&mbr).min_max_dist(black_box(p)))
    });
    g.bench_function("min_trans_dist", |b| {
        b.iter(|| min_trans_dist(black_box(p), black_box(&mbr), black_box(r)))
    });
    g.bench_function("max_dist_segment", |b| {
        b.iter(|| max_dist(black_box(p), black_box(&seg), black_box(r)))
    });
    g.bench_function("min_max_trans_dist", |b| {
        b.iter(|| min_max_trans_dist(black_box(p), black_box(&mbr), black_box(r)))
    });
    g.finish();
}

fn bench_overlaps(c: &mut Criterion) {
    let circle = Circle::new(Point::new(1.0, 1.0), 3.0);
    let ellipse = Ellipse::new(Point::new(-2.0, 0.0), Point::new(4.0, 1.0), 9.0);
    let mbr = Rect::from_coords(0.0, 0.0, 4.0, 2.5);

    let mut g = c.benchmark_group("geom/overlap");
    g.bench_function("circle_rect", |b| {
        b.iter(|| circle_rect_overlap_area(black_box(&circle), black_box(&mbr)))
    });
    g.bench_function("ellipse_rect", |b| {
        b.iter(|| ellipse_rect_overlap_area(black_box(&ellipse), black_box(&mbr)))
    });
    g.finish();
}

criterion_group!(benches, bench_metrics, bench_overlaps);
criterion_main!(benches);
