//! Benchmarks for R-tree bulk loading (per packing algorithm) and the
//! in-memory queries used by the exact-TNN oracle.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tnn_bench::{fixture_points, fixture_tree};
use tnn_geom::{Circle, Point};
use tnn_rtree::{PackingAlgorithm, RTree, RTreeParams};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree/build");
    g.sample_size(10);
    for &n in &[2_000usize, 15_210, 95_969] {
        let pts = fixture_points(n, 7);
        for algo in PackingAlgorithm::ALL {
            g.bench_with_input(BenchmarkId::new(algo.name(), n), &pts, |b, pts| {
                b.iter(|| {
                    RTree::build(black_box(pts), RTreeParams::for_page_capacity(64), algo).unwrap()
                })
            });
        }
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let tree = fixture_tree(15_210, 9);
    let q = Point::new(19_500.0, 19_500.0);

    let mut g = c.benchmark_group("rtree/query");
    g.bench_function("nearest_neighbor", |b| {
        b.iter(|| tree.nearest_neighbor(black_box(q)).unwrap())
    });
    g.bench_function("k_nearest_10", |b| {
        b.iter(|| tree.k_nearest(black_box(q), 10))
    });
    g.bench_function("range_circle_r2000", |b| {
        let range = Circle::new(q, 2_000.0);
        b.iter(|| tree.range_circle(black_box(&range)))
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
