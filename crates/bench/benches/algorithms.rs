//! End-to-end benchmarks: one fully simulated TNN query per algorithm
//! (estimate + filter + join + retrieval bookkeeping), plus the exact
//! oracle, on the paper's 10,000 × 10,000 workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tnn_bench::{fixture_env, fixture_queries};
use tnn_core::{exact_tnn, Algorithm, AnnMode, Query, QueryEngine, QueryScratch};

fn bench_algorithms(c: &mut Criterion) {
    let env = fixture_env(10_000, 10_000);
    let engine = QueryEngine::new(env.clone());
    let queries = fixture_queries(64);

    let mut g = c.benchmark_group("algorithms/query_10k_x_10k");
    for alg in Algorithm::ALL {
        g.bench_function(alg.name(), |b| {
            let mut scratch = QueryScratch::default();
            let mut i = 0usize;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                engine
                    .run_with(black_box(&Query::tnn(q).algorithm(alg)), &mut scratch)
                    .unwrap()
            })
        });
    }
    g.bench_function("Hybrid-NN+ANN", |b| {
        let m = AnnMode::Dynamic {
            factor: 1.0 / 150.0,
        };
        let mut scratch = QueryScratch::default();
        let mut i = 0usize;
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            engine
                .run_with(
                    black_box(
                        &Query::tnn(q)
                            .algorithm(Algorithm::HybridNn)
                            .ann_modes(&[m, m]),
                    ),
                    &mut scratch,
                )
                .unwrap()
        })
    });
    g.bench_function("exact_oracle", |b| {
        let (s, r) = (env.channel(0).tree(), env.channel(1).tree());
        let mut i = 0usize;
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            exact_tnn(black_box(q), s, r)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
