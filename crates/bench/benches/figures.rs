//! One bench group per paper figure/table: measures the wall-clock cost
//! of regenerating a representative slice of each experiment (small
//! query batches — the full runs live in the `tnn-sim` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tnn_bench::fixture_tree;
use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, TnnConfig};
use tnn_datasets::{city_like, paper_region};
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_sim::{run_batch, BatchConfig};

fn batch(alg: Algorithm, s: &Arc<RTree>, r: &Arc<RTree>, check_oracle: bool) {
    let cfg = BatchConfig {
        params: BroadcastParams::new(64),
        tnn: TnnConfig::exact(alg),
        queries: 32,
        seed: 0xBEEF,
        check_oracle,
    };
    run_batch(s, r, &paper_region(), &cfg);
}

fn bench_figures(c: &mut Criterion) {
    // Shared workloads: one representative configuration per figure.
    let s_10k = fixture_tree(10_000, 1);
    let r_10k = fixture_tree(10_000, 2);
    let s_sparse = fixture_tree(2_411, 3); // UNIF(-5.8) size
    let r_dense = fixture_tree(15_210, 4); // UNIF(-5.0) size
    let params = BroadcastParams::new(64);
    let city = Arc::new(
        RTree::build(
            &city_like(0xC17),
            params.rtree_params(),
            PackingAlgorithm::Str,
        )
        .unwrap(),
    );

    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Fig 9: access time — all four algorithms, equal sizes.
    g.bench_function("fig9_slice_all_algorithms", |b| {
        b.iter(|| {
            for alg in Algorithm::ALL {
                batch(alg, &s_10k, &r_10k, false);
            }
        })
    });

    // Fig 11: tune-in — the three exact algorithms on a skewed-size pair.
    g.bench_function("fig11_slice_exact_algorithms", |b| {
        b.iter(|| {
            for alg in [
                Algorithm::WindowBased,
                Algorithm::DoubleNn,
                Algorithm::HybridNn,
            ] {
                batch(alg, &s_sparse, &r_dense, false);
            }
        })
    });

    // Fig 12/13: ANN configurations.
    g.bench_function("fig12_slice_ann", |b| {
        let m = tnn_core::AnnMode::Dynamic { factor: 0.02 };
        let cfg = BatchConfig {
            params: BroadcastParams::new(64),
            tnn: TnnConfig::exact(Algorithm::DoubleNn).with_ann_modes(&[m, m]),
            queries: 32,
            seed: 0xBEEF,
            check_oracle: false,
        };
        b.iter(|| run_batch(&s_10k, &r_10k, &paper_region(), &cfg))
    });
    g.bench_function("fig13_slice_hybrid_ann", |b| {
        let m = tnn_core::AnnMode::Dynamic {
            factor: 1.0 / 150.0,
        };
        let cfg = BatchConfig {
            params: BroadcastParams::new(64),
            tnn: TnnConfig::exact(Algorithm::HybridNn).with_ann_modes(&[m, m]),
            queries: 32,
            seed: 0xBEEF,
            check_oracle: false,
        };
        b.iter(|| run_batch(&s_10k, &r_10k, &paper_region(), &cfg))
    });

    // Table 3: Approximate-TNN with oracle verification on skewed data.
    g.bench_function("table3_slice_fail_rate", |b| {
        b.iter(|| batch(Algorithm::ApproximateTnn, &city, &r_10k, true))
    });

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
