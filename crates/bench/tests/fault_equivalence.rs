//! The acceptance gate of the fault-injection layer:
//!
//! 1. **Zero-fault transparency** — a server spawned with
//!    [`FaultPlan::none`] delivers outcomes byte-identical to a direct
//!    [`QueryEngine::run`], across every TNN algorithm, k ∈ {2, 3, 4}
//!    channels, and both candidate-queue backends. The fault machinery
//!    may exist; it must not be observable.
//! 2. **Replay determinism** — the same `(seed, plan)` over the same
//!    admission sequence produces *bit-identical* [`FaultStats`]
//!    regardless of worker count, because every fault decision is a pure
//!    function of `(seed, job seq, channel, attempt)`, never of
//!    scheduling. (Worker kills are excluded by construction: a kill
//!    abandons whichever batch-mates the scheduler happened to co-pop.)

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{Algorithm, ArrivalHeap, CandidateQueue, LinearQueue, Query, QueryEngine, TnnError};
use tnn_geom::Point;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{
    Backpressure, CacheConfig, ChannelFaults, FaultPlan, RetryPolicy, ServeConfig, Server,
    ShutdownMode,
};

fn build_env(layers: &[Vec<Point>], phases: &[u64]) -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let trees = layers
        .iter()
        .map(|pts| {
            Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    MultiChannelEnv::new(trees, params, phases)
}

fn pts_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
        1..max,
    )
}

/// Every TNN algorithm plus the three variant kinds over one point.
fn query_mix(p: Point, phases: &[u64], issued_at: u64) -> Vec<Query> {
    let mut queries = Vec::new();
    for alg in Algorithm::ALL {
        queries.push(Query::tnn(p).algorithm(alg).issued_at(issued_at));
        queries.push(
            Query::tnn(p)
                .algorithm(alg)
                .phases(phases)
                .issued_at(issued_at),
        );
    }
    queries.push(Query::chain(p).issued_at(issued_at));
    queries.push(Query::order_free(p).issued_at(issued_at));
    queries.push(Query::round_trip(p).issued_at(issued_at).phases(phases));
    queries
}

/// Serve `queries` through a zero-fault-plan server and assert outcome
/// byte-identity with direct engine runs, plus clean fault tallies.
fn assert_zero_plan_transparent<Q: CandidateQueue + 'static>(
    env: &MultiChannelEnv,
    queries: &[Query],
    workers: usize,
) {
    let engine = QueryEngine::<Q>::with_queue_backend(env.clone());
    let expect: Vec<Result<_, TnnError>> = queries.iter().map(|q| engine.run(q)).collect();
    let server = Server::spawn_engine_with_faults(
        engine,
        ServeConfig::new()
            .workers(workers)
            .queue_capacity(queries.len().max(1))
            .batch_window(3),
        FaultPlan::none(),
    );
    let tickets = server.submit_batch(queries.to_vec());
    for ((ticket, expect), query) in tickets.into_iter().zip(&expect).zip(queries) {
        let got = ticket.expect("capacity covers the batch").wait();
        assert_eq!(
            &got, expect,
            "zero-fault serve ≠ engine at workers={workers}, query={query:?}"
        );
        if let Ok(outcome) = got {
            assert!(!outcome.degraded, "zero faults can never degrade");
        }
    }
    let faults = server.fault_stats().expect("faulted spawn exposes stats");
    assert_eq!(faults.injected(), 0, "a zero plan injects nothing");
    let stats = server.shutdown(ShutdownMode::Drain);
    assert!(stats.conserved(), "ticket leak: {stats:?}");
    assert_eq!(
        (stats.retried, stats.degraded, stats.worker_restarts),
        (0, 0, 0)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Zero-fault plans are transparent across k ∈ {2, 3, 4}, every
    /// algorithm, workers ∈ {1, 4}, and both queue backends.
    #[test]
    fn zero_fault_plan_is_byte_transparent(
        k in prop::sample::select(vec![2usize, 3, 4]),
        layer_seed in pts_strategy(100),
        extra in pts_strategy(70),
        (qx, qy) in (-100.0f64..1100.0, -100.0f64..1100.0),
        phase_base in 0u64..50_000,
        issued_at in 0u64..20_000,
    ) {
        let layers: Vec<Vec<Point>> = (0..k)
            .map(|i| {
                let src = if i % 2 == 0 { &layer_seed } else { &extra };
                src.iter()
                    .map(|p| Point::new(p.x + 3.0 * i as f64, p.y + 7.0 * i as f64))
                    .collect()
            })
            .collect();
        let env_phases: Vec<u64> = (0..k as u64).map(|i| i * 13 + 1).collect();
        let env = build_env(&layers, &env_phases);
        let query_phases: Vec<u64> = (0..k as u64).map(|i| phase_base + i * 997).collect();
        let queries = query_mix(Point::new(qx, qy), &query_phases, issued_at);
        for workers in [1usize, 4] {
            assert_zero_plan_transparent::<ArrivalHeap>(&env, &queries, workers);
        }
        assert_zero_plan_transparent::<LinearQueue>(&env, &queries, 2);
    }

    /// One fixed `(seed, plan)` over one admission sequence yields
    /// bit-identical [`tnn_serve::FaultStats`] for 1, 2, and 4 workers —
    /// and across reruns. Preconditions that make this exact: no worker
    /// kills in the plan, cache disabled, Block backpressure, no
    /// deadlines, unlimited retry budgets, single-threaded submission.
    #[test]
    fn fault_stats_are_bit_identical_across_worker_counts(
        seed in 0u64..1_000_000,
        layer_seed in pts_strategy(80),
        drop_per_mille in 0u32..400,
        jitter in 0u64..5,
        outage_len in 0u64..3,
        panic_seq in 0u64..24,
    ) {
        let layers: Vec<Vec<Point>> = (0..2)
            .map(|i| {
                layer_seed
                    .iter()
                    .map(|p| Point::new(p.x + 5.0 * i as f64, p.y + 2.0 * i as f64))
                    .collect()
            })
            .collect();
        let env = build_env(&layers, &[3, 8]);
        let plan = FaultPlan::new(seed)
            .channel(
                0,
                ChannelFaults::NONE
                    .drop_rate(drop_per_mille)
                    .jitter(jitter),
            )
            .channel(1, ChannelFaults::NONE.outage(5, outage_len))
            .panic_at(panic_seq);
        let queries: Vec<Query> = (0..24)
            .map(|i| {
                Query::tnn(Point::new(
                    ((i * 131) % 1000) as f64,
                    ((i * 173) % 1000) as f64,
                ))
            })
            .collect();
        let run = |workers: usize| {
            let server = Server::spawn_with_faults(
                env.clone(),
                ServeConfig::new()
                    .workers(workers)
                    .queue_capacity(queries.len())
                    .backpressure(Backpressure::Block)
                    .cache(CacheConfig::disabled())
                    .retry(
                        RetryPolicy::new()
                            .max_attempts(6)
                            .base(Duration::from_micros(50))
                            .cap(Duration::from_micros(400)),
                    ),
                plan.clone(),
            );
            // Single-threaded submission: the admission sequence — the
            // sole input to every fault draw — is identical per run.
            let tickets: Vec<_> = queries
                .iter()
                .map(|q| server.submit(q.clone()).unwrap())
                .collect();
            for t in &tickets {
                let _ = t.wait();
            }
            let faults = server.fault_stats().unwrap();
            let stats = server.shutdown(ShutdownMode::Drain);
            assert!(stats.conserved(), "ticket leak: {stats:?}");
            assert_eq!(stats.completed, queries.len() as u64);
            faults
        };
        let reference = run(1);
        prop_assert_eq!(run(1), reference, "rerun at 1 worker diverged");
        prop_assert_eq!(run(2), reference, "2 workers diverged");
        prop_assert_eq!(run(4), reference, "4 workers diverged");
    }
}
