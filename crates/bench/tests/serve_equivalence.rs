//! The acceptance gate of the serving subsystem: **serve ≡ engine**.
//!
//! For arbitrary query sets × algorithms × ANN modes × per-query phases
//! × k ∈ {2, 3, 4} channels × worker counts ∈ {1, 2, 4} × all three
//! backpressure policies, every outcome delivered through a
//! [`Server`] ticket must be byte-identical to a direct
//! [`QueryEngine::run`] of the same [`Query`] — concurrency may reorder
//! *completion*, never *answers*. Both candidate-queue backends are
//! covered (the production [`ArrivalHeap`] across the full matrix, the
//! paper-literal [`LinearQueue`] on a spot-check combo), as is the
//! cached k! permutation table of order-free queries under concurrent
//! server workers.

use proptest::prelude::*;
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{
    Algorithm, AnnMode, ArrivalHeap, CandidateQueue, LinearQueue, Query, QueryEngine, QueryScratch,
    TnnError,
};
use tnn_geom::Point;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{Backpressure, ServeConfig, Server, ShutdownMode};

fn build_env(layers: &[Vec<Point>], phases: &[u64]) -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let trees = layers
        .iter()
        .map(|pts| {
            Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    MultiChannelEnv::new(trees, params, phases)
}

fn pts_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
        1..max,
    )
}

/// The full request mix over one query point: every TNN algorithm under
/// exact and dynamic ANN, plus the three variant kinds — with per-query
/// phases on half of them so both the overlay and the identity paths
/// serve.
fn query_mix(p: Point, k: usize, phases: &[u64], ann_factor: f64, issued_at: u64) -> Vec<Query> {
    let dyn_modes = vec![AnnMode::Dynamic { factor: ann_factor }; k];
    let mut queries = Vec::new();
    for alg in Algorithm::ALL {
        queries.push(Query::tnn(p).algorithm(alg).issued_at(issued_at));
        queries.push(
            Query::tnn(p)
                .algorithm(alg)
                .ann_modes(&dyn_modes)
                .phases(phases)
                .issued_at(issued_at)
                .retrieve_answer_objects(false),
        );
    }
    queries.push(Query::chain(p).issued_at(issued_at).phases(phases));
    queries.push(Query::order_free(p).issued_at(issued_at));
    queries.push(Query::round_trip(p).issued_at(issued_at).phases(phases));
    queries
}

/// Runs `queries` directly and through a freshly spawned server with the
/// given worker count and policy, asserting byte-identity per query.
/// The queue capacity covers the whole batch, so `Reject`/`Shed` never
/// fire and every policy must deliver identical answers.
fn assert_serve_equals_engine<Q: CandidateQueue + 'static>(
    env: &MultiChannelEnv,
    queries: &[Query],
    workers: usize,
    policy: Backpressure,
) {
    let engine = QueryEngine::<Q>::with_queue_backend(env.clone());
    let expect: Vec<Result<_, TnnError>> = queries.iter().map(|q| engine.run(q)).collect();
    let server = Server::spawn_engine(
        engine,
        ServeConfig::new()
            .workers(workers)
            .queue_capacity(queries.len().max(1))
            .backpressure(policy)
            .batch_window(3),
    );
    let tickets = server.submit_batch(queries.to_vec());
    for ((ticket, expect), query) in tickets.into_iter().zip(&expect).zip(queries) {
        let got = ticket.expect("capacity covers the whole batch").wait();
        assert_eq!(
            &got, expect,
            "serve ≠ engine at workers={workers}, policy={policy:?}, query={query:?}"
        );
    }
    let stats = server.shutdown(ShutdownMode::Drain);
    assert!(stats.conserved(), "ticket leak: {stats:?}");
    assert_eq!(stats.completed, queries.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full matrix on the production backend: k ∈ {2, 3, 4} ×
    /// workers ∈ {1, 2, 4} × {Block, Reject, Shed}, over a generated
    /// environment, query points, phases, and ANN factor.
    #[test]
    fn served_outcomes_are_byte_identical_to_engine_runs(
        k in prop::sample::select(vec![2usize, 3, 4]),
        layer_seed in pts_strategy(120),
        extra in pts_strategy(90),
        (qx, qy) in (-100.0f64..1100.0, -100.0f64..1100.0),
        (qx2, qy2) in (0.0f64..1000.0, 0.0f64..1000.0),
        phase_base in 0u64..50_000,
        ann_factor in 0.0f64..2.0,
        issued_at in 0u64..20_000,
    ) {
        // k layers derived deterministically from two generated clouds.
        let layers: Vec<Vec<Point>> = (0..k)
            .map(|i| {
                let src = if i % 2 == 0 { &layer_seed } else { &extra };
                src.iter()
                    .map(|p| Point::new(p.x + 3.0 * i as f64, p.y + 7.0 * i as f64))
                    .collect()
            })
            .collect();
        let env_phases: Vec<u64> = (0..k as u64).map(|i| i * 13 + 1).collect();
        let env = build_env(&layers, &env_phases);
        let query_phases: Vec<u64> = (0..k as u64).map(|i| phase_base + i * 997).collect();
        let mut queries = query_mix(Point::new(qx, qy), k, &query_phases, ann_factor, issued_at);
        queries.extend(query_mix(Point::new(qx2, qy2), k, &query_phases, ann_factor, 0));
        for workers in [1usize, 2, 4] {
            for policy in [Backpressure::Block, Backpressure::Reject, Backpressure::Shed] {
                assert_serve_equals_engine::<ArrivalHeap>(&env, &queries, workers, policy);
            }
        }
        // Paper-literal backend spot check: the server is backend-generic,
        // answers must not depend on the queue discipline either.
        assert_serve_equals_engine::<LinearQueue>(&env, &queries, 2, Backpressure::Block);
    }
}

/// Order-free queries cache the k! visit-order permutation table inside
/// each worker's scratch. Many k = 4 order-free queries issued through
/// concurrent server workers must return exactly the `visit_order()`s
/// (and full outcomes) of a single-threaded run that reuses one scratch
/// across all queries — guarding the cached table against any future
/// interior mutability or cross-thread sharing.
#[test]
fn order_free_permutation_cache_is_stable_under_concurrency() {
    let k = 4;
    let layers: Vec<Vec<Point>> = (0..k)
        .map(|i| {
            (0..70 + 10 * i)
                .map(|j| {
                    Point::new(
                        ((j * 37 + i * 101) % 911) as f64,
                        ((j * 53 + i * 67) % 877) as f64,
                    )
                })
                .collect()
        })
        .collect();
    let env = build_env(&layers, &[5, 11, 17, 23]);
    let engine = QueryEngine::new(env.clone());
    let queries: Vec<Query> = (0..64)
        .map(|i| {
            Query::order_free(Point::new(
                ((i * 131) % 1000) as f64,
                ((i * 173) % 1000) as f64,
            ))
        })
        .collect();

    // Single-threaded reference: one scratch reused across every query,
    // so the permutation table is built once and recycled 63 times.
    let mut scratch = QueryScratch::<ArrivalHeap>::default();
    let expect: Vec<_> = queries
        .iter()
        .map(|q| engine.run_with(q, &mut scratch).unwrap())
        .collect();

    for workers in [2usize, 4] {
        let server = Server::spawn_engine(
            QueryEngine::new(env.clone()),
            ServeConfig::new()
                .workers(workers)
                .queue_capacity(queries.len())
                .batch_window(4),
        );
        let tickets = server.submit_batch(queries.clone());
        for (ticket, expect) in tickets.into_iter().zip(&expect) {
            let got = ticket.unwrap().wait().unwrap();
            assert_eq!(got.visit_order(), expect.visit_order(), "workers={workers}");
            assert_eq!(&got, expect, "workers={workers}");
        }
        let stats = server.shutdown(ShutdownMode::Drain);
        assert!(stats.conserved());
    }
}

/// Recoverable query-level errors must also be identical through the
/// server: empty channels and non-finite points travel through tickets
/// exactly as `engine.run` returns them.
#[test]
fn query_errors_are_identical_through_the_server() {
    let params = BroadcastParams::new(64);
    let pts: Vec<Point> = (0..40)
        .map(|i| Point::new((i * 13 % 97) as f64, (i * 29 % 89) as f64))
        .collect();
    let full = Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap());
    let empty = Arc::new(RTree::empty(params.rtree_params()));
    let env = MultiChannelEnv::new(vec![full, empty], params, &[0, 0]);
    let engine = QueryEngine::new(env.clone());
    let server = Server::spawn(env, ServeConfig::new().workers(2));
    for query in [
        Query::tnn(Point::ORIGIN),
        Query::chain(Point::ORIGIN),
        Query::order_free(Point::ORIGIN),
        Query::round_trip(Point::ORIGIN),
        Query::tnn(Point::new(f64::INFINITY, 0.0)),
    ] {
        let expect = engine.run(&query);
        assert!(expect.is_err());
        assert_eq!(server.submit(query).unwrap().wait(), expect);
    }
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.completed, 5);
    assert!(stats.conserved());
}
