//! The acceptance gate of the sharded serving layer: **shard ≡ engine**.
//!
//! For arbitrary query sets × shard counts {1, 2, 4, 8} × replication
//! factors {1, 2} × all four algorithms (plus the chained, order-free,
//! and round-trip kinds) × k ∈ {2, 3, 4} channels × both partitioning
//! schemes × both queue backends, every route and total a
//! [`ShardRouter`] merges from its scatter-gather phases must be
//! **byte-identical** to an unsharded [`QueryEngine::run`] of the same
//! [`Query`] — sharding may redistribute *work*, never change
//! *answers*. Validation errors must match too, with the same payloads.

use proptest::prelude::*;
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{Algorithm, AnnMode, CandidateQueue, LinearQueue, Query, QueryEngine, TnnError};
use tnn_geom::Point;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{ServeConfig, ShutdownMode};
use tnn_shard::{Partition, ShardConfig, ShardRouter};

fn build_env(layers: &[Vec<Point>], phases: &[u64]) -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let trees = layers
        .iter()
        .map(|pts| {
            let tree = if pts.is_empty() {
                RTree::empty(params.rtree_params())
            } else {
                RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap()
            };
            Arc::new(tree)
        })
        .collect();
    MultiChannelEnv::new(trees, params, phases)
}

fn pts_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
        1..max,
    )
}

/// Every query kind from one point: the four TNN algorithms (exact and
/// dynamic-ANN — ANN may only grow the filter radius, never change the
/// answer), plus the three variant kinds.
fn query_mix(p: Point, k: usize, ann_factor: f64, issued_at: u64) -> Vec<Query> {
    let dyn_modes = vec![AnnMode::Dynamic { factor: ann_factor }; k];
    let mut queries = Vec::new();
    for alg in Algorithm::ALL {
        queries.push(Query::tnn(p).algorithm(alg).issued_at(issued_at));
        queries.push(Query::tnn(p).algorithm(alg).ann_modes(&dyn_modes));
    }
    queries.push(Query::chain(p).issued_at(issued_at));
    queries.push(Query::order_free(p));
    queries.push(Query::round_trip(p).issued_at(issued_at));
    queries
}

/// Runs `queries` through a fresh router under `config` and asserts
/// every merged route and total is byte-identical to the engine's.
fn assert_sharded_equals_engine<QB: CandidateQueue + 'static>(
    env: &MultiChannelEnv,
    queries: &[Query],
    config: ShardConfig,
    label: &str,
) {
    let engine = QueryEngine::<QB>::with_queue_backend(env.clone());
    let router = ShardRouter::<QB>::spawn_with_backend(env.clone(), config);
    for query in queries {
        let got = router.run(query).expect("validated queries run");
        let want = engine.run(query).expect("validated queries run");
        assert_eq!(
            got.route, want.route,
            "route diverged at {label}, query={query:?}"
        );
        assert_eq!(
            got.total_dist, want.total_dist,
            "total diverged at {label}, query={query:?}"
        );
    }
    let stats = router.shutdown(ShutdownMode::Drain);
    assert!(stats.conserved(), "ticket leak at {label}: {stats:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full grid on the production backend — shard counts
    /// {1, 2, 4, 8} × replication {1, 2} × the whole query mix — plus a
    /// paper-literal `LinearQueue` spot check and a data-adaptive
    /// top-level-split spot check (the merge is partition- and
    /// backend-oblivious).
    #[test]
    fn sharded_answers_are_byte_identical_to_the_engine(
        k in prop::sample::select(vec![2usize, 3, 4]),
        layer_seed in pts_strategy(90),
        extra in pts_strategy(60),
        (qx, qy) in (-100.0f64..1100.0, -100.0f64..1100.0),
        ann_factor in 0.0f64..2.0,
        issued_at in 0u64..20_000,
    ) {
        let layers: Vec<Vec<Point>> = (0..k)
            .map(|i| {
                let src = if i % 2 == 0 { &layer_seed } else { &extra };
                src.iter()
                    .map(|p| Point::new(p.x + 3.0 * i as f64, p.y + 7.0 * i as f64))
                    .collect()
            })
            .collect();
        let phases: Vec<u64> = (0..k as u64).map(|i| i * 13 + 1).collect();
        let env = build_env(&layers, &phases);
        let queries = query_mix(Point::new(qx, qy), k, ann_factor, issued_at);
        let serve = ServeConfig::new().workers(1).queue_capacity(8);
        for shards in [1usize, 2, 4, 8] {
            for replication in [1usize, 2] {
                let config = ShardConfig::new()
                    .shards(shards)
                    .replication(replication)
                    .replication_warmup(4)
                    .serve(serve);
                assert_sharded_equals_engine::<tnn_core::ArrivalHeap>(
                    &env,
                    &queries,
                    config,
                    &format!("k={k} shards={shards} replication={replication}"),
                );
            }
        }
        assert_sharded_equals_engine::<LinearQueue>(
            &env,
            &queries,
            ShardConfig::new().shards(4).serve(serve),
            &format!("k={k} linear-reference"),
        );
        assert_sharded_equals_engine::<tnn_core::ArrivalHeap>(
            &env,
            &queries,
            ShardConfig::new().partition(Partition::TopLevel).serve(serve),
            &format!("k={k} top-level split"),
        );
    }
}

/// Validation failures carry the same error payloads as the engine —
/// including the *first* empty channel's index.
#[test]
fn validation_errors_match_the_engine_exactly() {
    let pts: Vec<Point> = (0..40)
        .map(|i| Point::new((i * 37 % 211) as f64, (i * 59 % 223) as f64))
        .collect();
    let serve = ServeConfig::new().workers(1).queue_capacity(8);

    // Channel 1 of 3 is empty.
    let env = build_env(&[pts.clone(), Vec::new(), pts.clone()], &[1, 2, 3]);
    let engine = QueryEngine::new(env.clone());
    let router = ShardRouter::spawn(env, ShardConfig::new().shards(4).serve(serve));
    for query in [
        Query::tnn(Point::new(5.0, 5.0)),
        Query::chain(Point::new(5.0, 5.0)),
        Query::order_free(Point::new(5.0, 5.0)),
        Query::round_trip(Point::new(5.0, 5.0)),
    ] {
        assert_eq!(
            router.run(&query).unwrap_err(),
            engine.run(&query).unwrap_err()
        );
        assert_eq!(
            router.run(&query).unwrap_err(),
            TnnError::EmptyChannel { channel: 1 }
        );
    }
    router.shutdown(ShutdownMode::Drain);

    // Single-channel environment: the recoverable channel-count error.
    let env1 = build_env(std::slice::from_ref(&pts), &[1]);
    let engine1 = QueryEngine::new(env1.clone());
    let router1 = ShardRouter::spawn(env1, ShardConfig::new().serve(serve));
    let q = Query::tnn(Point::new(5.0, 5.0));
    assert_eq!(router1.run(&q).unwrap_err(), engine1.run(&q).unwrap_err());

    // Non-finite query points, every kind.
    let env2 = build_env(&[pts.clone(), pts], &[1, 2]);
    let engine2 = QueryEngine::new(env2.clone());
    let router2 = ShardRouter::spawn(env2, ShardConfig::new().shards(2).serve(serve));
    for bad in [
        Query::tnn(Point::new(f64::NAN, 0.0)),
        Query::order_free(Point::new(0.0, f64::INFINITY)),
        Query::round_trip(Point::new(f64::NEG_INFINITY, 0.0)),
    ] {
        assert_eq!(
            router2.run(&bad).unwrap_err(),
            engine2.run(&bad).unwrap_err()
        );
        assert_eq!(router2.run(&bad).unwrap_err(), TnnError::NonFiniteQuery);
    }
    router2.shutdown(ShutdownMode::Drain);
}
