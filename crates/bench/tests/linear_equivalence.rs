//! The acceptance gate of the heap-queue optimization: for fixed seeds,
//! [`tnn_sim::run_batch`] (heap-ordered candidate queues) and
//! [`tnn_sim::run_batch_linear`] (the paper-literal O(n) scan reference)
//! must produce **bit-identical** `BatchStats` — same pages, same finish
//! times, same answers — across all four algorithms and ANN modes.

use std::sync::Arc;
use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, AnnMode, TnnConfig};
use tnn_datasets::uniform_points;
use tnn_geom::Rect;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_sim::{run_batch, run_batch_linear, BatchConfig};

fn tree(n: usize, seed: u64, params: &BroadcastParams) -> Arc<RTree> {
    let region = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
    let pts = uniform_points(n, &region, seed);
    Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
}

#[test]
fn batch_stats_bit_identical_across_backends() {
    let params = BroadcastParams::new(64);
    let region = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
    let s = tree(400, 21, &params);
    let r = tree(350, 22, &params);
    for alg in Algorithm::ALL {
        for (seed, ann) in [
            (0xBEu64, [AnnMode::Exact; 2]),
            (0x5EED, [AnnMode::Dynamic { factor: 1.0 }; 2]),
        ] {
            let cfg = BatchConfig {
                params,
                tnn: TnnConfig::exact(alg).with_ann_modes(&ann),
                queries: 32,
                seed,
                check_oracle: false,
            };
            let heap = run_batch(&s, &r, &region, &cfg);
            let linear = run_batch_linear(&s, &r, &region, &cfg);
            assert_eq!(heap, linear, "{} seed {seed:#x}", alg.name());
        }
    }
}

#[test]
fn batch_stats_bit_identical_with_oracle_checks() {
    let params = BroadcastParams::new(128);
    let region = Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0);
    let s = tree(250, 31, &params);
    let r = tree(300, 32, &params);
    let cfg = BatchConfig {
        params,
        tnn: TnnConfig::exact(Algorithm::HybridNn),
        queries: 24,
        seed: 0xC0FFEE,
        check_oracle: true,
    };
    let heap = run_batch(&s, &r, &region, &cfg);
    let linear = run_batch_linear(&s, &r, &region, &cfg);
    assert_eq!(heap, linear);
    assert_eq!(heap.fail_rate, 0.0);
}
