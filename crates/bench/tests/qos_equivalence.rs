//! The acceptance gate of the QoS layer: **cache ≡ engine** and
//! **priority never reorders within a class**.
//!
//! For arbitrary query sets × all four algorithms × ANN modes ×
//! per-query phases × k ∈ {2, 3, 4} channels, every outcome served from
//! the result cache must be **byte-identical** to a fresh
//! [`QueryEngine::run`] of the same [`Query`] — caching may
//! short-circuit *work*, never change *answers*. The second gate pins
//! the scheduling contract: for a single submitter, completion within a
//! priority class is FIFO in submission order (strict-priority draining
//! reorders *between* classes only).

use proptest::prelude::*;
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{Algorithm, AnnMode, LinearQueue, Query, QueryEngine};
use tnn_geom::Point;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{CacheConfig, Qos, ServeConfig, Server, ShutdownMode};

fn build_env(layers: &[Vec<Point>], phases: &[u64]) -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let trees = layers
        .iter()
        .map(|pts| {
            Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    MultiChannelEnv::new(trees, params, phases)
}

fn pts_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
        1..max,
    )
}

/// The full request mix over one query point: every TNN algorithm under
/// exact and dynamic ANN, plus the three variant kinds — with per-query
/// phases on half of them so both the overlay and the identity paths
/// are cached. All entries are key-distinct, so a primed cache must hit
/// every one of them.
fn query_mix(p: Point, k: usize, phases: &[u64], ann_factor: f64, issued_at: u64) -> Vec<Query> {
    let dyn_modes = vec![AnnMode::Dynamic { factor: ann_factor }; k];
    let mut queries = Vec::new();
    for alg in Algorithm::ALL {
        queries.push(Query::tnn(p).algorithm(alg).issued_at(issued_at));
        queries.push(
            Query::tnn(p)
                .algorithm(alg)
                .ann_modes(&dyn_modes)
                .phases(phases)
                .issued_at(issued_at)
                .retrieve_answer_objects(false),
        );
    }
    queries.push(Query::chain(p).issued_at(issued_at).phases(phases));
    queries.push(Query::order_free(p).issued_at(issued_at));
    queries.push(Query::round_trip(p).issued_at(issued_at).phases(phases));
    queries
}

/// Primes a caching server with `queries`, repeats them, and asserts
/// every repeat (a) was served from the cache and (b) is byte-identical
/// to a fresh, uncached engine run.
fn assert_cache_hits_equal_engine<QB: tnn_core::CandidateQueue + 'static>(
    env: &MultiChannelEnv,
    queries: &[Query],
    workers: usize,
) {
    let engine = QueryEngine::<QB>::with_queue_backend(env.clone());
    let server = Server::spawn_engine(
        engine,
        ServeConfig::new()
            .workers(workers)
            .queue_capacity(queries.len().max(1))
            .cache(CacheConfig::new().capacity(4 * queries.len()))
            .batch_window(3),
    );
    // Prime: the first pass runs everything through the engine and
    // fills the cache (entries are key-distinct, so no pass-1 hits).
    for ticket in server.submit_batch(queries.to_vec()) {
        let _ = ticket.expect("capacity covers the batch").wait();
    }
    let primed = server.stats();
    assert_eq!(primed.cache_hits, 0, "pass 1 cannot hit a cold cache");
    // Repeat: every query must now be answered from the cache, with
    // bytes identical to an uncached engine run of the same query.
    let fresh_engine = QueryEngine::<QB>::with_queue_backend(env.clone());
    let tickets = server.submit_batch(queries.to_vec());
    for (ticket, query) in tickets.into_iter().zip(queries) {
        let got = ticket.expect("capacity covers the batch").wait();
        let fresh = fresh_engine.run(query);
        assert_eq!(
            got, fresh,
            "cache hit ≠ fresh engine run at workers={workers}, query={query:?}"
        );
    }
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(
        stats.cache_hits - primed.cache_hits,
        queries.len() as u64,
        "pass 2 must be all hits: {stats:?}"
    );
    assert!(stats.conserved(), "ticket leak: {stats:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cache-hit byte-identity over the full matrix on the production
    /// backend (k ∈ {2, 3, 4} × workers ∈ {1, 4}), plus a paper-literal
    /// `LinearQueue` spot check — the cache is backend-oblivious.
    #[test]
    fn cache_hits_are_byte_identical_to_fresh_engine_runs(
        k in prop::sample::select(vec![2usize, 3, 4]),
        layer_seed in pts_strategy(110),
        extra in pts_strategy(80),
        (qx, qy) in (-100.0f64..1100.0, -100.0f64..1100.0),
        phase_base in 0u64..50_000,
        ann_factor in 0.0f64..2.0,
        issued_at in 0u64..20_000,
    ) {
        let layers: Vec<Vec<Point>> = (0..k)
            .map(|i| {
                let src = if i % 2 == 0 { &layer_seed } else { &extra };
                src.iter()
                    .map(|p| Point::new(p.x + 3.0 * i as f64, p.y + 7.0 * i as f64))
                    .collect()
            })
            .collect();
        let env_phases: Vec<u64> = (0..k as u64).map(|i| i * 13 + 1).collect();
        let env = build_env(&layers, &env_phases);
        let query_phases: Vec<u64> = (0..k as u64).map(|i| phase_base + i * 997).collect();
        let queries = query_mix(Point::new(qx, qy), k, &query_phases, ann_factor, issued_at);
        for workers in [1usize, 4] {
            assert_cache_hits_equal_engine::<tnn_core::ArrivalHeap>(&env, &queries, workers);
        }
        assert_cache_hits_equal_engine::<LinearQueue>(&env, &queries, 2);
    }
}

fn mid_env(k: usize) -> MultiChannelEnv {
    let layers: Vec<Vec<Point>> = (0..k)
        .map(|i| {
            (0..80 + 15 * i)
                .map(|j| {
                    Point::new(
                        ((j * 37 + i * 101) % 911) as f64,
                        ((j * 53 + i * 67) % 877) as f64,
                    )
                })
                .collect()
        })
        .collect();
    let phases: Vec<u64> = (0..k as u64).map(|i| i * 11 + 3).collect();
    build_env(&layers, &phases)
}

/// For a single submitter, priority scheduling never reorders results
/// *within* a class: one atomic mixed-class batch against one worker
/// completes each class FIFO in submission order (and the classes
/// themselves in strict priority order). One submission stamp plus
/// resolver-stamped completions make latency order the completion
/// order.
#[test]
fn within_class_completion_is_fifo_for_a_single_submitter() {
    for k in [2usize, 3] {
        let server = Server::spawn(
            mid_env(k),
            ServeConfig::new()
                .workers(1)
                .cache(CacheConfig::disabled())
                .batch_window(5),
        );
        let class_of = |i: usize| match i % 3 {
            0 => Qos::interactive(),
            1 => Qos::batch(),
            _ => Qos::background(),
        };
        let submissions: Vec<(Query, Qos)> = (0..90)
            .map(|i| {
                let p = Point::new(((i * 131) % 1000) as f64, ((i * 173) % 1000) as f64);
                (Query::tnn(p), class_of(i))
            })
            .collect();
        let tickets: Vec<_> = server
            .submit_batch_qos(submissions)
            .into_iter()
            .map(|t| t.unwrap())
            .collect();
        let stats = server.shutdown(ShutdownMode::Drain);
        assert_eq!(stats.completed, 90);
        assert!(stats.conserved());
        for class in 0..3usize {
            let latencies: Vec<_> = tickets
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == class)
                .map(|(_, t)| t.latency().expect("drained tickets are resolved"))
                .collect();
            for window in latencies.windows(2) {
                assert!(
                    window[0] <= window[1],
                    "within-class completion reordered at k={k}, class {class}"
                );
            }
        }
    }
}

/// Priming through *different* workers and hitting through others never
/// changes bytes either: many submitters prime and repeat a shared
/// query set concurrently; every resolved outcome equals the engine's.
#[test]
fn concurrent_priming_and_hitting_stays_byte_identical() {
    let env = mid_env(3);
    let engine = QueryEngine::new(env.clone());
    let queries: Vec<Query> = (0..32)
        .map(|i| {
            Query::tnn(Point::new(
                ((i * 239) % 1000) as f64,
                ((i * 419) % 1000) as f64,
            ))
        })
        .collect();
    let expect: Vec<_> = queries.iter().map(|q| engine.run(q).unwrap()).collect();
    let server = Server::spawn(env, ServeConfig::new().workers(4).batch_window(4));
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let server = &server;
            let queries = &queries;
            let expect = &expect;
            scope.spawn(move || {
                for round in 0..8 {
                    // Rotate the submission order per thread and round so
                    // primes and hits interleave across workers.
                    for i in 0..queries.len() {
                        let j = (i + t * 7 + round * 13) % queries.len();
                        let got = server.submit(queries[j].clone()).unwrap().wait().unwrap();
                        assert_eq!(got, expect[j], "thread {t}, round {round}");
                    }
                }
            });
        }
    });
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.completed, 4 * 8 * 32);
    assert!(stats.cache_hits > 0, "repeats must hit: {stats:?}");
    assert!(stats.conserved());
}
