//! The acceptance gate of mutable environments: **updated ≡ rebuilt**.
//!
//! For arbitrary interleaved insert/delete schedules applied through
//! [`DeltaOverlay`], the materialized tree must be **byte-identical**
//! to a tree rebuilt from scratch over the same live set — and every
//! query outcome over the updated environment must match the rebuilt
//! environment exactly, across all four algorithms, k ∈ {2, 3, 4}
//! channels, and both candidate-queue backends. Degenerate schedules
//! (delete-to-empty channels) must degrade to the engine's recoverable
//! `EmptyChannel` error, identically on both sides.
//!
//! The second gate pins cache identity across epochs: after an
//! environment swap, a served answer (cold or cached) must be
//! byte-identical to a fresh engine run over the new environment —
//! pre-swap cache entries can never leak through.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{Algorithm, CandidateQueue, LinearQueue, Query, QueryEngine};
use tnn_geom::Point;
use tnn_rtree::{DeltaOverlay, ObjectId, PackingAlgorithm, RTree, RTreeParams};
use tnn_serve::{ServeConfig, Server, ShutdownMode};

/// One edit against a channel. Ids are drawn from a small range on
/// purpose: schedules collide with base objects (overwrites), with
/// their own inserts (upserts), and delete ids that never existed.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32, Point),
    Delete(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    ((0u32..2), (0u32..48), (0.0f64..1000.0, 0.0f64..1000.0)).prop_map(|(kind, id, (x, y))| {
        if kind == 0 {
            Op::Insert(id, Point::new(x, y))
        } else {
            Op::Delete(id)
        }
    })
}

fn channel_strategy() -> impl Strategy<Value = (Vec<Point>, Vec<Op>)> {
    (
        prop::collection::vec(
            (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
            1..24,
        ),
        prop::collection::vec(op_strategy(), 0..32),
    )
}

fn params() -> BroadcastParams {
    BroadcastParams::new(64)
}

fn rtree_params() -> RTreeParams {
    params().rtree_params()
}

/// Applies `schedule` through a [`DeltaOverlay`] over `base` and — in
/// parallel — through a plain reference map (the executable spec of
/// what the schedule's net effect should be).
fn apply_schedule(base: &[Point], schedule: &[Op]) -> (DeltaOverlay, BTreeMap<u32, Point>) {
    let base_tree = Arc::new(RTree::build(base, rtree_params(), PackingAlgorithm::Str).unwrap());
    let mut overlay = DeltaOverlay::new(base_tree);
    let mut reference: BTreeMap<u32, Point> = base
        .iter()
        .enumerate()
        .map(|(i, &p)| (i as u32, p))
        .collect();
    for op in schedule {
        match *op {
            Op::Insert(id, p) => {
                overlay.insert(ObjectId(id), p).unwrap();
                reference.insert(id, p);
            }
            Op::Delete(id) => {
                let was_live = overlay.delete(ObjectId(id));
                assert_eq!(was_live, reference.remove(&id).is_some());
            }
        }
    }
    assert_eq!(overlay.len(), reference.len());
    (overlay, reference)
}

/// The from-scratch rebuild of `reference`, preserving original ids.
fn rebuild(reference: &BTreeMap<u32, Point>) -> RTree {
    if reference.is_empty() {
        return RTree::empty(rtree_params());
    }
    let pairs: Vec<(Point, ObjectId)> = reference
        .iter()
        .map(|(&id, &p)| (p, ObjectId(id)))
        .collect();
    RTree::build_with_ids(&pairs, rtree_params(), PackingAlgorithm::Str).unwrap()
}

/// A channel-ready tree over `points` in the given order: broadcast
/// layouts require dense ids, exactly what a cycle cut assigns when it
/// renumbers the (canonically ordered) live set.
fn dense_tree(points: &[Point]) -> RTree {
    if points.is_empty() {
        RTree::empty(rtree_params())
    } else {
        RTree::build(points, rtree_params(), PackingAlgorithm::Str).unwrap()
    }
}

/// Every TNN algorithm plus the three variant kinds over one point.
fn query_mix(p: Point) -> Vec<Query> {
    let mut queries: Vec<Query> = Algorithm::ALL
        .iter()
        .map(|&alg| Query::tnn(p).algorithm(alg).issued_at(7))
        .collect();
    queries.push(Query::chain(p).issued_at(7));
    queries.push(Query::order_free(p).issued_at(7));
    queries.push(Query::round_trip(p).issued_at(7));
    queries
}

fn assert_envs_answer_identically<QB: CandidateQueue>(
    updated: &MultiChannelEnv,
    rebuilt: &MultiChannelEnv,
    queries: &[Query],
) {
    let updated_engine = QueryEngine::<QB>::with_queue_backend(updated.clone());
    let rebuilt_engine = QueryEngine::<QB>::with_queue_backend(rebuilt.clone());
    for query in queries {
        assert_eq!(
            updated_engine.run(query),
            rebuilt_engine.run(query),
            "updated and rebuilt environments diverged on {query:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Updated ≡ rebuilt, end to end: materialized overlays are
    /// byte-identical to from-scratch builds, and the environments over
    /// them answer every query identically (answers *and* errors) on
    /// both queue backends.
    #[test]
    fn interleaved_schedules_equal_rebuild_from_scratch(
        channels in prop::collection::vec(channel_strategy(), 2..5),
        (qx, qy) in (0.0f64..1000.0, 0.0f64..1000.0),
    ) {
        let mut updated_trees = Vec::new();
        let mut rebuilt_trees = Vec::new();
        for (base, schedule) in &channels {
            let (overlay, reference) = apply_schedule(base, schedule);
            let updated = overlay.materialize().unwrap();
            let rebuilt = rebuild(&reference);
            prop_assert_eq!(
                updated.content_fingerprint(),
                rebuilt.content_fingerprint(),
                "live-set fingerprints diverged"
            );
            prop_assert_eq!(
                format!("{updated:?}"),
                format!("{rebuilt:?}"),
                "materialized tree is not byte-identical to the rebuild"
            );
            // Channel trees need dense ids (a cycle cut renumbers the
            // canonical live set) — derived through two independent
            // paths: the overlay's merged view vs the reference map.
            let from_overlay: Vec<Point> =
                overlay.live_points().iter().map(|&(p, _)| p).collect();
            let from_reference: Vec<Point> = reference.values().copied().collect();
            updated_trees.push(Arc::new(dense_tree(&from_overlay)));
            rebuilt_trees.push(Arc::new(dense_tree(&from_reference)));
        }
        let phases: Vec<u64> = (0..channels.len() as u64).map(|i| i * 5 + 1).collect();
        let updated_env = MultiChannelEnv::new(updated_trees, params(), &phases);
        let rebuilt_env = MultiChannelEnv::new(rebuilt_trees, params(), &phases);
        // Equal content ⇒ equal identity: caches keyed on the
        // fingerprint treat the two environments as the same data.
        prop_assert_eq!(updated_env.fingerprint(), rebuilt_env.fingerprint());
        let queries = query_mix(Point::new(qx, qy));
        assert_envs_answer_identically::<tnn_core::ArrivalHeap>(
            &updated_env, &rebuilt_env, &queries,
        );
        assert_envs_answer_identically::<LinearQueue>(&updated_env, &rebuilt_env, &queries);
    }

    /// Cache identity across epochs: prime a caching server, swap in a
    /// mutated environment, and every post-swap answer — including a
    /// repeat that hits the new epoch's cache — must be byte-identical
    /// to a fresh engine run over the swapped-in environment.
    #[test]
    fn post_swap_answers_equal_fresh_runs(
        channels in prop::collection::vec(channel_strategy(), 2..4),
        (qx, qy) in (0.0f64..1000.0, 0.0f64..1000.0),
    ) {
        let phases: Vec<u64> = (0..channels.len() as u64).map(|i| i * 5 + 1).collect();
        let base_env = MultiChannelEnv::new(
            channels
                .iter()
                .map(|(base, _)| {
                    Arc::new(RTree::build(base, rtree_params(), PackingAlgorithm::Str).unwrap())
                })
                .collect(),
            params(),
            &phases,
        );
        let next_env = base_env.advance(
            channels
                .iter()
                .map(|(base, schedule)| {
                    let (overlay, _) = apply_schedule(base, schedule);
                    let live: Vec<Point> =
                        overlay.live_points().iter().map(|&(p, _)| p).collect();
                    Arc::new(dense_tree(&live))
                })
                .collect(),
        );
        prop_assume!(next_env.channels().iter().all(|c| c.tree().num_objects() > 0));

        let server = Server::spawn(base_env.clone(), ServeConfig::new().workers(1));
        let fresh = QueryEngine::new(next_env.clone());
        let queries = query_mix(Point::new(qx, qy));
        // Prime the cache at the base epoch...
        for query in &queries {
            server.submit(query.clone()).unwrap().wait().ok();
        }
        server.swap_env(next_env).unwrap();
        prop_assert_eq!(server.engine().env().epoch(), base_env.epoch() + 1);
        // ...then every post-swap submission (first a cold run at the
        // new epoch, then a cached repeat) must equal the fresh engine.
        for round in 0..2 {
            for query in &queries {
                let got = server.submit(query.clone()).unwrap().wait();
                let want = fresh.run(query);
                prop_assert_eq!(
                    got,
                    want,
                    "round {} diverged from the fresh engine on {:?}",
                    round,
                    query
                );
            }
        }
        let stats = server.shutdown(ShutdownMode::Drain);
        prop_assert!(stats.conserved(), "{stats:?}");
    }
}
