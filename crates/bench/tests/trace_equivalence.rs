//! The observability acceptance gate: **tracing is byte-transparent**.
//!
//! For arbitrary query sets over all four TNN algorithms (plus the
//! variant kinds) × k ∈ {2, 3, 4} channels × worker counts × both
//! candidate-queue backends, a server spawned with
//! [`TraceConfig::on()`] must deliver outcomes **byte-identical** to an
//! identically configured server with tracing off, and every counter
//! field of the final [`ServeStats`] must match — spans, the flight
//! recorder, and the extra `Instant` stamps may cost wall time, never
//! answers or accounting. On top of transparency, the flight recorder
//! must conserve: exactly one trace offered per worker-executed job,
//! retention bounded by the configured capacities, and every retained
//! sequence number a real admission.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{
    Algorithm, AnnMode, ArrivalHeap, CandidateQueue, LinearQueue, Query, QueryEngine, TnnError,
};
use tnn_geom::Point;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{
    Backpressure, CacheConfig, ChannelFaults, Degradation, FaultPlan, Priority, RetryPolicy,
    ServeConfig, ServeStats, Server, ShutdownMode, TraceConfig,
};

fn build_env(layers: &[Vec<Point>], phases: &[u64]) -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let trees = layers
        .iter()
        .map(|pts| {
            Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    MultiChannelEnv::new(trees, params, phases)
}

fn pts_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
        1..max,
    )
}

/// All four algorithms (exact and dynamic ANN) plus the variant kinds
/// over one query point — the same mix the serve gate runs.
fn query_mix(p: Point, k: usize, phases: &[u64], ann_factor: f64) -> Vec<Query> {
    let dyn_modes = vec![AnnMode::Dynamic { factor: ann_factor }; k];
    let mut queries = Vec::new();
    for alg in Algorithm::ALL {
        queries.push(Query::tnn(p).algorithm(alg));
        queries.push(
            Query::tnn(p)
                .algorithm(alg)
                .ann_modes(&dyn_modes)
                .phases(phases),
        );
    }
    queries.push(Query::chain(p).phases(phases));
    queries.push(Query::order_free(p));
    queries.push(Query::round_trip(p).phases(phases));
    queries
}

/// Every counter field of two stats snapshots must match; only the
/// latency *distributions* (wall-clock buckets) may differ, and even
/// their observation counts must agree.
fn assert_counters_eq(off: &ServeStats, on: &ServeStats) {
    for class in Priority::ALL {
        let (a, b) = (off.class(class), on.class(class));
        assert_eq!(
            (
                a.submitted,
                a.accepted,
                a.rejected,
                a.shed,
                a.cancelled,
                a.completed,
                a.expired,
                a.queued,
                a.in_flight,
                a.retried,
                a.degraded,
                a.latency.count(),
            ),
            (
                b.submitted,
                b.accepted,
                b.rejected,
                b.shed,
                b.cancelled,
                b.completed,
                b.expired,
                b.queued,
                b.in_flight,
                b.retried,
                b.degraded,
                b.latency.count(),
            ),
            "class {class:?} counters diverge under tracing: off={a:?} on={b:?}"
        );
    }
    assert_eq!(
        (
            off.cache_hits,
            off.cache_misses,
            off.cache_expired,
            off.cache_bypass,
            off.cache_coalesced,
            off.worker_restarts,
        ),
        (
            on.cache_hits,
            on.cache_misses,
            on.cache_expired,
            on.cache_bypass,
            on.cache_coalesced,
            on.worker_restarts,
        ),
        "flat counters diverge under tracing: off={off:?} on={on:?}"
    );
}

/// Runs `queries` through an untraced and a traced server (identical
/// configs otherwise), asserting byte-identical outcomes, equal
/// counters, and flight-recorder conservation.
fn assert_trace_transparent<Q: CandidateQueue + 'static>(
    env: &MultiChannelEnv,
    queries: &[Query],
    workers: usize,
    cache: CacheConfig,
) {
    let config = || {
        ServeConfig::new()
            .workers(workers)
            .queue_capacity(queries.len().max(1))
            .backpressure(Backpressure::Block)
            .cache(cache)
            .batch_window(3)
    };
    let off = Server::spawn_engine(QueryEngine::<Q>::with_queue_backend(env.clone()), config());
    let on = Server::spawn_engine(
        QueryEngine::<Q>::with_queue_backend(env.clone()),
        config().trace(TraceConfig::on()),
    );
    assert!(off.recorder().is_none(), "Off must not build a recorder");
    let off_tickets = off.submit_batch(queries.to_vec());
    let on_tickets = on.submit_batch(queries.to_vec());
    for ((off_t, on_t), query) in off_tickets.into_iter().zip(on_tickets).zip(queries) {
        let want: Result<_, TnnError> = off_t.expect("capacity covers the batch").wait();
        let got = on_t.expect("capacity covers the batch").wait();
        assert_eq!(
            got, want,
            "traced ≠ untraced at workers={workers}, query={query:?}"
        );
    }
    let off_stats = off.shutdown(ShutdownMode::Drain);
    // Shutdown joins the workers first: a ticket resolves *before* its
    // trace is offered, so the recorder is only guaranteed caught up
    // once the worker threads are gone.
    let on_stats = on.shutdown(ShutdownMode::Drain);
    assert!(off_stats.conserved() && on_stats.conserved());
    assert_counters_eq(&off_stats, &on_stats);
    let recorder = on.recorder().expect("On builds a recorder");
    let slowest = recorder.slowest();
    assert!(slowest.len() <= recorder.slowest_capacity());
    assert!(recorder.flagged().len() <= recorder.flagged_capacity());
    let mut seqs: Vec<u64> = slowest.iter().map(|t| t.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), slowest.len(), "a seat was double-filled");
    for trace in &slowest {
        assert!(!trace.spans.is_empty(), "retained trace without spans");
    }
    let (recorded, max_seq) = (recorder.recorded(), slowest.iter().map(|t| t.seq).max());
    // One trace per worker-executed job. Cache hits at *admission*
    // (a repeat submitted after its leader already completed — a race
    // between the submit loop and the worker) resolve without a worker
    // and are untraced by design, so the exact offer count floats
    // between `completed - cache_hits` and `completed`; with the cache
    // disabled the bound collapses to equality.
    assert!(
        recorded <= on_stats.completed && recorded >= on_stats.completed - on_stats.cache_hits,
        "trace offers must conserve completions: recorded={recorded}, {on_stats:?}"
    );
    if let Some(max_seq) = max_seq {
        assert!(max_seq < on_stats.accepted, "a trace names a ghost seq");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The transparency matrix: k ∈ {2, 3, 4}, workers ∈ {1, 2, 4}
    /// (single-worker runs keep the cache on — its hit/miss/coalesce
    /// classification is deterministic there; multi-worker runs disable
    /// it so the classification cannot race), production and
    /// paper-literal queue backends.
    #[test]
    fn tracing_never_changes_outcomes_or_counters(
        k in prop::sample::select(vec![2usize, 3, 4]),
        layer_seed in pts_strategy(80),
        extra in pts_strategy(60),
        (qx, qy) in (-100.0f64..1100.0, -100.0f64..1100.0),
        (qx2, qy2) in (0.0f64..1000.0, 0.0f64..1000.0),
        phase_base in 0u64..50_000,
        ann_factor in 0.0f64..2.0,
    ) {
        let layers: Vec<Vec<Point>> = (0..k)
            .map(|i| {
                let src = if i % 2 == 0 { &layer_seed } else { &extra };
                src.iter()
                    .map(|p| Point::new(p.x + 3.0 * i as f64, p.y + 7.0 * i as f64))
                    .collect()
            })
            .collect();
        let env_phases: Vec<u64> = (0..k as u64).map(|i| i * 13 + 1).collect();
        let env = build_env(&layers, &env_phases);
        let query_phases: Vec<u64> = (0..k as u64).map(|i| phase_base + i * 997).collect();
        let mut queries = query_mix(Point::new(qx, qy), k, &query_phases, ann_factor);
        queries.extend(query_mix(Point::new(qx2, qy2), k, &query_phases, ann_factor));
        // Repeats so the cached single-worker run exercises hits too.
        let repeats: Vec<Query> = queries.iter().take(4).cloned().collect();
        queries.extend(repeats);
        assert_trace_transparent::<ArrivalHeap>(&env, &queries, 1, CacheConfig::new().capacity(64));
        for workers in [2usize, 4] {
            assert_trace_transparent::<ArrivalHeap>(&env, &queries, workers, CacheConfig::disabled());
        }
        assert_trace_transparent::<LinearQueue>(&env, &queries, 1, CacheConfig::new().capacity(64));
        assert_trace_transparent::<LinearQueue>(&env, &queries, 2, CacheConfig::disabled());
    }
}

/// Transparency must also hold under a fault schedule: the fault draws
/// are pure functions of the admission sequence, so a traced and an
/// untraced server under the same [`FaultPlan`] (drops + an outage,
/// retries, approximate degradation — no kills, which abandon traces by
/// design) must agree on every outcome and counter; the traced one must
/// additionally retain its degraded completions in the flagged ring
/// with retry spans attached.
#[test]
fn tracing_is_transparent_under_faults_and_flags_degraded_queries() {
    let k = 2;
    let layers: Vec<Vec<Point>> = (0..k)
        .map(|i| {
            (0..60)
                .map(|j| {
                    Point::new(
                        ((j * 37 + i * 101) % 911) as f64,
                        ((j * 53 + i * 67) % 877) as f64,
                    )
                })
                .collect()
        })
        .collect();
    let env = build_env(&layers, &[3, 11]);
    let n = 160u64;
    let plan = || {
        FaultPlan::new(0x7_11CE)
            .channel(0, ChannelFaults::NONE.drop_rate(250).jitter(2))
            .channel(1, ChannelFaults::NONE.outage(12, 3))
    };
    let config = || {
        ServeConfig::new()
            .workers(1)
            .queue_capacity(n as usize)
            .backpressure(Backpressure::Block)
            .cache(CacheConfig::disabled())
            .batch_window(4)
            .retry(
                RetryPolicy::new()
                    .max_attempts(2)
                    .base(Duration::from_micros(10))
                    .cap(Duration::from_micros(40)),
            )
            .degradation(Degradation::Approximate)
    };
    let off = Server::spawn_with_faults(env.clone(), config(), plan());
    let on = Server::spawn_with_faults(env.clone(), config().trace(TraceConfig::on()), plan());
    let queries: Vec<Query> = (0..n)
        .map(|i| {
            Query::tnn(Point::new(
                ((i * 131) % 1000) as f64,
                ((i * 173) % 1000) as f64,
            ))
            .algorithm(Algorithm::HybridNn)
        })
        .collect();
    let off_tickets = off.submit_batch(queries.clone());
    let on_tickets = on.submit_batch(queries);
    for (off_t, on_t) in off_tickets.into_iter().zip(on_tickets) {
        assert_eq!(on_t.unwrap().wait(), off_t.unwrap().wait());
    }
    let off_stats = off.shutdown(ShutdownMode::Drain);
    // Join the workers (shutdown) before reading the recorder: tickets
    // resolve before their traces are offered.
    let on_stats = on.shutdown(ShutdownMode::Drain);
    let recorder = on.recorder().unwrap();
    let flagged = recorder.flagged();
    let recorded = recorder.recorded();
    assert_counters_eq(&off_stats, &on_stats);
    assert_eq!(recorded, n, "every job ran a worker round");
    assert!(
        on_stats.degraded > 0,
        "the plan must force degradations: {on_stats:?}"
    );
    assert!(!flagged.is_empty(), "degraded traces must be retained");
    for trace in &flagged {
        assert!(trace.flagged());
        assert!(
            trace.degraded && trace.attempts >= 2,
            "a degraded trace exhausted its attempts: {trace:?}"
        );
        assert!(
            !trace
                .duration_of(tnn_serve::SpanKind::RetryBackoff)
                .is_zero(),
            "retries must stamp backoff spans: {trace:?}"
        );
        assert!(
            !trace
                .duration_of(tnn_serve::SpanKind::Degradation)
                .is_zero(),
            "fallbacks must stamp a degradation span: {trace:?}"
        );
    }
}
