//! The acceptance gate of the `QueryEngine` API redesign: engine results
//! must be **byte-identical** to the legacy free functions across all
//! four algorithms, ANN modes, per-query phases, and the chained
//! extension — and identical between the heap and linear-reference queue
//! backends driven through the same engine.
//!
//! The deprecated wrappers are exercised on purpose: they are the
//! reference implementation until they are removed.
#![allow(deprecated)]

use proptest::prelude::*;
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{
    chain_tnn, order_free_tnn, round_trip_tnn, run_query, Algorithm, AnnMode, LinearQueue, Query,
    QueryEngine, QueryKind, QueryOutcome, TnnConfig,
};
use tnn_geom::Point;
use tnn_rtree::{PackingAlgorithm, RTree};

fn build_env(layers: &[Vec<Point>], phases: &[u64], page: usize) -> MultiChannelEnv {
    let params = BroadcastParams::new(page);
    let trees = layers
        .iter()
        .map(|pts| {
            Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    MultiChannelEnv::new(trees, params, phases)
}

fn pts_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Plain TNN: engine == legacy free function for every algorithm and
    /// ANN mode, with per-query phases riding the overlay on the engine
    /// side and a rephased environment on the legacy side.
    #[test]
    fn engine_tnn_is_byte_identical_to_legacy(
        s in pts_strategy(180),
        r in pts_strategy(180),
        (ph0, ph1) in (0u64..50_000, 0u64..50_000),
        (qx, qy) in (-100.0f64..1100.0, -100.0f64..1100.0),
        issued_at in 0u64..20_000,
        ann_factor in 0.0f64..2.0,
    ) {
        let env = build_env(&[s, r], &[0, 0], 64);
        let engine = QueryEngine::new(env.clone());
        let linear_engine = QueryEngine::<LinearQueue>::with_queue_backend(env.clone());
        let p = Point::new(qx, qy);
        let phases = [ph0, ph1];
        let rephased = env.with_phases(&phases);
        for alg in Algorithm::ALL {
            for ann in [AnnMode::Exact, AnnMode::Dynamic { factor: ann_factor }] {
                let legacy = run_query(
                    &rephased,
                    p,
                    issued_at,
                    &TnnConfig::exact(alg).with_ann_modes(&[ann, ann]),
                )
                .unwrap();
                let query = Query::tnn(p)
                    .algorithm(alg)
                    .ann_modes(&[ann, ann])
                    .issued_at(issued_at)
                    .phases(&phases);
                let got = engine.run(&query).unwrap();
                let mut expect = QueryOutcome::from(legacy);
                expect.kind = QueryKind::Tnn(alg);
                prop_assert_eq!(&got, &expect, "{} / {:?}", alg.name(), ann);
                // The linear-reference backend must agree bit-for-bit too.
                let linear = linear_engine.run(&query).unwrap();
                prop_assert_eq!(&linear, &expect, "linear {} / {:?}", alg.name(), ann);
            }
        }
    }

    /// Chained TNN over 2–4 channels: engine == legacy `chain_tnn`.
    #[test]
    fn engine_chain_is_byte_identical_to_legacy(
        layers in prop::collection::vec(pts_strategy(120), 2..5),
        phase_seed in 0u64..100_000,
        (qx, qy) in (0.0f64..1000.0, 0.0f64..1000.0),
        ann_factor in 0.0f64..1.5,
    ) {
        let k = layers.len();
        let phases: Vec<u64> = (0..k as u64).map(|i| phase_seed.wrapping_mul(i + 1) % 60_000).collect();
        let env = build_env(&layers, &vec![0; k], 64);
        let engine = QueryEngine::new(env.clone());
        let p = Point::new(qx, qy);
        for ann in [AnnMode::Exact, AnnMode::Dynamic { factor: ann_factor }] {
            let legacy = chain_tnn(&env.with_phases(&phases), p, 7, ann, true).unwrap();
            let got = engine
                .run(&Query::chain(p).ann(ann).issued_at(7).phases(&phases))
                .unwrap();
            prop_assert_eq!(&got, &QueryOutcome::from(legacy), "k={} {:?}", k, ann);
            prop_assert_eq!(got.route.len(), k);
        }
    }

    /// Order-free and round-trip variants: engine == legacy.
    #[test]
    fn engine_variants_are_byte_identical_to_legacy(
        s in pts_strategy(150),
        r in pts_strategy(150),
        (ph0, ph1) in (0u64..40_000, 0u64..40_000),
        (qx, qy) in (0.0f64..1000.0, 0.0f64..1000.0),
        retrieve in prop::sample::select(vec![false, true]),
    ) {
        let env = build_env(&[s, r], &[ph0, ph1], 64);
        let engine = QueryEngine::new(env.clone());
        let p = Point::new(qx, qy);

        let legacy = order_free_tnn(&env, p, 3, AnnMode::Exact, retrieve).unwrap();
        let got = engine
            .run(
                &Query::order_free(p)
                    .issued_at(3)
                    .retrieve_answer_objects(retrieve),
            )
            .unwrap();
        let mut expect = QueryOutcome::from(legacy);
        expect.kind = QueryKind::OrderFree;
        prop_assert_eq!(&got, &expect);

        let legacy = round_trip_tnn(&env, p, 3, AnnMode::Exact, retrieve).unwrap();
        let got = engine
            .run(
                &Query::round_trip(p)
                    .issued_at(3)
                    .retrieve_answer_objects(retrieve),
            )
            .unwrap();
        let mut expect = QueryOutcome::from(legacy);
        expect.kind = QueryKind::RoundTrip;
        prop_assert_eq!(&got, &expect);
    }
}

/// The pooled `run` path and the caller-scratch `run_with` path must
/// agree with each other and with the legacy function on a fixed
/// deterministic workload (a cheap smoke gate that needs no proptest
/// shrinking when it fires).
#[test]
fn pooled_scratch_and_legacy_agree_deterministically() {
    let cloud = |n: usize, salt: usize| -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 37 % 211) as f64,
                    ((i + salt) * 53 % 223) as f64,
                )
            })
            .collect()
    };
    let env = build_env(&[cloud(200, 1), cloud(250, 9)], &[11, 222], 64);
    let engine = QueryEngine::new(env.clone());
    let mut scratch = tnn_core::QueryScratch::default();
    for i in 0..40u64 {
        let p = Point::new((i * 31 % 211) as f64, (i * 17 % 223) as f64);
        let alg = Algorithm::ALL[(i % 4) as usize];
        let query = Query::tnn(p).algorithm(alg).issued_at(i * 97);
        let pooled = engine.run(&query).unwrap();
        let direct = engine.run_with(&query, &mut scratch).unwrap();
        let legacy = run_query(&env, p, i * 97, &TnnConfig::exact(alg)).unwrap();
        let mut expect = QueryOutcome::from(legacy);
        expect.kind = QueryKind::Tnn(alg);
        assert_eq!(pooled, expect, "pooled vs legacy, query {i}");
        assert_eq!(direct, expect, "scratch vs legacy, query {i}");
    }
}
