//! The acceptance gate of the k-ary pipeline generalization: at `k = 2`
//! the generalized core must be **byte-identical** to the paper's
//! two-channel pipeline across all four algorithms, ANN modes, per-query
//! phases, retrieval flags, and both queue backends.
//!
//! The reference is a *frozen* reimplementation of the pre-k-ary
//! two-channel code path (the shape removed by the generalization),
//! written against the public task primitives: a two-task `run_parallel`
//! event loop, the four two-channel estimates, the two-window filter with
//! the bound-pruned pairwise join, and the two-stop retrieval tail. Its
//! outcomes are compared field-for-field against the engine's
//! [`QueryOutcome`]s.

use proptest::prelude::*;
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv, Tuner};
use tnn_core::task::{BroadcastNnSearch, NnScratch, WindowQueryTask, WindowScratch};
use tnn_core::{
    approximate_radius, round_trip_join, tnn_join, Algorithm, AnnMode, ArrivalHeap, CandidateQueue,
    ChannelCost, LinearQueue, Query, QueryEngine, QueryKind, QueryOutcome, RouteStop, SearchMode,
    TnnPair,
};
use tnn_geom::{Circle, Point};
use tnn_rtree::{PackingAlgorithm, RTree};

fn build_env(layers: &[Vec<Point>], phases: &[u64], page: usize) -> MultiChannelEnv {
    let params = BroadcastParams::new(page);
    let trees = layers
        .iter()
        .map(|pts| {
            Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    MultiChannelEnv::new(trees, params, phases)
}

fn pts_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
        1..max,
    )
}

// ---------------------------------------------------------------------------
// The frozen two-channel pipeline (pre-k-ary reference implementation).
// ---------------------------------------------------------------------------

/// The frozen two-task event loop without re-targeting (Double-NN and
/// the variant estimates): steps the earlier arrival, channel 0 winning
/// ties, until both searches complete.
fn frozen_run_parallel<Q: CandidateQueue>(
    a: &mut BroadcastNnSearch<'_, Q>,
    b: &mut BroadcastNnSearch<'_, Q>,
) {
    loop {
        match (a.next_arrival(), b.next_arrival()) {
            (None, None) => break,
            (Some(_), None) => {
                a.step();
            }
            (None, Some(_)) => {
                b.step();
            }
            (Some(x), Some(y)) => {
                if x <= y {
                    a.step();
                } else {
                    b.step();
                }
            }
        }
    }
}

struct FrozenEstimate {
    radius: f64,
    tuners: [Tuner; 2],
    end: u64,
    /// Per-channel `(peak_queue, prune_hits)` of the estimate searches,
    /// measured straight off the frozen task handles.
    hops: [(u64, u64); 2],
}

/// The `(peak_queue, prune_hits)` reading of one completed search task.
fn hop_stats<Q: CandidateQueue>(task: &BroadcastNnSearch<'_, Q>) -> (u64, u64) {
    (task.peak_memory() as u64, task.parked_len() as u64)
}

/// The frozen two-channel estimate phase of each algorithm.
fn frozen_estimate<Q: CandidateQueue>(
    env: &MultiChannelEnv,
    alg: Algorithm,
    p: Point,
    issued_at: u64,
    ann: [AnnMode; 2],
) -> FrozenEstimate {
    match alg {
        Algorithm::WindowBased => {
            let mut nn1 = BroadcastNnSearch::<Q>::with_scratch(
                env.channel(0),
                SearchMode::Point { q: p },
                ann[0],
                issued_at,
                &mut NnScratch::default(),
            );
            let t1 = nn1.run_to_completion();
            let (s_pt, _, _) = nn1.best().expect("non-empty S");
            let mut nn2 = BroadcastNnSearch::<Q>::with_scratch(
                env.channel(1),
                SearchMode::Point { q: s_pt },
                ann[1],
                t1,
                &mut NnScratch::default(),
            );
            let t2 = nn2.run_to_completion();
            let (r_pt, _, _) = nn2.best().expect("non-empty R");
            FrozenEstimate {
                radius: p.dist(s_pt) + s_pt.dist(r_pt),
                tuners: [*nn1.tuner(), *nn2.tuner()],
                end: t1.max(t2),
                hops: [hop_stats(&nn1), hop_stats(&nn2)],
            }
        }
        Algorithm::ApproximateTnn => {
            let region = env
                .channel(0)
                .tree()
                .bounding_rect()
                .union(&env.channel(1).tree().bounding_rect());
            let side = region.area().sqrt();
            let r_s = approximate_radius(env.channel(0).tree().num_objects(), 1);
            let r_r = approximate_radius(env.channel(1).tree().num_objects(), 1);
            FrozenEstimate {
                radius: (r_s + r_r) * side,
                tuners: [Tuner::new(), Tuner::new()],
                end: issued_at,
                hops: [(0, 0), (0, 0)],
            }
        }
        Algorithm::DoubleNn | Algorithm::HybridNn => {
            let mut a = BroadcastNnSearch::<Q>::with_scratch(
                env.channel(0),
                SearchMode::Point { q: p },
                ann[0],
                issued_at,
                &mut NnScratch::default(),
            );
            let mut b = BroadcastNnSearch::<Q>::with_scratch(
                env.channel(1),
                SearchMode::Point { q: p },
                ann[1],
                issued_at,
                &mut NnScratch::default(),
            );
            if alg == Algorithm::HybridNn {
                // Split the borrow: the hook needs the *other* task. The
                // frozen loop reports which side finished; apply the
                // switch after the fact is impossible (the loop goes on),
                // so replicate the old in-loop switching inline.
                let mut fired = false;
                loop {
                    match (a.next_arrival(), b.next_arrival()) {
                        (None, None) => break,
                        (Some(_), None) => {
                            a.step();
                        }
                        (None, Some(_)) => {
                            b.step();
                        }
                        (Some(x), Some(y)) => {
                            if x <= y {
                                a.step();
                            } else {
                                b.step();
                            }
                        }
                    }
                    if !fired {
                        if a.is_done() && !b.is_done() {
                            fired = true;
                            // Case 2: S finished first — switch R's query
                            // point to s.
                            if let Some((s_pt, _, _)) = a.best() {
                                b.switch_query_point(s_pt, a.now());
                            }
                        } else if b.is_done() && !a.is_done() {
                            fired = true;
                            // Case 3: R finished first — switch S to the
                            // transitive metric.
                            if let Some((r_pt, _, _)) = b.best() {
                                a.switch_to_transitive(p, r_pt, b.now());
                            }
                        }
                    }
                }
            } else {
                frozen_run_parallel(&mut a, &mut b);
            }
            let (s_pt, _, _) = a.best().expect("non-empty S");
            let (r_pt, _, _) = b.best().expect("non-empty R");
            FrozenEstimate {
                radius: p.dist(s_pt) + s_pt.dist(r_pt),
                tuners: [*a.tuner(), *b.tuner()],
                end: a.now().max(b.now()),
                hops: [hop_stats(&a), hop_stats(&b)],
            }
        }
    }
}

/// The frozen filter + join + retrieve tail, emitting the expected
/// engine outcome for a plain TNN query.
fn frozen_tnn<Q: CandidateQueue>(
    env: &MultiChannelEnv,
    alg: Algorithm,
    p: Point,
    issued_at: u64,
    ann: [AnnMode; 2],
    retrieve: bool,
) -> QueryOutcome {
    let est = frozen_estimate::<Q>(env, alg, p, issued_at, ann);
    let range = Circle::new(p, est.radius * (1.0 + 4.0 * f64::EPSILON));

    let mut w0 = WindowQueryTask::with_scratch(
        env.channel(0),
        range,
        est.end,
        &mut WindowScratch::default(),
    );
    let f0_end = w0.run_to_completion();
    let mut w1 = WindowQueryTask::with_scratch(
        env.channel(1),
        range,
        est.end,
        &mut WindowScratch::default(),
    );
    let f1_end = w1.run_to_completion();

    let candidates = vec![w0.hits().len(), w1.hits().len()];
    let filter_pages = [w0.tuner().pages, w1.tuner().pages];
    let answer: Option<TnnPair> = tnn_join(p, w0.hits(), w1.hits());

    let mut channels = vec![
        ChannelCost {
            estimate_pages: est.tuners[0].pages,
            filter_pages: filter_pages[0],
            retrieve_pages: 0,
            finish_time: est.tuners[0].finish_time.unwrap_or(issued_at).max(f0_end),
            peak_queue: est.hops[0].0,
            prune_hits: est.hops[0].1,
        },
        ChannelCost {
            estimate_pages: est.tuners[1].pages,
            filter_pages: filter_pages[1],
            retrieve_pages: 0,
            finish_time: est.tuners[1].finish_time.unwrap_or(issued_at).max(f1_end),
            peak_queue: est.hops[1].0,
            prune_hits: est.hops[1].1,
        },
    ];
    if retrieve {
        if let Some(pair) = &answer {
            let start = f0_end.max(f1_end);
            let (done0, pages0) = env.channel(0).retrieve_object(pair.s.1, start);
            let (done1, pages1) = env.channel(1).retrieve_object(pair.r.1, start);
            channels[0].retrieve_pages = pages0;
            channels[0].finish_time = channels[0].finish_time.max(done0);
            channels[1].retrieve_pages = pages1;
            channels[1].finish_time = channels[1].finish_time.max(done1);
        }
    }
    let completed_at = channels[0]
        .finish_time
        .max(channels[1].finish_time)
        .max(est.end);

    QueryOutcome {
        kind: QueryKind::Tnn(alg),
        route: answer
            .iter()
            .flat_map(|pair| {
                [
                    RouteStop {
                        point: pair.s.0,
                        object: pair.s.1,
                        channel: 0,
                    },
                    RouteStop {
                        point: pair.r.0,
                        object: pair.r.1,
                        channel: 1,
                    },
                ]
            })
            .collect(),
        total_dist: answer.map(|pair| pair.dist),
        search_radius: est.radius,
        issued_at,
        estimate_end: Some(est.end),
        completed_at,
        candidates,
        channels,
        degraded: false,
    }
}

/// The frozen two-channel variant tail shared by order-free and
/// round-trip: filter both windows, join, account, retrieve.
#[allow(clippy::too_many_arguments)]
fn frozen_variant_outcome(
    env: &MultiChannelEnv,
    kind: QueryKind,
    issued_at: u64,
    est_tuners: [Tuner; 2],
    est_end: u64,
    est_hops: [(u64, u64); 2],
    radius: f64,
    stops: Vec<(Point, tnn_rtree::ObjectId, usize)>,
    total_dist: f64,
    filter_tuners: [Tuner; 2],
    filter_end: u64,
    retrieve: bool,
) -> QueryOutcome {
    let mut channels = [ChannelCost::default(), ChannelCost::default()];
    for k in 0..2 {
        channels[k].estimate_pages = est_tuners[k].pages;
        channels[k].filter_pages = filter_tuners[k].pages;
        channels[k].peak_queue = est_hops[k].0;
        channels[k].prune_hits = est_hops[k].1;
        channels[k].finish_time = est_tuners[k]
            .finish_time
            .unwrap_or(issued_at)
            .max(filter_tuners[k].finish_time.unwrap_or(issued_at))
            .max(est_end);
    }
    if retrieve {
        for &(_, object, ch) in &stops {
            let (done, pages) = env.channel(ch).retrieve_object(object, filter_end);
            channels[ch].retrieve_pages += pages;
            channels[ch].finish_time = channels[ch].finish_time.max(done);
        }
    }
    let completed_at = channels[0]
        .finish_time
        .max(channels[1].finish_time)
        .max(filter_end);
    QueryOutcome {
        kind,
        route: stops
            .into_iter()
            .map(|(point, object, channel)| RouteStop {
                point,
                object,
                channel,
            })
            .collect(),
        total_dist: Some(total_dist),
        search_radius: radius,
        issued_at,
        estimate_end: None,
        completed_at,
        candidates: Vec::new(),
        channels: channels.to_vec(),
        degraded: false,
    }
}

/// Frozen two-channel order-free and round-trip pipelines.
fn frozen_variant<Q: CandidateQueue>(
    env: &MultiChannelEnv,
    kind: QueryKind,
    p: Point,
    issued_at: u64,
    retrieve: bool,
) -> QueryOutcome {
    // Double-NN estimate (no re-targeting).
    let est = frozen_estimate::<Q>(env, Algorithm::DoubleNn, p, issued_at, [AnnMode::Exact; 2]);
    // Recompute the two NN points (the frozen estimate only exposes the
    // radius): rerun the two searches — cheap and deterministic.
    let mut a = BroadcastNnSearch::<Q>::with_scratch(
        env.channel(0),
        SearchMode::Point { q: p },
        AnnMode::Exact,
        issued_at,
        &mut NnScratch::default(),
    );
    a.run_to_completion();
    let mut b = BroadcastNnSearch::<Q>::with_scratch(
        env.channel(1),
        SearchMode::Point { q: p },
        AnnMode::Exact,
        issued_at,
        &mut NnScratch::default(),
    );
    b.run_to_completion();
    let (s_pt, _, _) = a.best().expect("non-empty S");
    let (r_pt, _, _) = b.best().expect("non-empty R");

    let radius = match kind {
        QueryKind::OrderFree => {
            let d_sr = p.dist(s_pt) + s_pt.dist(r_pt);
            let d_rs = p.dist(r_pt) + r_pt.dist(s_pt);
            d_sr.min(d_rs)
        }
        QueryKind::RoundTrip => (p.dist(s_pt) + s_pt.dist(r_pt) + r_pt.dist(p)) * 0.5,
        _ => unreachable!("variant kinds only"),
    };
    let range = Circle::new(p, radius * (1.0 + 4.0 * f64::EPSILON));
    let mut w0 = WindowQueryTask::with_scratch(
        env.channel(0),
        range,
        est.end,
        &mut WindowScratch::default(),
    );
    let f0 = w0.run_to_completion();
    let mut w1 = WindowQueryTask::with_scratch(
        env.channel(1),
        range,
        est.end,
        &mut WindowScratch::default(),
    );
    let f1 = w1.run_to_completion();
    let filter_end = f0.max(f1);
    let filter_tuners = [*w0.tuner(), *w1.tuner()];

    let (stops, total) = match kind {
        QueryKind::OrderFree => {
            let forward = tnn_join(p, w0.hits(), w1.hits());
            let backward = tnn_join(p, w1.hits(), w0.hits());
            let (pair, s_first) = match (forward, backward) {
                (Some(f), Some(b)) if b.dist < f.dist => (b, false),
                (Some(f), _) => (f, true),
                (None, Some(b)) => (b, false),
                (None, None) => unreachable!("the estimate pair lies inside the range"),
            };
            let stops = if s_first {
                vec![(pair.s.0, pair.s.1, 0), (pair.r.0, pair.r.1, 1)]
            } else {
                vec![(pair.s.0, pair.s.1, 1), (pair.r.0, pair.r.1, 0)]
            };
            (stops, pair.dist)
        }
        QueryKind::RoundTrip => {
            let pair = round_trip_join(p, w0.hits(), w1.hits())
                .expect("the estimate pair lies inside the half-radius range");
            (
                vec![(pair.s.0, pair.s.1, 0), (pair.r.0, pair.r.1, 1)],
                pair.dist,
            )
        }
        _ => unreachable!(),
    };
    frozen_variant_outcome(
        env,
        kind,
        issued_at,
        est.tuners,
        est.end,
        est.hops,
        radius,
        stops,
        total,
        filter_tuners,
        filter_end,
        retrieve,
    )
}

// ---------------------------------------------------------------------------
// The gates.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Plain TNN at k = 2: the generalized engine must equal the frozen
    /// two-channel pipeline for every algorithm and ANN mode, with
    /// per-query phases riding the overlay on the engine side and a
    /// rephased environment on the frozen side — on both queue backends.
    #[test]
    fn engine_tnn_is_byte_identical_to_frozen_two_channel(
        s in pts_strategy(180),
        r in pts_strategy(180),
        (ph0, ph1) in (0u64..50_000, 0u64..50_000),
        (qx, qy) in (-100.0f64..1100.0, -100.0f64..1100.0),
        issued_at in 0u64..20_000,
        ann_factor in 0.0f64..2.0,
        retrieve in prop::sample::select(vec![false, true]),
    ) {
        let env = build_env(&[s, r], &[0, 0], 64);
        let engine = QueryEngine::new(env.clone());
        let linear_engine = QueryEngine::<LinearQueue>::with_queue_backend(env.clone());
        let p = Point::new(qx, qy);
        let phases = [ph0, ph1];
        let rephased = env.with_phases(&phases);
        for alg in Algorithm::ALL {
            for ann in [AnnMode::Exact, AnnMode::Dynamic { factor: ann_factor }] {
                let expect = frozen_tnn::<ArrivalHeap>(
                    &rephased, alg, p, issued_at, [ann, ann], retrieve,
                );
                let query = Query::tnn(p)
                    .algorithm(alg)
                    .ann_modes(&[ann, ann])
                    .issued_at(issued_at)
                    .retrieve_answer_objects(retrieve)
                    .phases(&phases);
                let got = engine.run(&query).unwrap();
                prop_assert_eq!(&got, &expect, "{} / {:?}", alg.name(), ann);
                // The linear-reference backend must agree bit-for-bit
                // with its own frozen run too.
                let linear_expect = frozen_tnn::<LinearQueue>(
                    &rephased, alg, p, issued_at, [ann, ann], retrieve,
                );
                let linear = linear_engine.run(&query).unwrap();
                prop_assert_eq!(&linear, &linear_expect, "linear {} / {:?}", alg.name(), ann);
            }
        }
    }

    /// Order-free and round-trip variants at k = 2: engine == frozen.
    #[test]
    fn engine_variants_are_byte_identical_to_frozen(
        s in pts_strategy(150),
        r in pts_strategy(150),
        (ph0, ph1) in (0u64..40_000, 0u64..40_000),
        (qx, qy) in (0.0f64..1000.0, 0.0f64..1000.0),
        retrieve in prop::sample::select(vec![false, true]),
    ) {
        let env = build_env(&[s, r], &[ph0, ph1], 64);
        let engine = QueryEngine::new(env.clone());
        let p = Point::new(qx, qy);

        for kind in [QueryKind::OrderFree, QueryKind::RoundTrip] {
            let expect = frozen_variant::<ArrivalHeap>(&env, kind, p, 3, retrieve);
            let query = match kind {
                QueryKind::OrderFree => Query::order_free(p),
                _ => Query::round_trip(p),
            };
            let got = engine
                .run(&query.issued_at(3).retrieve_answer_objects(retrieve))
                .unwrap();
            prop_assert_eq!(&got, &expect, "{:?}", kind);
        }
    }

    /// Chained queries: `Query::chain` must be byte-identical to
    /// `Query::tnn` with `Algorithm::DoubleNn` (modulo the kind label)
    /// at every channel count.
    #[test]
    fn chain_kind_equals_double_nn_pipeline(
        layers in prop::collection::vec(pts_strategy(120), 2..5),
        phase_seed in 0u64..100_000,
        (qx, qy) in (0.0f64..1000.0, 0.0f64..1000.0),
        ann_factor in 0.0f64..1.5,
    ) {
        let k = layers.len();
        let phases: Vec<u64> = (0..k as u64).map(|i| phase_seed.wrapping_mul(i + 1) % 60_000).collect();
        let env = build_env(&layers, &vec![0; k], 64);
        let engine = QueryEngine::new(env);
        let p = Point::new(qx, qy);
        for ann in [AnnMode::Exact, AnnMode::Dynamic { factor: ann_factor }] {
            let chain = engine
                .run(&Query::chain(p).ann(ann).issued_at(7).phases(&phases))
                .unwrap();
            let tnn = engine
                .run(
                    &Query::tnn(p)
                        .algorithm(Algorithm::DoubleNn)
                        .ann(ann)
                        .issued_at(7)
                        .phases(&phases),
                )
                .unwrap();
            let mut relabeled = tnn;
            relabeled.kind = QueryKind::Chain;
            prop_assert_eq!(&chain, &relabeled, "k={} {:?}", k, ann);
            prop_assert_eq!(chain.route.len(), k);
        }
    }
}

/// The pooled `run` path and the caller-scratch `run_with` path must
/// agree with each other and with the frozen pipeline on a fixed
/// deterministic workload (a cheap smoke gate that needs no proptest
/// shrinking when it fires).
#[test]
fn pooled_scratch_and_frozen_agree_deterministically() {
    let cloud = |n: usize, salt: usize| -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 37 % 211) as f64,
                    ((i + salt) * 53 % 223) as f64,
                )
            })
            .collect()
    };
    let env = build_env(&[cloud(200, 1), cloud(250, 9)], &[11, 222], 64);
    let engine = QueryEngine::new(env.clone());
    let mut scratch = tnn_core::QueryScratch::default();
    for i in 0..40u64 {
        let p = Point::new((i * 31 % 211) as f64, (i * 17 % 223) as f64);
        let alg = Algorithm::ALL[(i % 4) as usize];
        let query = Query::tnn(p).algorithm(alg).issued_at(i * 97);
        let pooled = engine.run(&query).unwrap();
        let direct = engine.run_with(&query, &mut scratch).unwrap();
        let expect = frozen_tnn::<ArrivalHeap>(&env, alg, p, i * 97, [AnnMode::Exact; 2], true);
        assert_eq!(pooled, expect, "pooled vs frozen, query {i}");
        assert_eq!(direct, expect, "scratch vs frozen, query {i}");
    }
}
