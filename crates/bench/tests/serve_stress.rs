//! Concurrency stress/soak for the serving subsystem — **ignored by
//! default** (run via `cargo test -p tnn-bench --test serve_stress --
//! --ignored`, which is what the `stress` CI job does; `TNN_STRESS_SECS`
//! scales the per-policy soak, default 2 seconds).
//!
//! Eight submitter threads hammer a 2-worker server with a tiny queue
//! bound under each backpressure policy, shutdown lands while work is
//! still in flight, and afterwards the harness asserts:
//! * **no deadlock** — every submitter and worker thread exits;
//! * **no lost tickets** — the conservation invariant
//!   `submitted = completed + rejected + shed + cancelled` holds, the
//!   client-side counts match the server's, and every ticket any client
//!   kept is resolved;
//! * **clean shutdown with in-flight work** — `shutdown` returns with
//!   queue and in-flight counts at zero.
//!
//! The whole drill repeats over the paper-literal `LinearQueue` backend,
//! and again as a **mixed-priority storm** (`hammer_qos`): submitters
//! spread over all three service classes with a mix of tight, generous,
//! and absent deadlines, reconciling the per-class conservation
//! invariant against per-class client tallies. The deterministic
//! no-priority-inversion-at-shutdown gate at the bottom runs in tier-1.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{ArrivalHeap, CandidateQueue, LinearQueue, Query, QueryEngine, TnnError};
use tnn_geom::Point;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{Backpressure, Priority, Qos, ServeConfig, Server, ShutdownMode};

const SUBMITTERS: usize = 8;

fn stress_secs() -> f64 {
    std::env::var("TNN_STRESS_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0)
}

fn small_env() -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let trees: Vec<Arc<RTree>> = (0..2)
        .map(|c| {
            let pts: Vec<Point> = (0..250)
                .map(|i| {
                    Point::new(
                        ((i * 37 + c * 131) % 997) as f64,
                        ((i * 59 + c * 211) % 983) as f64,
                    )
                })
                .collect();
            Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    MultiChannelEnv::new(trees, params, &[7, 19])
}

/// Per-submitter tallies, reconciled against the server's stats.
#[derive(Default)]
struct ClientTally {
    ok: u64,
    overloaded: u64,
    cancelled: u64,
}

/// Hammers one server configuration for `secs`, shuts down `mode`-wise
/// while submitters are still firing, and checks conservation from both
/// sides of the API.
fn hammer<Q: CandidateQueue + 'static>(policy: Backpressure, mode: ShutdownMode, secs: f64) {
    let server = Server::spawn_engine(
        QueryEngine::<Q>::with_queue_backend(small_env()),
        ServeConfig::new()
            .workers(2)
            .queue_capacity(4)
            .backpressure(policy)
            .batch_window(2),
    );
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let server = &server;
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    let mut kept = Vec::new();
                    let mut i = 0u64;
                    // Run until the shutdown refusal arrives (not until
                    // the deadline): the point is that shutdown lands
                    // while this thread still has requests in flight.
                    loop {
                        let p = Point::new(
                            ((t as u64 * 7919 + i * 127) % 1000) as f64,
                            ((t as u64 * 104_729 + i * 211) % 1000) as f64,
                        );
                        i += 1;
                        match server.submit(Query::tnn(p)) {
                            Ok(ticket) => {
                                tally.ok += 1;
                                // Mix waiting styles: some tickets are
                                // awaited inline, some polled, most
                                // dropped without waiting.
                                match i % 11 {
                                    0 => {
                                        let _ = ticket.wait();
                                    }
                                    1 => kept.push(ticket),
                                    2 => {
                                        let _ = ticket.poll();
                                    }
                                    _ => drop(ticket),
                                }
                            }
                            Err(TnnError::Overloaded) => tally.overloaded += 1,
                            Err(TnnError::Cancelled) => {
                                tally.cancelled += 1;
                                break;
                            }
                            Err(other) => panic!("unexpected submit error {other:?}"),
                        }
                    }
                    (tally, kept)
                })
            })
            .collect();
        // Let the storm build, then shut down mid-flight.
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown(mode);
        let mut client_ok = 0u64;
        let mut client_overloaded = 0u64;
        let mut client_cancelled = 0u64;
        for handle in handles {
            let (tally, kept) = handle
                .join()
                .expect("submitter must not die: deadlock/panic");
            client_ok += tally.ok;
            client_overloaded += tally.overloaded;
            client_cancelled += tally.cancelled;
            for ticket in &kept {
                assert!(ticket.is_done(), "ticket unresolved after shutdown");
            }
        }
        // Reconcile against a snapshot taken only after every submitter
        // has exited: their last refused submissions are counted after
        // `shutdown` already returned.
        let stats = server.stats();
        // Client-side and server-side accounting must agree exactly.
        assert_eq!(client_ok, stats.accepted, "{policy:?}/{mode:?}");
        match policy {
            // Only Reject refuses with Overloaded at the door; under
            // Shed the overload lands on the evicted ticket instead.
            Backpressure::Reject => {
                assert_eq!(
                    client_overloaded + client_cancelled,
                    stats.rejected,
                    "{mode:?}"
                )
            }
            _ => assert_eq!(client_cancelled, stats.rejected, "{policy:?}/{mode:?}"),
        }
        stats
    });
    // No lost tickets: every submission is accounted for exactly once,
    // and the server is fully quiescent.
    assert!(stats.conserved(), "conservation violated: {stats:?}");
    assert_eq!(stats.queued, 0, "{policy:?}/{mode:?}");
    assert_eq!(stats.in_flight, 0, "{policy:?}/{mode:?}");
    assert_eq!(
        stats.submitted,
        stats.completed + stats.rejected + stats.shed + stats.cancelled,
        "lost tickets: {stats:?}"
    );
    assert!(
        stats.completed > 0,
        "soak must actually execute queries: {stats:?}"
    );
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_block_policy_drain_shutdown() {
    hammer::<ArrivalHeap>(Backpressure::Block, ShutdownMode::Drain, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_block_policy_cancel_shutdown() {
    hammer::<ArrivalHeap>(Backpressure::Block, ShutdownMode::Cancel, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_reject_policy() {
    hammer::<ArrivalHeap>(Backpressure::Reject, ShutdownMode::Cancel, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_shed_policy() {
    hammer::<ArrivalHeap>(Backpressure::Shed, ShutdownMode::Drain, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_linear_reference_backend_all_policies() {
    let secs = (stress_secs() / 3.0).max(0.3);
    hammer::<LinearQueue>(Backpressure::Block, ShutdownMode::Drain, secs);
    hammer::<LinearQueue>(Backpressure::Reject, ShutdownMode::Cancel, secs);
    hammer::<LinearQueue>(Backpressure::Shed, ShutdownMode::Cancel, secs);
}

/// Per-submitter tallies of the mixed-priority storm, one row per class.
#[derive(Default, Clone, Copy)]
struct ClassTally {
    ok: u64,
    overloaded: u64,
    cancelled: u64,
}

/// Mixed-priority 8-way storm: submitter `t` rides class `t % 3` and
/// stamps a deadline on half its queries (some generous, some that will
/// expire in the queue), shutdown lands mid-flight, and afterwards the
/// per-class conservation invariant must reconcile exactly against each
/// class's client-side tally — on top of the global invariant, which now
/// also folds the cache classification of every completion.
fn hammer_qos(policy: Backpressure, mode: ShutdownMode, secs: f64) {
    let server = Server::spawn_engine(
        QueryEngine::<ArrivalHeap>::with_queue_backend(small_env()),
        ServeConfig::new()
            .workers(2)
            .queue_capacity(4)
            .backpressure(policy)
            .batch_window(2),
    );
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let classes = [Priority::Interactive, Priority::Batch, Priority::Background];
    let (tallies, stats) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let server = &server;
                let class = classes[t % classes.len()];
                scope.spawn(move || {
                    let mut tally = ClassTally::default();
                    let mut kept = Vec::new();
                    let mut i = 0u64;
                    loop {
                        let p = Point::new(
                            ((t as u64 * 7919 + i * 127) % 1000) as f64,
                            ((t as u64 * 104_729 + i * 211) % 1000) as f64,
                        );
                        i += 1;
                        let qos = match i % 4 {
                            // Deadlines that expire inside a saturated
                            // queue, generous ones, and none at all.
                            0 => Qos::new()
                                .priority(class)
                                .deadline_in(Duration::from_micros(200)),
                            1 => Qos::new()
                                .priority(class)
                                .deadline_in(Duration::from_secs(30)),
                            _ => Qos::new().priority(class),
                        };
                        match server.submit_with(Query::tnn(p), qos) {
                            Ok(ticket) => {
                                tally.ok += 1;
                                match i % 11 {
                                    0 => {
                                        let _ = ticket.wait();
                                    }
                                    1 => kept.push(ticket),
                                    2 => {
                                        let _ = ticket.poll();
                                    }
                                    _ => drop(ticket),
                                }
                            }
                            Err(TnnError::Overloaded) => tally.overloaded += 1,
                            Err(TnnError::Cancelled) => {
                                tally.cancelled += 1;
                                break;
                            }
                            Err(other) => panic!("unexpected submit error {other:?}"),
                        }
                    }
                    (class, tally, kept)
                })
            })
            .collect();
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown(mode);
        let mut tallies = [ClassTally::default(); 3];
        for handle in handles {
            let (class, tally, kept) = handle
                .join()
                .expect("submitter must not die: deadlock/panic");
            let slot = &mut tallies[class.index()];
            slot.ok += tally.ok;
            slot.overloaded += tally.overloaded;
            slot.cancelled += tally.cancelled;
            for ticket in &kept {
                assert!(ticket.is_done(), "ticket unresolved after shutdown");
            }
        }
        // Snapshot only after every submitter exited (their closing
        // refusals land after `shutdown` returned).
        (tallies, server.stats())
    });
    assert!(stats.conserved(), "conservation violated: {stats:?}");
    assert_eq!(
        (stats.queued, stats.in_flight),
        (0, 0),
        "{policy:?}/{mode:?}"
    );
    for class in classes {
        let server_side = stats.class(class);
        let client_side = &tallies[class.index()];
        assert!(server_side.conserved(), "{}: {server_side:?}", class.name());
        assert_eq!(
            client_side.ok,
            server_side.accepted,
            "{} accepted mismatch under {policy:?}/{mode:?}",
            class.name()
        );
        match policy {
            Backpressure::Reject => assert_eq!(
                client_side.overloaded + client_side.cancelled,
                server_side.rejected,
                "{}",
                class.name()
            ),
            _ => assert_eq!(
                client_side.cancelled,
                server_side.rejected,
                "{}",
                class.name()
            ),
        }
    }
    assert!(stats.completed > 0, "soak must execute queries: {stats:?}");
    if policy == Backpressure::Shed {
        // The 200 µs deadlines under a saturated 4-slot queue guarantee
        // expiries; expiry-aware shedding must be observed doing its job.
        assert!(stats.expired > 0, "no deadline ever fired: {stats:?}");
    }
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_mixed_priority_storm_shed_drain() {
    hammer_qos(Backpressure::Shed, ShutdownMode::Drain, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_mixed_priority_storm_shed_cancel() {
    hammer_qos(Backpressure::Shed, ShutdownMode::Cancel, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_mixed_priority_storm_reject_cancel() {
    hammer_qos(Backpressure::Reject, ShutdownMode::Cancel, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_mixed_priority_storm_block_drain() {
    hammer_qos(Backpressure::Block, ShutdownMode::Drain, stress_secs());
}

/// No priority inversion at shutdown — deterministic, so it runs in
/// tier-1 too (not only the soak job). One atomic mixed-class batch
/// against one worker is popped in strict priority order; whichever
/// mode lands, the set of jobs that *completed* must be a prefix of
/// that order: a completed background job implies every interactive and
/// batch job completed, and a completed batch job implies every
/// interactive one did.
#[test]
fn no_priority_inversion_at_drain_or_cancel() {
    for mode in [ShutdownMode::Drain, ShutdownMode::Cancel] {
        let server = Server::spawn_engine(
            QueryEngine::<ArrivalHeap>::with_queue_backend(small_env()),
            ServeConfig::new().workers(1).batch_window(1),
        );
        let class_of = |i: usize| match i / 20 {
            0 => Qos::interactive(),
            1 => Qos::batch(),
            _ => Qos::background(),
        };
        let submissions: Vec<_> = (0..60)
            .map(|i| {
                let p = Point::new(((i * 89) % 997) as f64, ((i * 139) % 983) as f64);
                (Query::tnn(p), class_of(i))
            })
            .collect();
        let tickets = server.submit_batch_qos(submissions);
        let stats = server.shutdown(mode);
        assert!(stats.conserved());
        let mut completed = [0usize; 3];
        let mut cancelled = [0usize; 3];
        for (i, ticket) in tickets.into_iter().enumerate() {
            match ticket
                .unwrap()
                .poll()
                .expect("shutdown resolves everything")
            {
                Ok(_) => completed[i / 20] += 1,
                Err(TnnError::Cancelled) => cancelled[i / 20] += 1,
                Err(other) => panic!("unexpected outcome {other:?}"),
            }
        }
        if completed[2] > 0 {
            assert_eq!(
                (cancelled[0], cancelled[1]),
                (0, 0),
                "a background job ran while higher classes were cancelled ({mode:?})"
            );
        }
        if completed[1] > 0 {
            assert_eq!(
                cancelled[0], 0,
                "a batch job ran while interactive work was cancelled ({mode:?})"
            );
        }
        if mode == ShutdownMode::Drain {
            assert_eq!(completed, [20, 20, 20], "drain completes everything");
        }
    }
}
