//! Concurrency stress/soak for the serving subsystem — **ignored by
//! default** (run via `cargo test -p tnn-bench --test serve_stress --
//! --ignored`, which is what the `stress` CI job does; `TNN_STRESS_SECS`
//! scales the per-policy soak, default 2 seconds).
//!
//! Eight submitter threads hammer a 2-worker server with a tiny queue
//! bound under each backpressure policy, shutdown lands while work is
//! still in flight, and afterwards the harness asserts:
//! * **no deadlock** — every submitter and worker thread exits;
//! * **no lost tickets** — the conservation invariant
//!   `submitted = completed + rejected + shed + cancelled` holds, the
//!   client-side counts match the server's, and every ticket any client
//!   kept is resolved;
//! * **clean shutdown with in-flight work** — `shutdown` returns with
//!   queue and in-flight counts at zero.
//!
//! The whole drill repeats over the paper-literal `LinearQueue` backend,
//! and again as a **mixed-priority storm** (`hammer_qos`): submitters
//! spread over all three service classes with a mix of tight, generous,
//! and absent deadlines, reconciling the per-class conservation
//! invariant against per-class client tallies. A **chaos storm**
//! (`hammer_chaos`) reruns the drill under an aggressive [`FaultPlan`] —
//! drops, jitter, outages, engine panics, and scheduled worker kills —
//! asserting the server keeps serving across respawns with zero lost
//! tickets and the invariant exact in every mid-storm snapshot. The
//! deterministic no-priority-inversion gate and the bounded chaos smoke
//! run in tier-1.

// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::{Duration, Instant};
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{ArrivalHeap, CandidateQueue, LinearQueue, Query, QueryEngine, TnnError};
use tnn_geom::Point;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{
    Backpressure, ChannelFaults, Degradation, FaultPlan, Priority, Qos, RetryPolicy, ServeConfig,
    Server, ShutdownMode,
};

const SUBMITTERS: usize = 8;

fn stress_secs() -> f64 {
    std::env::var("TNN_STRESS_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0)
}

fn small_env() -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let trees: Vec<Arc<RTree>> = (0..2)
        .map(|c| {
            let pts: Vec<Point> = (0..250)
                .map(|i| {
                    Point::new(
                        ((i * 37 + c * 131) % 997) as f64,
                        ((i * 59 + c * 211) % 983) as f64,
                    )
                })
                .collect();
            Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    MultiChannelEnv::new(trees, params, &[7, 19])
}

/// Per-submitter tallies, reconciled against the server's stats.
#[derive(Default)]
struct ClientTally {
    ok: u64,
    overloaded: u64,
    cancelled: u64,
}

/// Hammers one server configuration for `secs`, shuts down `mode`-wise
/// while submitters are still firing, and checks conservation from both
/// sides of the API.
fn hammer<Q: CandidateQueue + 'static>(policy: Backpressure, mode: ShutdownMode, secs: f64) {
    let server = Server::spawn_engine(
        QueryEngine::<Q>::with_queue_backend(small_env()),
        ServeConfig::new()
            .workers(2)
            .queue_capacity(4)
            .backpressure(policy)
            .batch_window(2),
    );
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let server = &server;
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    let mut kept = Vec::new();
                    let mut i = 0u64;
                    // Run until the shutdown refusal arrives (not until
                    // the deadline): the point is that shutdown lands
                    // while this thread still has requests in flight.
                    loop {
                        let p = Point::new(
                            ((t as u64 * 7919 + i * 127) % 1000) as f64,
                            ((t as u64 * 104_729 + i * 211) % 1000) as f64,
                        );
                        i += 1;
                        match server.submit(Query::tnn(p)) {
                            Ok(ticket) => {
                                tally.ok += 1;
                                // Mix waiting styles: some tickets are
                                // awaited inline, some polled, most
                                // dropped without waiting.
                                match i % 11 {
                                    0 => {
                                        let _ = ticket.wait();
                                    }
                                    1 => kept.push(ticket),
                                    2 => {
                                        let _ = ticket.poll();
                                    }
                                    _ => drop(ticket),
                                }
                            }
                            Err(TnnError::Overloaded) => tally.overloaded += 1,
                            Err(TnnError::Cancelled) => {
                                tally.cancelled += 1;
                                break;
                            }
                            Err(other) => panic!("unexpected submit error {other:?}"),
                        }
                    }
                    (tally, kept)
                })
            })
            .collect();
        // Let the storm build, then shut down mid-flight.
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown(mode);
        let mut client_ok = 0u64;
        let mut client_overloaded = 0u64;
        let mut client_cancelled = 0u64;
        for handle in handles {
            let (tally, kept) = handle
                .join()
                .expect("submitter must not die: deadlock/panic");
            client_ok += tally.ok;
            client_overloaded += tally.overloaded;
            client_cancelled += tally.cancelled;
            for ticket in &kept {
                assert!(ticket.is_done(), "ticket unresolved after shutdown");
            }
        }
        // Reconcile against a snapshot taken only after every submitter
        // has exited: their last refused submissions are counted after
        // `shutdown` already returned.
        let stats = server.stats();
        // Client-side and server-side accounting must agree exactly.
        assert_eq!(client_ok, stats.accepted, "{policy:?}/{mode:?}");
        match policy {
            // Only Reject refuses with Overloaded at the door; under
            // Shed the overload lands on the evicted ticket instead.
            Backpressure::Reject => {
                assert_eq!(
                    client_overloaded + client_cancelled,
                    stats.rejected,
                    "{mode:?}"
                )
            }
            _ => assert_eq!(client_cancelled, stats.rejected, "{policy:?}/{mode:?}"),
        }
        stats
    });
    // No lost tickets: every submission is accounted for exactly once,
    // and the server is fully quiescent.
    assert!(stats.conserved(), "conservation violated: {stats:?}");
    assert_eq!(stats.queued, 0, "{policy:?}/{mode:?}");
    assert_eq!(stats.in_flight, 0, "{policy:?}/{mode:?}");
    assert_eq!(
        stats.submitted,
        stats.completed + stats.rejected + stats.shed + stats.cancelled,
        "lost tickets: {stats:?}"
    );
    assert!(
        stats.completed > 0,
        "soak must actually execute queries: {stats:?}"
    );
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_block_policy_drain_shutdown() {
    hammer::<ArrivalHeap>(Backpressure::Block, ShutdownMode::Drain, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_block_policy_cancel_shutdown() {
    hammer::<ArrivalHeap>(Backpressure::Block, ShutdownMode::Cancel, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_reject_policy() {
    hammer::<ArrivalHeap>(Backpressure::Reject, ShutdownMode::Cancel, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_shed_policy() {
    hammer::<ArrivalHeap>(Backpressure::Shed, ShutdownMode::Drain, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_linear_reference_backend_all_policies() {
    let secs = (stress_secs() / 3.0).max(0.3);
    hammer::<LinearQueue>(Backpressure::Block, ShutdownMode::Drain, secs);
    hammer::<LinearQueue>(Backpressure::Reject, ShutdownMode::Cancel, secs);
    hammer::<LinearQueue>(Backpressure::Shed, ShutdownMode::Cancel, secs);
}

/// Per-submitter tallies of the mixed-priority storm, one row per class.
#[derive(Default, Clone, Copy)]
struct ClassTally {
    ok: u64,
    overloaded: u64,
    cancelled: u64,
}

/// Mixed-priority 8-way storm: submitter `t` rides class `t % 3` and
/// stamps a deadline on half its queries (some generous, some that will
/// expire in the queue), shutdown lands mid-flight, and afterwards the
/// per-class conservation invariant must reconcile exactly against each
/// class's client-side tally — on top of the global invariant, which now
/// also folds the cache classification of every completion.
fn hammer_qos(policy: Backpressure, mode: ShutdownMode, secs: f64) {
    let server = Server::spawn_engine(
        QueryEngine::<ArrivalHeap>::with_queue_backend(small_env()),
        ServeConfig::new()
            .workers(2)
            .queue_capacity(4)
            .backpressure(policy)
            .batch_window(2),
    );
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let classes = [Priority::Interactive, Priority::Batch, Priority::Background];
    let (tallies, stats) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let server = &server;
                let class = classes[t % classes.len()];
                scope.spawn(move || {
                    let mut tally = ClassTally::default();
                    let mut kept = Vec::new();
                    let mut i = 0u64;
                    loop {
                        let p = Point::new(
                            ((t as u64 * 7919 + i * 127) % 1000) as f64,
                            ((t as u64 * 104_729 + i * 211) % 1000) as f64,
                        );
                        i += 1;
                        let qos = match i % 4 {
                            // Deadlines that expire inside a saturated
                            // queue, generous ones, and none at all.
                            0 => Qos::new()
                                .priority(class)
                                .deadline_in(Duration::from_micros(200)),
                            1 => Qos::new()
                                .priority(class)
                                .deadline_in(Duration::from_secs(30)),
                            _ => Qos::new().priority(class),
                        };
                        match server.submit_with(Query::tnn(p), qos) {
                            Ok(ticket) => {
                                tally.ok += 1;
                                match i % 11 {
                                    0 => {
                                        let _ = ticket.wait();
                                    }
                                    1 => kept.push(ticket),
                                    2 => {
                                        let _ = ticket.poll();
                                    }
                                    _ => drop(ticket),
                                }
                            }
                            Err(TnnError::Overloaded) => tally.overloaded += 1,
                            Err(TnnError::Cancelled) => {
                                tally.cancelled += 1;
                                break;
                            }
                            Err(other) => panic!("unexpected submit error {other:?}"),
                        }
                    }
                    (class, tally, kept)
                })
            })
            .collect();
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown(mode);
        let mut tallies = [ClassTally::default(); 3];
        for handle in handles {
            let (class, tally, kept) = handle
                .join()
                .expect("submitter must not die: deadlock/panic");
            let slot = &mut tallies[class.index()];
            slot.ok += tally.ok;
            slot.overloaded += tally.overloaded;
            slot.cancelled += tally.cancelled;
            for ticket in &kept {
                assert!(ticket.is_done(), "ticket unresolved after shutdown");
            }
        }
        // Snapshot only after every submitter exited (their closing
        // refusals land after `shutdown` returned).
        (tallies, server.stats())
    });
    assert!(stats.conserved(), "conservation violated: {stats:?}");
    assert_eq!(
        (stats.queued, stats.in_flight),
        (0, 0),
        "{policy:?}/{mode:?}"
    );
    for class in classes {
        let server_side = stats.class(class);
        let client_side = &tallies[class.index()];
        assert!(server_side.conserved(), "{}: {server_side:?}", class.name());
        assert_eq!(
            client_side.ok,
            server_side.accepted,
            "{} accepted mismatch under {policy:?}/{mode:?}",
            class.name()
        );
        match policy {
            Backpressure::Reject => assert_eq!(
                client_side.overloaded + client_side.cancelled,
                server_side.rejected,
                "{}",
                class.name()
            ),
            _ => assert_eq!(
                client_side.cancelled,
                server_side.rejected,
                "{}",
                class.name()
            ),
        }
    }
    assert!(stats.completed > 0, "soak must execute queries: {stats:?}");
    if policy == Backpressure::Shed {
        // The 200 µs deadlines under a saturated 4-slot queue guarantee
        // expiries; expiry-aware shedding must be observed doing its job.
        assert!(stats.expired > 0, "no deadline ever fired: {stats:?}");
    }
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_mixed_priority_storm_shed_drain() {
    hammer_qos(Backpressure::Shed, ShutdownMode::Drain, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_mixed_priority_storm_shed_cancel() {
    hammer_qos(Backpressure::Shed, ShutdownMode::Cancel, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_mixed_priority_storm_reject_cancel() {
    hammer_qos(Backpressure::Reject, ShutdownMode::Cancel, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_mixed_priority_storm_block_drain() {
    hammer_qos(Backpressure::Block, ShutdownMode::Drain, stress_secs());
}

/// Chaos soak: the full mixed-priority storm runs under an aggressive
/// fault schedule — per-channel drops, jitter, periodic outages, engine
/// panics, and worker kills — with a deep retry ladder and Approximate
/// degradation, and shutdown lands mid-storm. The server must keep
/// serving across ≥ 2 worker kills, lose zero tickets, and keep the
/// conservation invariant exact in every snapshot.
/// The mid-storm slice of the conservation invariant: everything past
/// the admission door. `submitted == accepted + rejected` is *not*
/// asserted here — a submitter blocked inside `submit` (Block
/// backpressure) has been counted `submitted` but not yet decided, so
/// that clause only holds once no submitter is mid-call.
fn admitted_side_conserved(s: &tnn_serve::ServeStats) -> bool {
    s.accepted
        == s.completed + s.shed + s.cancelled + s.expired + s.queued as u64 + s.in_flight as u64
        && s.completed == s.cache_hits + s.cache_misses + s.cache_expired + s.cache_bypass
        && s.classes
            .iter()
            .all(|c| c.degraded <= c.completed && c.latency.count() <= c.completed)
}

fn hammer_chaos(mode: ShutdownMode, secs: f64) {
    let plan = FaultPlan::new(0xC4405)
        .channel(0, ChannelFaults::NONE.drop_rate(60).jitter(3))
        .channel(1, ChannelFaults::NONE.outage(32, 3).jitter(1))
        .panic_rate(4)
        .kill_at(50)
        .kill_at(150)
        .kill_at(400);
    let server = Server::spawn_with_faults(
        small_env(),
        ServeConfig::new()
            .workers(2)
            .queue_capacity(4)
            .backpressure(Backpressure::Block)
            .batch_window(2)
            .retry(
                RetryPolicy::new()
                    .max_attempts(6)
                    .base(Duration::from_micros(50))
                    .cap(Duration::from_micros(500)),
            )
            .degradation(Degradation::Approximate),
        plan,
    );
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let classes = [Priority::Interactive, Priority::Batch, Priority::Background];
    let stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let server = &server;
                let class = classes[t % classes.len()];
                scope.spawn(move || {
                    let mut ok = 0u64;
                    let mut kept = Vec::new();
                    let mut i = 0u64;
                    loop {
                        let p = Point::new(
                            ((t as u64 * 7919 + i * 127) % 1000) as f64,
                            ((t as u64 * 104_729 + i * 211) % 1000) as f64,
                        );
                        i += 1;
                        let qos = match i % 5 {
                            0 => Qos::new()
                                .priority(class)
                                .deadline_in(Duration::from_millis(2)),
                            1 => Qos::new()
                                .priority(class)
                                .deadline_in(Duration::from_secs(30)),
                            _ => Qos::new().priority(class),
                        };
                        match server.submit_with(Query::tnn(p), qos) {
                            Ok(ticket) => {
                                ok += 1;
                                match i % 11 {
                                    0 => {
                                        // Delivered outcomes are either a
                                        // real/degraded answer or one of
                                        // the fault-path errors — never a
                                        // hang, never anything else.
                                        match ticket.wait() {
                                            Ok(_)
                                            | Err(TnnError::Internal)
                                            | Err(TnnError::DeadlineExceeded)
                                            | Err(TnnError::ChannelUnavailable { .. })
                                            | Err(TnnError::Cancelled) => {}
                                            Err(other) => {
                                                panic!("unexpected outcome {other:?}")
                                            }
                                        }
                                    }
                                    1 => kept.push(ticket),
                                    2 => {
                                        let _ = ticket.poll();
                                    }
                                    _ => drop(ticket),
                                }
                            }
                            Err(TnnError::Cancelled) => break ok,
                            Err(other) => panic!("unexpected submit error {other:?}"),
                        }
                        // The admitted-side invariant must hold in
                        // *every* mid-storm snapshot, kills and
                        // respawns included.
                        if i.is_multiple_of(64) {
                            let snap = server.stats();
                            assert!(
                                admitted_side_conserved(&snap),
                                "mid-storm violation: {snap:?}"
                            );
                        }
                    }
                })
            })
            .collect();
        // Record violations instead of asserting inline: shutdown must
        // still run, or the blocked submitters would spin forever and
        // the test would hang rather than fail.
        let mut violation = None;
        while Instant::now() < deadline && violation.is_none() {
            std::thread::sleep(Duration::from_millis(10));
            let snap = server.stats();
            if !admitted_side_conserved(&snap) {
                violation = Some(format!("{snap:?}"));
            }
        }
        server.shutdown(mode);
        let client_ok: u64 = handles
            .into_iter()
            .map(|h| h.join().expect("submitter must not die: deadlock/panic"))
            .sum();
        assert!(
            violation.is_none(),
            "observer snapshot violation: {}",
            violation.unwrap()
        );
        let stats = server.stats();
        assert_eq!(client_ok, stats.accepted, "{mode:?}");
        stats
    });
    assert!(stats.conserved(), "conservation violated: {stats:?}");
    assert_eq!((stats.queued, stats.in_flight), (0, 0), "{mode:?}");
    assert_eq!(
        stats.submitted,
        stats.completed + stats.rejected + stats.shed + stats.cancelled + stats.expired,
        "lost tickets: {stats:?}"
    );
    assert!(stats.completed > 0, "chaos soak must serve: {stats:?}");
    assert!(
        stats.worker_restarts >= 2,
        "the storm must outlive ≥ 2 worker kills: {stats:?}"
    );
    assert!(
        stats.retried > 0,
        "the outage schedule never fired: {stats:?}"
    );
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_chaos_storm_drain() {
    hammer_chaos(ShutdownMode::Drain, stress_secs());
}

#[test]
#[ignore = "stress/soak — run by the stress CI job"]
fn soak_chaos_storm_cancel() {
    hammer_chaos(ShutdownMode::Cancel, stress_secs());
}

/// Bounded chaos smoke — deterministic enough for tier-1: a fixed 300-
/// submission burst through a faulted 2-worker server with two scheduled
/// worker kills, periodic outages, and one scheduled panic. Every ticket
/// resolves (an answer, possibly degraded, or `Internal` for the killed
/// jobs), both kills respawn, and no ticket is lost.
#[test]
fn chaos_smoke_bounded_storm_survives_kills_and_outages() {
    let plan = FaultPlan::new(0x57081)
        .channel(0, ChannelFaults::NONE.drop_rate(80).jitter(2))
        .channel(1, ChannelFaults::NONE.outage(16, 2))
        .panic_at(200)
        .kill_at(40)
        .kill_at(120);
    let server = Server::spawn_with_faults(
        small_env(),
        ServeConfig::new()
            .workers(2)
            .queue_capacity(8)
            .backpressure(Backpressure::Block)
            .batch_window(2)
            .retry(
                RetryPolicy::new()
                    .max_attempts(6)
                    .base(Duration::from_micros(50))
                    .cap(Duration::from_micros(500)),
            )
            .degradation(Degradation::Approximate),
        plan,
    );
    let tickets: Vec<_> = std::thread::scope(|scope| {
        let submit = |t: u64| {
            let server = &server;
            scope.spawn(move || {
                (0..150u64)
                    .map(|i| {
                        let p = Point::new(
                            ((t * 7919 + i * 127) % 1000) as f64,
                            ((t * 104_729 + i * 211) % 1000) as f64,
                        );
                        server.submit(Query::tnn(p)).expect("Block never refuses")
                    })
                    .collect::<Vec<_>>()
            })
        };
        let a = submit(1);
        let b = submit(2);
        let mut tickets = a.join().unwrap();
        tickets.extend(b.join().unwrap());
        tickets
    });
    let mut answered = 0u64;
    let mut internal = 0u64;
    for ticket in &tickets {
        match ticket.wait() {
            Ok(_) => answered += 1,
            Err(TnnError::Internal) => internal += 1,
            Err(other) => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(answered + internal, 300, "every ticket resolves");
    // Two kills abandon at most a batch each (plus the panicked query);
    // everything else gets a real answer.
    assert!(answered >= 294, "too many casualties: {answered}");
    let faults = server.fault_stats().unwrap();
    assert_eq!(faults.worker_kills, 2);
    assert!(faults.outages > 0);
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.worker_restarts, 2, "both kills respawned");
    assert_eq!(stats.completed, 300);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.rejected + stats.shed + stats.cancelled,
        "lost tickets: {stats:?}"
    );
    assert!(stats.conserved(), "conservation violated: {stats:?}");
}

/// No priority inversion at shutdown — deterministic, so it runs in
/// tier-1 too (not only the soak job). One atomic mixed-class batch
/// against one worker is popped in strict priority order; whichever
/// mode lands, the set of jobs that *completed* must be a prefix of
/// that order: a completed background job implies every interactive and
/// batch job completed, and a completed batch job implies every
/// interactive one did.
#[test]
fn no_priority_inversion_at_drain_or_cancel() {
    for mode in [ShutdownMode::Drain, ShutdownMode::Cancel] {
        let server = Server::spawn_engine(
            QueryEngine::<ArrivalHeap>::with_queue_backend(small_env()),
            ServeConfig::new().workers(1).batch_window(1),
        );
        let class_of = |i: usize| match i / 20 {
            0 => Qos::interactive(),
            1 => Qos::batch(),
            _ => Qos::background(),
        };
        let submissions: Vec<_> = (0..60)
            .map(|i| {
                let p = Point::new(((i * 89) % 997) as f64, ((i * 139) % 983) as f64);
                (Query::tnn(p), class_of(i))
            })
            .collect();
        let tickets = server.submit_batch_qos(submissions);
        let stats = server.shutdown(mode);
        assert!(stats.conserved());
        let mut completed = [0usize; 3];
        let mut cancelled = [0usize; 3];
        for (i, ticket) in tickets.into_iter().enumerate() {
            match ticket
                .unwrap()
                .poll()
                .expect("shutdown resolves everything")
            {
                Ok(_) => completed[i / 20] += 1,
                Err(TnnError::Cancelled) => cancelled[i / 20] += 1,
                Err(other) => panic!("unexpected outcome {other:?}"),
            }
        }
        if completed[2] > 0 {
            assert_eq!(
                (cancelled[0], cancelled[1]),
                (0, 0),
                "a background job ran while higher classes were cancelled ({mode:?})"
            );
        }
        if completed[1] > 0 {
            assert_eq!(
                cancelled[0], 0,
                "a batch job ran while interactive work was cancelled ({mode:?})"
            );
        }
        if mode == ShutdownMode::Drain {
            assert_eq!(completed, [20, 20, 20], "drain completes everything");
        }
    }
}
