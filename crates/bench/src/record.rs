//! The `BENCH_*.json` perf-trajectory writer.
//!
//! Every perf-focused PR records a trajectory point by running
//! `cargo run --release -p tnn-bench --bin perf-baseline` and committing
//! the resulting `BENCH_<tag>.json` at the repo root. The format is a
//! single flat JSON document (written by hand — the serde in this tree is
//! an offline shim) so future tooling can diff trajectory points:
//!
//! ```json
//! {
//!   "tag": "pr1",
//!   "workload": "...",
//!   "benchmarks": [
//!     {"id": "...", "ns_per_iter": 123.0, "iters": 42}
//!   ],
//!   "derived": {"speedup_heap_vs_linear": 3.1}
//! }
//! ```
//!
//! See `docs/PERF.md` for how to read these files.

use std::io::Write;
use std::path::Path;

/// One measured benchmark for the JSON trajectory file.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark id (`group/function` style).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes a `BENCH_*.json` trajectory point. `derived` holds named
/// summary ratios (e.g. the heap-vs-linear speedup).
pub fn write_bench_json(
    path: &Path,
    tag: &str,
    workload: &str,
    records: &[BenchRecord],
    derived: &[(&str, f64)],
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"tag\": \"{}\",", json_escape(tag))?;
    writeln!(f, "  \"workload\": \"{}\",", json_escape(workload))?;
    writeln!(f, "  \"benchmarks\": [")?;
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}{comma}",
            json_escape(&r.id),
            r.ns_per_iter,
            r.iters
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"derived\": {{")?;
    for (i, (k, v)) in derived.iter().enumerate() {
        let comma = if i + 1 < derived.len() { "," } else { "" };
        writeln!(f, "    \"{}\": {:.4}{comma}", json_escape(k), v)?;
    }
    writeln!(f, "  }}")?;
    writeln!(f, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_wellformed_json() {
        let dir = std::env::temp_dir().join("tnn_bench_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let records = vec![
            BenchRecord {
                id: "queue/heap".into(),
                ns_per_iter: 10.5,
                iters: 100,
            },
            BenchRecord {
                id: "queue/\"linear\"".into(),
                ns_per_iter: 99.0,
                iters: 7,
            },
        ];
        write_bench_json(&path, "test", "demo", &records, &[("speedup", 9.4286)]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"tag\": \"test\""));
        assert!(body.contains("\"ns_per_iter\": 10.5"));
        assert!(body.contains("\\\"linear\\\""));
        assert!(body.contains("\"speedup\": 9.4286"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(body.matches('{').count(), body.matches('}').count());
        assert_eq!(body.matches('[').count(), body.matches(']').count());
        std::fs::remove_dir_all(&dir).ok();
    }
}
