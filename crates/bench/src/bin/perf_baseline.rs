//! Records a perf-trajectory point: times the full acceptance workload —
//! a 1,000-query DoubleNn batch over 10k-point datasets (Figure-9 shape)
//! — on both candidate-queue backends, checks the `BatchStats` are
//! bit-identical, and writes `BENCH_<tag>.json` at the repo root.
//!
//! ```sh
//! cargo run --release -p tnn-bench --bin perf-baseline -- pr1
//! ```
//!
//! The tag defaults to `baseline`. `TNN_BENCH_QUERIES` (default 1,000)
//! shrinks the workload for smoke runs.

#![forbid(unsafe_code)]
// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;
use tnn_bench::{fixture_tree, write_bench_json, BenchRecord};
use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, TnnConfig};
use tnn_datasets::paper_region;
use tnn_sim::{run_batch, run_batch_linear, run_tnn_batch, BatchConfig, BatchStats};

/// Interleaved min-of-`reps` timing: alternating the two sides per rep
/// cancels slow drift (shared single-core containers are noisy), and the
/// minimum is the standard low-noise point estimate for deterministic
/// workloads.
fn main() {
    let tag = std::env::args().nth(1).unwrap_or_else(|| "baseline".into());
    let queries: usize = std::env::var("TNN_BENCH_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let reps: u64 = std::env::var("TNN_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    eprintln!("perf-baseline: building 10k x 10k fixture trees…");
    let s = fixture_tree(10_000, 1);
    let r = fixture_tree(10_000, 2);
    let cfg = BatchConfig {
        params: BroadcastParams::new(64),
        tnn: TnnConfig::exact(Algorithm::DoubleNn),
        queries,
        seed: 0xF19,
        check_oracle: false,
    };
    let region = paper_region();

    eprintln!("perf-baseline: warm-up + equality check ({queries} queries/batch)…");
    let heap_stats: BatchStats = run_batch(&s, &r, &region, &cfg);
    let linear_stats = run_batch_linear(&s, &r, &region, &cfg);
    assert_eq!(
        heap_stats, linear_stats,
        "backends diverged — the comparison is void"
    );

    let (mut heap_ns, mut linear_ns) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(run_batch(&s, &r, &region, &cfg));
        let h = t0.elapsed().as_nanos() as f64;
        let t0 = Instant::now();
        std::hint::black_box(run_batch_linear(&s, &r, &region, &cfg));
        let l = t0.elapsed().as_nanos() as f64;
        eprintln!(
            "perf-baseline: rep {rep}: heap {:.1} ms, linear {:.1} ms",
            h / 1e6,
            l / 1e6
        );
        heap_ns = heap_ns.min(h);
        linear_ns = linear_ns.min(l);
    }
    let speedup = linear_ns / heap_ns;

    let mut records = vec![
        BenchRecord {
            id: format!("queue/double_nn_10k_{queries}q/heap"),
            ns_per_iter: heap_ns,
            iters: reps,
        },
        BenchRecord {
            id: format!("queue/double_nn_10k_{queries}q/linear_reference"),
            ns_per_iter: linear_ns,
            iters: reps,
        },
    ];
    let mut extras = vec![
        ("speedup_heap_vs_linear", speedup),
        ("mean_access_pages", heap_stats.mean_access),
        ("mean_tune_in_pages", heap_stats.mean_tune_in),
    ];

    // Channel-count axis: Hybrid-NN batch throughput over k = 2, 3, 4
    // channels (the k-ary core generalization), 10k points per channel.
    let mut k_throughput = Vec::new();
    for k in [2usize, 3, 4] {
        let trees: Vec<_> = (0..k)
            .map(|i| fixture_tree(10_000, 10 + i as u64))
            .collect();
        let cfg = BatchConfig {
            params: BroadcastParams::new(64),
            tnn: TnnConfig::exact_for(Algorithm::HybridNn, k),
            queries,
            seed: 0xF19 + k as u64,
            check_oracle: false,
        };
        // Warm-up, then min-of-reps.
        std::hint::black_box(run_tnn_batch(&trees, &region, &cfg));
        let mut best = f64::INFINITY;
        for rep in 0..reps {
            let t0 = Instant::now();
            std::hint::black_box(run_tnn_batch(&trees, &region, &cfg));
            let ns = t0.elapsed().as_nanos() as f64;
            eprintln!("perf-baseline: k={k} rep {rep}: {:.1} ms", ns / 1e6);
            best = best.min(ns);
        }
        let qps = queries as f64 / (best / 1e9);
        k_throughput.push((k, best, qps));
        records.push(BenchRecord {
            id: format!("channels/hybrid_nn_10k_{queries}q/k{k}"),
            ns_per_iter: best,
            iters: reps,
        });
    }
    let extra_qps: Vec<(String, f64)> = k_throughput
        .iter()
        .map(|&(k, _, qps)| (format!("k{k}_hybrid_queries_per_sec"), qps))
        .collect();
    for (name, value) in &extra_qps {
        extras.push((name.as_str(), *value));
    }

    let path = std::path::PathBuf::from(format!("BENCH_{tag}.json"));
    write_bench_json(
        &path,
        &tag,
        &format!(
            "DoubleNn heap-vs-linear + HybridNn k=2/3/4 channel batches, {queries} queries/batch, \
             10k uniform points per channel, page 64, paper region"
        ),
        &records,
        &extras,
    )
    .expect("write BENCH json");

    println!(
        "heap {:.1} ms/batch, linear {:.1} ms/batch -> speedup {speedup:.2}x (stats identical: yes)",
        heap_ns / 1e6,
        linear_ns / 1e6
    );
    for &(k, ns, qps) in &k_throughput {
        println!("k={k}: {:.1} ms/batch ({qps:.0} queries/s)", ns / 1e6);
    }
    println!("wrote {}", path.display());
}
