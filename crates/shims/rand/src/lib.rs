//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no crates registry, so this shim implements
//! the exact surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over (inclusive and
//! exclusive) integer and float ranges, and `Rng::gen::<f64>()` — on top
//! of a SplitMix64 generator. The workloads only need *deterministic,
//! well-mixed* streams, not cryptographic or statistically certified
//! ones; every simulation seed in the repo produces the same dataset and
//! phase sequence on every platform. Swapping in the real `rand` changes
//! the concrete streams (different algorithm) but no code.

#![forbid(unsafe_code)]

/// Pseudo-random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 under the hood — the
    /// real `StdRng` is ChaCha12; see the crate docs for why that is fine
    /// here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            StdRng { state }
        }

        pub(crate) fn next(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush when
            // used as a stream, one add + three xor-shifts per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Construction of seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix the seed (one wyhash-style round with constants
        // distinct from SplitMix64's gamma) before it becomes generator
        // state. Without this, a caller-side affine seed schedule like
        // `seed ^ i * 0x9E3779B97F4A7C15` — which the batch runners use —
        // aligns exactly with the generator's own increment, making query
        // i's (k+1)-th draw equal query (i+1)'s k-th draw and collapsing
        // "independent" per-query streams into one shifted orbit.
        let mut z = seed.wrapping_add(0xA076_1D64_78BD_642F);
        z = (z ^ (z >> 32)).wrapping_mul(0xE703_7ED1_A0B4_28DB);
        rngs::StdRng::from_state(z ^ (z >> 29))
    }
}

/// Low-level uniform 64-bit output (mirrors `rand::RngCore`).
pub trait RngCore {
    /// The next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// User-facing sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample of the type's standard distribution (`f64` → `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        T: StandardSample,
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one standard sample.
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::standard_sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Rounding can land exactly on `end` for tiny spans; clamp back
        // into the half-open interval.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        let u = f64::standard_sample(rng);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u64, usize, u32, u16, u8);

macro_rules! impl_signed_sample_range {
    ($($t:ty as $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as $wide - self.start as $wide) as u64;
                (self.start as $wide + (rng.next_u64() % span) as $wide) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as $wide - lo as $wide) as u64;
                if span == u64::MAX {
                    return (lo as $wide + rng.next_u64() as $wide) as $t;
                }
                (lo as $wide + (rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i64 as i64, i32 as i64, isize as i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn affine_seed_schedules_do_not_overlap_streams() {
        // Regression: the batch runners seed per-query generators with
        // `seed ^ i * 0x9E3779B97F4A7C15`. If seed_from_u64 used the raw
        // seed as SplitMix64 state, stream i shifted by one draw would
        // equal stream i+1 (the schedule's multiplier is SplitMix64's
        // gamma). The pre-mix must break that alignment.
        const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
        for base in [0u64, 0xEDB7_2008, 0xF19] {
            for i in 0..50u64 {
                let mut a = rngs::StdRng::seed_from_u64(base ^ i.wrapping_mul(GAMMA));
                let mut b = rngs::StdRng::seed_from_u64(base ^ (i + 1).wrapping_mul(GAMMA));
                let a_draws: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
                let b_first = b.next_u64();
                assert!(
                    !a_draws.contains(&b_first),
                    "stream overlap at base {base:#x}, i {i}"
                );
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0f64..5.0);
            assert!((3.0..5.0).contains(&x));
            let y = rng.gen_range(10u64..13);
            assert!((10..13).contains(&y));
            let z = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&z));
            let w = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&w));
        }
    }

    #[test]
    fn degenerate_inclusive_range() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(9u64..=9), 9);
        assert_eq!(rng.gen_range(2.5f64..=2.5), 2.5);
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 10k uniform draws is close to 1/2.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
