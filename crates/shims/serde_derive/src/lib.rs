//! No-op derive macros backing the offline `serde` shim.
//!
//! The shim's `Serialize` / `Deserialize` traits are blanket-implemented,
//! so the derives legitimately expand to nothing — they exist only so that
//! `#[derive(Serialize, Deserialize)]` attributes compile unchanged.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs. Registers the `#[serde(...)]`
/// helper attribute exactly like the real derive, so container/field
/// attributes (e.g. `#[serde(into = "...")]`) compile unchanged.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs. Registers the `#[serde(...)]`
/// helper attribute exactly like the real derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
