//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`sample::select`], the [`proptest!`] macro with
//! `#![proptest_config(..)]`, and the `prop_assert*` / `prop_assume!`
//! assertion macros. Cases are generated from a per-test deterministic
//! seed (hash of the test name), so failures reproduce exactly.
//!
//! Differences from real proptest, by design:
//! * **no shrinking** — a failing case reports its inputs via the
//!   assertion message, but is not minimized;
//! * `prop_assume!` skips the current case rather than re-drawing it.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.uniform_f64(self.start, self.end)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.uniform_f64(*self.start(), *self.end())
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing one element of a fixed set.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly selects one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod test_runner {
    //! Case-count configuration and the deterministic test RNG.

    /// Per-test configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; keep parity.
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test: same name → same case sequence.
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the name gives distinct, stable seeds per test.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)` (or exactly `lo` when `lo == hi`).
        pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
            assert!(lo <= hi, "empty f64 range strategy");
            let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + u * (hi - lo)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn` runs `cases` times with fresh random
/// inputs drawn from its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` for property bodies (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Pt {
        x: f64,
        y: f64,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(
            x in -10.0f64..10.0,
            n in 1usize..50,
            p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Pt { x, y }),
        ) {
            prop_assert!((-10.0..10.0).contains(&x));
            prop_assert!((1..50).contains(&n));
            prop_assert!(p.x >= 0.0 && p.y < 1.0);
        }

        #[test]
        fn collections_and_select(
            v in prop::collection::vec(0u32..100, 1..20),
            choice in prop::sample::select(vec![2usize, 3, 5]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!([2, 3, 5].contains(&choice));
        }

        #[test]
        fn assume_skips_cases(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
