//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides just enough of serde's surface for the repo to compile: the
//! `Serialize` / `Deserialize` marker traits (blanket-implemented) and the
//! matching no-op derive macros. Nothing in this workspace serializes
//! through serde — machine-readable artifacts (CSV tables, `BENCH_*.json`)
//! are written by hand — so the derives only need to exist, not to
//! generate real impls. Replacing this shim with the real `serde` is a
//! one-line change in the workspace manifest.

#![forbid(unsafe_code)]

/// Marker trait mirroring `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
