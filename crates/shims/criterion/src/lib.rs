//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the surface the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple adaptive wall-clock measurer
//! instead of criterion's statistical machinery.
//!
//! Supported CLI (after `cargo bench -- …`):
//! * `--test` — run every benchmark body exactly once, no timing (smoke
//!   mode, same contract as real criterion);
//! * a bare string — only run benchmarks whose id contains it;
//! * `--bench` and other criterion flags are accepted and ignored.
//!
//! When the environment variable `CRITERION_JSON` names a file, the
//! collected `{id, ns_per_iter, iters}` records are appended there as one
//! JSON document — this is how the repo's `BENCH_*.json` trajectory files
//! are produced (see `docs/PERF.md`).

#![forbid(unsafe_code)]
// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` or `group/function/param`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Benchmark identifier (mirrors `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    target: Duration,
    result: &'a mut Option<(f64, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    SmokeTest,
}

impl Bencher<'_> {
    /// Measures `f`, running it adaptively until the sampling window is
    /// filled (or exactly once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::SmokeTest {
            black_box(f());
            *self.result = Some((0.0, 1));
            return;
        }
        // Warm-up: one untimed run (fills caches, triggers lazy init).
        black_box(f());
        let mut batch: u64 = 1;
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        while total_time < self.target {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_time += t0.elapsed();
            total_iters += batch;
            // Grow batches geometrically so timer overhead stays small
            // relative to the measured work.
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        let ns = total_time.as_nanos() as f64 / total_iters as f64;
        *self.result = Some((ns, total_iters));
    }
}

/// The benchmark manager (mirrors `criterion::Criterion`).
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    target: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Measure,
            filter: None,
            target: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a manager from the process CLI arguments (see crate docs).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.mode = Mode::SmokeTest,
                s if s.starts_with("--") => {} // accepted, ignored
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into().name;
        self.run_one(id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, id: String, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut result = None;
        let mut b = Bencher {
            mode: self.mode,
            target: self.target,
            result: &mut result,
        };
        f(&mut b);
        let (ns, iters) = result.unwrap_or((0.0, 0));
        match self.mode {
            Mode::SmokeTest => println!("test {id} ... ok"),
            Mode::Measure => println!("{id:<60} {:>14.1} ns/iter  ({iters} iters)", ns),
        }
        self.results.push(BenchResult {
            id,
            ns_per_iter: ns,
            iters,
        });
    }

    /// Prints the summary and writes `CRITERION_JSON` if requested; called
    /// by [`criterion_main!`].
    pub fn final_summary(&self) {
        if self.mode == Mode::SmokeTest {
            println!("{} benchmarks smoke-tested", self.results.len());
            return;
        }
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Err(e) = self.write_json(&path) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn write_json(&self, path: &str) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{{")?;
        writeln!(f, "  \"benchmarks\": [")?;
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            writeln!(
                f,
                "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}{comma}",
                r.id.replace('"', "\\\""),
                r.ns_per_iter,
                r.iters
            )?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.target = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = format!("{}/{}", self.name, id.into().name);
        self.criterion.run_one(id, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(id, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main` (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            target: Duration::from_millis(5),
            ..Criterion::default()
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].iters > 0);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode::SmokeTest,
            ..Criterion::default()
        };
        let mut runs = 0;
        c.bench_function("counted", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            target: Duration::from_millis(1),
            ..Criterion::default()
        };
        c.bench_function("keep/this", |b| b.iter(|| 1));
        c.bench_function("drop/this", |b| b.iter(|| 1));
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].id, "keep/this");
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c = Criterion {
            target: Duration::from_millis(1),
            ..Criterion::default()
        };
        let mut g = c.benchmark_group("grp");
        g.bench_function("f", |b| b.iter(|| 1));
        g.bench_with_input(BenchmarkId::new("g", 42), &7, |b, x| b.iter(|| *x));
        g.finish();
        assert_eq!(c.results()[0].id, "grp/f");
        assert_eq!(c.results()[1].id, "grp/g/42");
    }
}
