//! The per-submission QoS bundle: [`Qos`].

// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use crate::{Deadline, Priority};
use std::time::{Duration, Instant};

/// Quality-of-service terms attached to one submission: which class it
/// rides in and when it stops being worth answering.
///
/// The default — [`Priority::Batch`], no deadline — reproduces plain
/// unclassified serving, so QoS-oblivious callers lose nothing.
///
/// ```
/// use std::time::Duration;
/// use tnn_qos::{Deadline, Priority, Qos};
///
/// let spec = Qos::interactive().deadline_in(Duration::from_millis(50));
/// assert_eq!(spec.priority, Priority::Interactive);
/// assert!(spec.deadline != Deadline::NONE);
/// assert_eq!(Qos::default(), Qos::new());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Qos {
    /// The service class (default [`Priority::Batch`]).
    pub priority: Priority,
    /// The expiry terms (default [`Deadline::NONE`]).
    pub deadline: Deadline,
}

impl Qos {
    /// Batch priority, no deadline — the behaviour of a QoS-oblivious
    /// submission.
    pub fn new() -> Self {
        Qos::default()
    }

    /// [`Priority::Interactive`] with no deadline.
    pub fn interactive() -> Self {
        Qos::new().priority(Priority::Interactive)
    }

    /// [`Priority::Batch`] with no deadline (the default, spelled out).
    pub fn batch() -> Self {
        Qos::new().priority(Priority::Batch)
    }

    /// [`Priority::Background`] with no deadline.
    pub fn background() -> Self {
        Qos::new().priority(Priority::Background)
    }

    /// Sets the service class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the expiry terms.
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Expiry `ttl` from now (shorthand for
    /// `.deadline(Deadline::within(ttl))`).
    pub fn deadline_in(self, ttl: Duration) -> Self {
        self.deadline(Deadline::within(ttl))
    }

    /// Expiry at the absolute instant `at`.
    pub fn deadline_at(self, at: Instant) -> Self {
        self.deadline(Deadline::at(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let spec = Qos::background().deadline_in(Duration::from_secs(9));
        assert_eq!(spec.priority, Priority::Background);
        assert!(!spec.deadline.expired(Instant::now()));

        let at = Instant::now() + Duration::from_secs(1);
        let spec = Qos::interactive().deadline_at(at);
        assert_eq!(spec.deadline.instant(), Some(at));
        assert_eq!(Qos::batch(), Qos::default());
        assert_eq!(Qos::new().deadline, Deadline::NONE);
    }
}
