//! Per-request expiry: [`Deadline`].

// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// When a request stops being worth answering.
///
/// A deadline is an optional absolute instant; [`Deadline::NONE`] (the
/// default) never expires. Schedulers treat an expired request as dead
/// weight: it is refused at admission, preferred as a shed victim, and
/// discarded at dequeue instead of occupying a worker.
///
/// ```
/// use std::time::{Duration, Instant};
/// use tnn_qos::Deadline;
///
/// let now = Instant::now();
/// assert!(!Deadline::NONE.expired(now));
/// assert!(Deadline::at(now).expired(now));          // inclusive
/// assert!(!Deadline::within(Duration::from_secs(60)).expired(now));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline: the request never expires.
    pub const NONE: Deadline = Deadline(None);

    /// Expires at the absolute instant `at` (inclusive: the request is
    /// expired *at* `at`, matching a zero-TTL [`Deadline::within`]
    /// expiring immediately).
    pub fn at(at: Instant) -> Self {
        Deadline(Some(at))
    }

    /// Expires `ttl` from now. A TTL so large the instant overflows is
    /// treated as no deadline.
    pub fn within(ttl: Duration) -> Self {
        Deadline(Instant::now().checked_add(ttl))
    }

    /// The absolute expiry instant, `None` for [`Deadline::NONE`].
    pub fn instant(&self) -> Option<Instant> {
        self.0
    }

    /// `true` when the request is no longer worth answering at `now`.
    #[inline]
    pub fn expired(&self, now: Instant) -> bool {
        match self.0 {
            Some(at) => now >= at,
            None => false,
        }
    }

    /// Time left at `now`: `None` without a deadline, zero when expired.
    pub fn remaining(&self, now: Instant) -> Option<Duration> {
        self.0.map(|at| at.saturating_duration_since(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let far = Instant::now() + Duration::from_secs(1_000_000);
        assert!(!Deadline::NONE.expired(far));
        assert_eq!(Deadline::NONE.instant(), None);
        assert_eq!(Deadline::NONE.remaining(far), None);
        assert_eq!(Deadline::default(), Deadline::NONE);
    }

    #[test]
    fn absolute_deadlines_are_inclusive() {
        let now = Instant::now();
        let d = Deadline::at(now + Duration::from_millis(5));
        assert!(!d.expired(now));
        assert!(d.expired(now + Duration::from_millis(5)));
        assert!(d.expired(now + Duration::from_millis(6)));
        assert_eq!(d.remaining(now), Some(Duration::from_millis(5)));
        assert_eq!(
            d.remaining(now + Duration::from_secs(1)),
            Some(Duration::ZERO)
        );
    }

    #[test]
    fn zero_ttl_expires_immediately() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.expired(Instant::now()));
    }

    #[test]
    fn generous_ttl_outlives_now() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired(Instant::now()));
        assert!(d.instant().is_some());
    }
}
