//! The sharded, lock-striped LRU result cache: [`ResultCache`].

// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use std::collections::hash_map::{DefaultHasher, Entry as MapEntry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Result-cache tuning knobs.
///
/// ```
/// use std::time::Duration;
/// use tnn_qos::CacheConfig;
///
/// let cfg = CacheConfig::new()
///     .capacity(8192)
///     .shards(16)
///     .ttl(Some(Duration::from_secs(30)));
/// assert!(cfg.enabled);
/// assert!(!CacheConfig::disabled().enabled);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Whether a front-end should consult the cache at all. `false`
    /// reproduces uncached serving exactly (every lookup is a bypass).
    pub enabled: bool,
    /// Total entry bound over all shards (clamped to at least one entry
    /// per shard).
    pub capacity: usize,
    /// Lock stripes; rounded up to a power of two, clamped to ≥ 1. More
    /// shards mean less contention between concurrent workers.
    pub shards: usize,
    /// Entry time-to-live: a stored result older than this counts as
    /// [`Lookup::Expired`] and is dropped. `None` (the default) keeps
    /// entries until LRU eviction — correct whenever the underlying data
    /// is immutable, as a broadcast cycle's datasets are.
    pub ttl: Option<Duration>,
}

impl CacheConfig {
    /// Enabled, 4096 entries over 8 shards, no TTL.
    pub fn new() -> Self {
        CacheConfig {
            enabled: true,
            capacity: 4096,
            shards: 8,
            ttl: None,
        }
    }

    /// A disabled cache (every lookup bypasses).
    pub fn disabled() -> Self {
        CacheConfig {
            enabled: false,
            ..CacheConfig::new()
        }
    }

    /// Sets the total entry bound.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the lock-stripe count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the entry time-to-live.
    pub fn ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::new()
    }
}

/// One cache probe's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup<V> {
    /// A live entry was found; the stored value is returned (and the
    /// entry refreshed to most-recently-used).
    Hit(V),
    /// An entry was found but its TTL had elapsed; it has been removed.
    /// The caller recomputes and re-inserts.
    Expired,
    /// No entry under this key.
    Miss,
}

/// Aggregate cache counters, folded over all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that returned [`Lookup::Hit`].
    pub hits: u64,
    /// Probes that returned [`Lookup::Miss`].
    pub misses: u64,
    /// Probes that found only a TTL-expired entry ([`Lookup::Expired`]).
    pub expired: u64,
    /// Values stored (fresh keys and overwrites alike).
    pub insertions: u64,
    /// Entries dropped to make room (LRU victims; TTL drops count under
    /// [`CacheStats::expired`] instead).
    pub evictions: u64,
    /// Live entries at snapshot time.
    pub len: usize,
}

impl CacheStats {
    /// Hit fraction of all probes, 0.0 on an unprobed cache.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses + self.expired;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }

    /// Publishes the cache counters into `registry` under `tnn_cache_*`
    /// names. Every field of this snapshot except `len` only grows, so
    /// repeated publications are monotone (Prometheus counter
    /// semantics); `len` is a gauge.
    pub fn publish_metrics(&self, registry: &tnn_trace::MetricsRegistry) {
        registry.counter("tnn_cache_hits_total", "Probes that hit", self.hits);
        registry.counter("tnn_cache_misses_total", "Probes that missed", self.misses);
        registry.counter(
            "tnn_cache_expired_total",
            "Probes that found only a TTL-expired entry",
            self.expired,
        );
        registry.counter(
            "tnn_cache_insertions_total",
            "Values stored",
            self.insertions,
        );
        registry.counter(
            "tnn_cache_evictions_total",
            "Entries dropped to make room (LRU victims)",
            self.evictions,
        );
        registry.gauge("tnn_cache_len", "Live entries", self.len as f64);
    }
}

/// Slot index used as "no link" in the intrusive LRU list.
const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    stored_at: Instant,
    prev: usize,
    next: usize,
}

/// One lock stripe: a hash map into a slab of entries threaded on an
/// intrusive most-recent-first list, so every operation is O(1).
struct Shard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    expired: u64,
    insertions: u64,
    evictions: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            expired: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    fn entry(&self, slot: usize) -> &Entry<K, V> {
        // check:allow(R2, intrusive-list invariant — every slot reachable through head/tail/prev/next links is occupied, checked by the stripe's debug asserts)
        self.slots[slot].as_ref().expect("linked slot is occupied")
    }

    fn entry_mut(&mut self, slot: usize) -> &mut Entry<K, V> {
        // check:allow(R2, intrusive-list invariant — every slot reachable through head/tail/prev/next links is occupied, checked by the stripe's debug asserts)
        self.slots[slot].as_mut().expect("linked slot is occupied")
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let e = self.entry(slot);
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.entry_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.entry_mut(n).prev = prev,
        }
    }

    fn link_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let e = self.entry_mut(slot);
            e.prev = NIL;
            e.next = old_head;
        }
        match old_head {
            NIL => self.tail = slot,
            h => self.entry_mut(h).prev = slot,
        }
        self.head = slot;
    }

    /// Removes `slot` entirely, returning its entry to the free list.
    fn remove(&mut self, slot: usize) {
        self.unlink(slot);
        // check:allow(R2, remove() is only called with slots found via the map or the LRU tail, both of which point at occupied slots)
        let entry = self.slots[slot].take().expect("removed slot was occupied");
        self.map.remove(&entry.key);
        self.free.push(slot);
    }

    fn lookup(&mut self, key: &K, now: Instant, ttl: Option<Duration>) -> Lookup<V> {
        let Some(&slot) = self.map.get(key) else {
            self.misses += 1;
            return Lookup::Miss;
        };
        if let Some(ttl) = ttl {
            // Saturating: a concurrent writer may have stamped the entry
            // an instant after the caller drew `now`.
            if now.saturating_duration_since(self.entry(slot).stored_at) >= ttl {
                self.remove(slot);
                self.expired += 1;
                return Lookup::Expired;
            }
        }
        self.unlink(slot);
        self.link_front(slot);
        self.hits += 1;
        Lookup::Hit(self.entry(slot).value.clone())
    }

    fn insert(&mut self, key: K, value: V, now: Instant) {
        self.insertions += 1;
        if let MapEntry::Occupied(occupied) = self.map.entry(key.clone()) {
            let slot = *occupied.get();
            let entry = self.entry_mut(slot);
            entry.value = value;
            entry.stored_at = now;
            self.unlink(slot);
            self.link_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.remove(victim);
            self.evictions += 1;
        }
        let entry = Entry {
            key: key.clone(),
            value,
            stored_at: now,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(entry);
                slot
            }
            None => {
                self.slots.push(Some(entry));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.link_front(slot);
    }
}

/// A sharded, lock-striped LRU cache with optional entry TTL.
///
/// Keys route to one of `shards` stripes by hash; each stripe is an
/// independent O(1) LRU under its own mutex, so concurrent workers only
/// contend when their keys collide on a stripe. Values are returned by
/// clone — the intended value type (a query outcome) is cheap relative
/// to recomputing it over a broadcast cycle.
///
/// ```
/// use std::time::Instant;
/// use tnn_qos::{CacheConfig, Lookup, ResultCache};
///
/// let cache: ResultCache<u64, String> = ResultCache::new(CacheConfig::new().capacity(128));
/// let now = Instant::now();
/// assert_eq!(cache.lookup(&7, now), Lookup::Miss);
/// cache.insert(7, "answer".into(), now);
/// assert_eq!(cache.lookup(&7, now), Lookup::Hit("answer".into()));
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct ResultCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    mask: u64,
    ttl: Option<Duration>,
}

// Shard<K, V> has no Debug bound on K/V; keep the derive-free impl tiny.
impl<K, V> std::fmt::Debug for Shard<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("len", &self.map.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ResultCache<K, V> {
    /// A cache sized by `config` ([`CacheConfig::enabled`] is the
    /// *caller's* switch — a constructed cache always works).
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        let per_shard = config.capacity.div_ceil(shards).max(1);
        ResultCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            mask: shards as u64 - 1,
            ttl: config.ttl,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() & self.mask) as usize]
    }

    /// Probes the cache at `now`. A [`Lookup::Hit`] refreshes the entry
    /// to most-recently-used; a TTL-expired entry is removed and
    /// reported as [`Lookup::Expired`].
    pub fn lookup(&self, key: &K, now: Instant) -> Lookup<V> {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lookup(key, now, self.ttl)
    }

    /// Stores `value` under `key`, stamped at `now`, evicting the
    /// stripe's least-recently-used entry if it is full. An existing
    /// entry is overwritten and re-stamped.
    pub fn insert(&self, key: K, value: V, now: Instant) {
        self.shard(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, value, now);
    }

    /// Live entries over all stripes.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// `true` when no stripe holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters folded over all stripes.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.expired += shard.expired;
            stats.insertions += shard.insertions;
            stats.evictions += shard.evictions;
            stats.len += shard.map.len();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(capacity: usize, shards: usize) -> ResultCache<u64, u64> {
        ResultCache::new(CacheConfig::new().capacity(capacity).shards(shards))
    }

    #[test]
    fn hit_returns_the_stored_value() {
        let cache = small(16, 1);
        let now = Instant::now();
        assert_eq!(cache.lookup(&1, now), Lookup::Miss);
        cache.insert(1, 100, now);
        cache.insert(2, 200, now);
        assert_eq!(cache.lookup(&1, now), Lookup::Hit(100));
        assert_eq!(cache.lookup(&2, now), Lookup::Hit(200));
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (2, 1, 2));
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // One shard so recency order is global.
        let cache = small(3, 1);
        let now = Instant::now();
        for k in 0..3 {
            cache.insert(k, k * 10, now);
        }
        // Touch 0 so 1 becomes the LRU, then overflow.
        assert_eq!(cache.lookup(&0, now), Lookup::Hit(0));
        cache.insert(3, 30, now);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.lookup(&1, now), Lookup::Miss, "LRU victim");
        assert_eq!(cache.lookup(&0, now), Lookup::Hit(0));
        assert_eq!(cache.lookup(&2, now), Lookup::Hit(20));
        assert_eq!(cache.lookup(&3, now), Lookup::Hit(30));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn overwrite_refreshes_value_and_recency() {
        let cache = small(2, 1);
        let now = Instant::now();
        cache.insert(1, 10, now);
        cache.insert(2, 20, now);
        cache.insert(1, 11, now); // overwrite: 2 is now the LRU
        cache.insert(3, 30, now);
        assert_eq!(cache.lookup(&2, now), Lookup::Miss);
        assert_eq!(cache.lookup(&1, now), Lookup::Hit(11));
        assert_eq!(cache.lookup(&3, now), Lookup::Hit(30));
    }

    #[test]
    fn ttl_expires_entries() {
        let cache: ResultCache<u64, u64> = ResultCache::new(
            CacheConfig::new()
                .capacity(8)
                .shards(1)
                .ttl(Some(Duration::from_millis(10))),
        );
        let t0 = Instant::now();
        cache.insert(1, 10, t0);
        assert_eq!(cache.lookup(&1, t0), Lookup::Hit(10), "fresh");
        let later = t0 + Duration::from_millis(10);
        assert_eq!(cache.lookup(&1, later), Lookup::Expired, "ttl inclusive");
        // The expired entry is gone: the next probe is a plain miss, and
        // re-inserting restores it with a fresh stamp.
        assert_eq!(cache.lookup(&1, later), Lookup::Miss);
        cache.insert(1, 11, later);
        assert_eq!(cache.lookup(&1, later), Lookup::Hit(11));
        let stats = cache.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn zero_ttl_always_expires() {
        let cache: ResultCache<u64, u64> =
            ResultCache::new(CacheConfig::new().shards(1).ttl(Some(Duration::ZERO)));
        let now = Instant::now();
        cache.insert(1, 10, now);
        assert_eq!(cache.lookup(&1, now), Lookup::Expired);
        assert!(cache.is_empty());
    }

    #[test]
    fn shards_split_the_capacity_and_keys() {
        let cache = small(64, 4);
        let now = Instant::now();
        for k in 0..64u64 {
            cache.insert(k, k, now);
        }
        // Per-shard LRU may evict unevenly, but the total stays bounded
        // and most keys survive.
        assert!(cache.len() <= 64);
        assert!(cache.len() >= 32);
        let hits = (0..64u64)
            .filter(|k| matches!(cache.lookup(k, now), Lookup::Hit(_)))
            .count();
        assert!(hits >= 32);
    }

    #[test]
    fn concurrent_probes_and_inserts_stay_consistent() {
        let cache = std::sync::Arc::new(small(256, 8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    let now = Instant::now();
                    for i in 0..1000u64 {
                        let key = (t * 31 + i) % 97;
                        match cache.lookup(&key, now) {
                            Lookup::Hit(v) => assert_eq!(v, key * 2),
                            _ => cache.insert(key, key * 2, now),
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses + stats.expired, 4000);
        assert!(stats.len <= 97);
    }
}
