//! Retry pacing and per-class retry budgets: [`RetryPolicy`],
//! [`RetryBudget`].

use crate::priority::Priority;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64 finalizer — deterministic jitter needs no RNG state.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a server paces retries of a recoverable failure (a
/// `ChannelUnavailable` tune-in miss): capped exponential backoff with
/// **deterministic** seeded jitter.
///
/// The backoff-from-feedback analysis of the multi-access literature
/// says retries must decorrelate (identical backoffs re-collide forever)
/// but reproductions must replay (random jitter breaks every
/// equivalence gate) — so the jitter here is a pure function of
/// `(jitter_seed, key, attempt)`: spread across keys, identical across
/// reruns.
///
/// ```
/// use std::time::Duration;
/// use tnn_qos::RetryPolicy;
///
/// let policy = RetryPolicy::new()
///     .max_attempts(5)
///     .base(Duration::from_micros(400))
///     .cap(Duration::from_millis(5));
/// // Exponential growth, capped…
/// assert!(policy.backoff(2, 7) >= policy.backoff(1, 7));
/// assert!(policy.backoff(30, 7) <= Duration::from_millis(5) * 3 / 2);
/// // …and fully reproducible.
/// assert_eq!(policy.backoff(3, 7), policy.backoff(3, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Total execution attempts per job, including the first (clamped
    /// to at least 1; `1` means "never retry").
    pub max_attempts: u32,
    /// Backoff before the first retry; each further retry doubles it.
    pub base: Duration,
    /// Upper bound on any single backoff (pre-jitter).
    pub cap: Duration,
    /// Seed of the deterministic jitter draw; `0` disables jitter.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// Never retry: one attempt, no backoff.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        base: Duration::ZERO,
        cap: Duration::ZERO,
        jitter_seed: 0,
    };

    /// The default policy: 4 attempts, 200 µs base doubling to a 10 ms
    /// cap, jittered. Deep enough to clear short outages, bounded
    /// enough that a worker stuck retrying resolves within ~30 ms.
    pub fn new() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(10),
            jitter_seed: 0x5EED,
        }
    }

    /// Sets the total attempt bound (clamped to at least 1).
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the first-retry backoff.
    pub fn base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Sets the per-backoff upper bound.
    pub fn cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Sets the jitter seed (`0` disables jitter).
    pub fn jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The pause before retry `attempt` (1-based: the first retry is
    /// attempt 1) of the work item identified by `key` — exponential in
    /// `attempt`, capped, then scaled by a deterministic jitter factor
    /// in `[0.5, 1.5)` drawn from `(jitter_seed, key, attempt)`.
    pub fn backoff(&self, attempt: u32, key: u64) -> Duration {
        if self.base.is_zero() || attempt == 0 {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(32);
        let nanos = (self.base.as_nanos() << exp).min(self.cap.as_nanos().max(1));
        let nanos = u64::try_from(nanos).unwrap_or(u64::MAX);
        if self.jitter_seed == 0 {
            return Duration::from_nanos(nanos);
        }
        // Scale by 512..1536 / 1024 — a power-of-two fixed-point [0.5, 1.5).
        let draw = mix(self.jitter_seed ^ mix(key ^ mix(u64::from(attempt)))) % 1024;
        Duration::from_nanos((nanos / 1024).saturating_mul(512 + draw))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new()
    }
}

/// Per-class retry budgets: a shared pool of retry *attempts* each
/// priority class may spend, so a Background storm of failing queries
/// cannot monopolize workers with backoff-sleeps that Interactive
/// traffic then queues behind.
///
/// A limit of `0` means unlimited. Charging is lock-free (one CAS per
/// retry); once a class's pool is exhausted, its jobs skip the ladder
/// and degrade (or fail) immediately.
#[derive(Debug)]
pub struct RetryBudget {
    limits: [u64; Priority::COUNT],
    spent: [AtomicU64; Priority::COUNT],
}

impl RetryBudget {
    /// A budget with the given per-class attempt limits (`0` =
    /// unlimited), indexed by [`Priority::index`].
    pub fn new(limits: [u64; Priority::COUNT]) -> Self {
        RetryBudget {
            limits,
            spent: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// An unlimited budget for every class.
    pub fn unlimited() -> Self {
        RetryBudget::new([0; Priority::COUNT])
    }

    /// Tries to charge one retry attempt to `class`: `true` and counted
    /// when the class still has budget, `false` (and not counted) once
    /// its pool is dry.
    pub fn try_charge(&self, class: Priority) -> bool {
        let i = class.index();
        let limit = self.limits[i];
        if limit == 0 {
            self.spent[i].fetch_add(1, Ordering::Relaxed);
            return true;
        }
        self.spent[i]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |spent| {
                (spent < limit).then_some(spent + 1)
            })
            .is_ok()
    }

    /// Retry attempts charged to `class` so far.
    pub fn spent(&self, class: Priority) -> u64 {
        self.spent[class.index()].load(Ordering::Relaxed)
    }

    /// Attempts left for `class`, `None` when unlimited.
    pub fn remaining(&self, class: Priority) -> Option<u64> {
        let i = class.index();
        (self.limits[i] != 0).then(|| self.limits[i] - self.spent[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy::new()
            .base(Duration::from_micros(100))
            .cap(Duration::from_millis(1))
            .jitter(0);
        assert_eq!(p.backoff(1, 0), Duration::from_micros(100));
        assert_eq!(p.backoff(2, 0), Duration::from_micros(200));
        assert_eq!(p.backoff(3, 0), Duration::from_micros(400));
        assert_eq!(p.backoff(11, 0), Duration::from_millis(1));
        assert_eq!(p.backoff(60, 0), Duration::from_millis(1)); // exp clamp
        assert_eq!(RetryPolicy::NONE.backoff(1, 0), Duration::ZERO);
        assert_eq!(p.backoff(0, 0), Duration::ZERO);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_spread() {
        let p = RetryPolicy::new()
            .base(Duration::from_micros(512))
            .cap(Duration::from_secs(1));
        let nominal = Duration::from_micros(512);
        let mut distinct = std::collections::HashSet::new();
        for key in 0..32 {
            let b = p.backoff(1, key);
            assert_eq!(b, p.backoff(1, key), "replay-exact");
            assert!(b >= nominal / 2 && b < nominal * 3 / 2, "{b:?}");
            distinct.insert(b);
        }
        assert!(distinct.len() > 16, "jitter should spread across keys");
    }

    #[test]
    fn budget_charges_until_dry_per_class() {
        let budget = RetryBudget::new([2, 0, 1]);
        assert!(budget.try_charge(Priority::Interactive));
        assert!(budget.try_charge(Priority::Interactive));
        assert!(!budget.try_charge(Priority::Interactive));
        assert_eq!(budget.spent(Priority::Interactive), 2);
        assert_eq!(budget.remaining(Priority::Interactive), Some(0));
        // Unlimited class never refuses but still counts.
        for _ in 0..100 {
            assert!(budget.try_charge(Priority::Batch));
        }
        assert_eq!(budget.spent(Priority::Batch), 100);
        assert_eq!(budget.remaining(Priority::Batch), None);
        // Classes are independent pools.
        assert!(budget.try_charge(Priority::Background));
        assert!(!budget.try_charge(Priority::Background));
    }

    #[test]
    fn budget_is_exact_under_contention() {
        let budget = std::sync::Arc::new(RetryBudget::new([0, 1000, 0]));
        let granted: u64 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let budget = std::sync::Arc::clone(&budget);
                    s.spawn(move || {
                        (0..1000)
                            .filter(|_| budget.try_charge(Priority::Batch))
                            .count() as u64
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(granted, 1000);
        assert_eq!(budget.spent(Priority::Batch), 1000);
    }
}
