//! Service classes: [`Priority`].

/// The service class of one submission, in strictly decreasing order of
/// urgency. A scheduler honouring these classes always serves the most
/// urgent non-empty class first ([`MultiLevelQueue::pop`]); within a
/// class, submissions stay FIFO.
///
/// [`MultiLevelQueue::pop`]: crate::MultiLevelQueue::pop
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive foreground traffic — a mobile client waiting on
    /// the answer. Always served before anything else.
    Interactive,
    /// Ordinary request traffic: served when no interactive work is
    /// queued. The default class.
    #[default]
    Batch,
    /// Best-effort work (prefetching, analytics): only served on an
    /// otherwise idle queue.
    Background,
}

impl Priority {
    /// Number of service classes.
    pub const COUNT: usize = 3;

    /// All classes, most urgent first.
    pub const ALL: [Priority; Priority::COUNT] =
        [Priority::Interactive, Priority::Batch, Priority::Background];

    /// The class's index (0 = most urgent), usable into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_ordered_most_urgent_first() {
        assert!(Priority::Interactive < Priority::Batch);
        assert!(Priority::Batch < Priority::Background);
        assert_eq!(Priority::ALL.len(), Priority::COUNT);
        for (i, class) in Priority::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
        }
        assert_eq!(Priority::default(), Priority::Batch);
        assert_eq!(Priority::Background.name(), "background");
    }
}
