//! # tnn-qos
//!
//! Quality-of-service primitives for the TNN serving layer — the pieces
//! that turn a worker pool into a traffic-shaping front end:
//!
//! * [`Priority`] — three strict service classes (`Interactive` >
//!   `Batch` > `Background`);
//! * [`Deadline`] — an optional per-request expiry instant, built from a
//!   TTL ([`Deadline::within`]) or an absolute [`std::time::Instant`];
//! * [`Qos`] — the per-submission bundle of both;
//! * [`RetryPolicy`] — capped exponential backoff with deterministic
//!   seeded jitter, and [`RetryBudget`] — per-class pools of retry
//!   attempts so one class's failing traffic cannot starve the others;
//! * [`MultiLevelQueue`] — a strict-priority submission queue with
//!   per-class bounds and deadline-aware victim selection
//!   ([`ShedDiscipline::ExpiredFirst`] evicts already-dead work before
//!   sacrificing anything still viable);
//! * [`ResultCache`] — a sharded, lock-striped, O(1) LRU result cache
//!   with optional entry TTL and hit/miss/expired accounting;
//! * [`FlightTable`] — singleflight coalescing of concurrent identical
//!   cache misses: one leader computes, followers share its handle.
//!
//! The crate is deliberately **dependency-free and generic**: the queue
//! holds any item type and the cache any `Hash + Eq` key, so the
//! primitives sit below `tnn-serve` (which instantiates them with its
//! job type and `tnn_core::QueryKey`) without touching the query types.
//! The design follows the admission-policy lesson of the multi-access
//! serving literature: once a shared channel saturates, *what you
//! refuse* — not raw throughput — dominates tail behaviour.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod deadline;
mod flight;
mod priority;
mod queue;
mod retry;
mod spec;

pub use cache::{CacheConfig, CacheStats, Lookup, ResultCache};
pub use deadline::Deadline;
pub use flight::{FlightOutcome, FlightTable};
pub use priority::Priority;
pub use queue::{MultiLevelQueue, ShedDiscipline};
pub use retry::{RetryBudget, RetryPolicy};
pub use spec::Qos;
