//! The strict-priority submission queue: [`MultiLevelQueue`] and the
//! shed-victim policy [`ShedDiscipline`].

use crate::Priority;
use std::collections::VecDeque;

/// Which queued item a `Shed`-style backpressure policy sacrifices when a
/// class is at capacity and a new submission of that class arrives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShedDiscipline {
    /// Evict the class's oldest **expired** item; only when every queued
    /// item is still viable fall back to the oldest. Dead work — items
    /// whose deadline has already passed — is pure queue pollution, so
    /// this discipline never sacrifices an answerable request while an
    /// unanswerable one is holding a slot. The default.
    #[default]
    ExpiredFirst,
    /// Always evict the class's oldest item, expired or not — the
    /// pre-deadline behaviour, kept for the ablation in
    /// `tnn-sim --bin serve_load` showing why expiry-awareness lowers the
    /// deadline-miss rate under saturation.
    OldestFirst,
}

/// A strict-priority multi-level FIFO queue: one bounded lane per
/// [`Priority`] class.
///
/// * [`MultiLevelQueue::pop`] always drains the most urgent non-empty
///   class; within a class, order is FIFO.
/// * Capacity is **per class** (enforced by the caller via
///   [`MultiLevelQueue::len_of`] — the queue itself never refuses), so a
///   background flood cannot crowd out interactive admissions.
/// * [`MultiLevelQueue::shed_victim`] picks the item a `Shed` policy
///   sacrifices, honouring a [`ShedDiscipline`].
///
/// ```
/// use tnn_qos::{MultiLevelQueue, Priority};
///
/// let mut q = MultiLevelQueue::new();
/// q.push_back(Priority::Background, "prefetch");
/// q.push_back(Priority::Interactive, "user taps map");
/// assert_eq!(q.pop(), Some((Priority::Interactive, "user taps map")));
/// assert_eq!(q.pop(), Some((Priority::Background, "prefetch")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct MultiLevelQueue<T> {
    levels: [VecDeque<T>; Priority::COUNT],
}

impl<T> MultiLevelQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        MultiLevelQueue {
            levels: std::array::from_fn(|_| VecDeque::new()),
        }
    }

    /// Total queued items over all classes.
    pub fn len(&self) -> usize {
        self.levels.iter().map(VecDeque::len).sum()
    }

    /// `true` when no class holds any item.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(VecDeque::is_empty)
    }

    /// Queued items in one class.
    pub fn len_of(&self, class: Priority) -> usize {
        self.levels[class.index()].len()
    }

    /// Appends `item` to the back of its class lane.
    pub fn push_back(&mut self, class: Priority, item: T) {
        self.levels[class.index()].push_back(item);
    }

    /// Removes the front item of the most urgent non-empty class.
    pub fn pop(&mut self) -> Option<(Priority, T)> {
        for class in Priority::ALL {
            if let Some(item) = self.levels[class.index()].pop_front() {
                return Some((class, item));
            }
        }
        None
    }

    /// Picks and removes the item a `Shed` policy sacrifices so a new
    /// submission of `class` can be admitted. The victim always comes
    /// from the overflowing class itself (capacities are per class —
    /// evicting elsewhere would not make room). Returns the victim and
    /// whether it was expired under `is_expired`; `None` only when the
    /// class lane is empty.
    ///
    /// Under [`ShedDiscipline::ExpiredFirst`] the oldest *expired* item
    /// is taken, falling back to the oldest overall; under
    /// [`ShedDiscipline::OldestFirst`] always the oldest. Either way the
    /// expiry of the actual victim is reported, so callers can resolve
    /// dead victims as deadline misses rather than overload.
    pub fn shed_victim(
        &mut self,
        class: Priority,
        discipline: ShedDiscipline,
        mut is_expired: impl FnMut(&T) -> bool,
    ) -> Option<(T, bool)> {
        let lane = &mut self.levels[class.index()];
        if discipline == ShedDiscipline::ExpiredFirst {
            if let Some(i) = lane.iter().position(&mut is_expired) {
                return lane.remove(i).map(|item| (item, true));
            }
        }
        let oldest = lane.pop_front()?;
        let expired = is_expired(&oldest);
        Some((oldest, expired))
    }
}

impl<T> Default for MultiLevelQueue<T> {
    fn default() -> Self {
        MultiLevelQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_is_strict_priority_and_fifo_within_a_class() {
        let mut q = MultiLevelQueue::new();
        q.push_back(Priority::Batch, 10);
        q.push_back(Priority::Background, 20);
        q.push_back(Priority::Batch, 11);
        q.push_back(Priority::Interactive, 0);
        q.push_back(Priority::Interactive, 1);
        assert_eq!(q.len(), 5);
        assert_eq!(q.len_of(Priority::Batch), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (Priority::Interactive, 0),
                (Priority::Interactive, 1),
                (Priority::Batch, 10),
                (Priority::Batch, 11),
                (Priority::Background, 20),
            ]
        );
        assert!(q.is_empty());
    }

    /// The Shed redesign's core guarantee: an unexpired item survives a
    /// storm of expired ones — every eviction takes dead work first.
    #[test]
    fn expired_first_shedding_spares_viable_work() {
        let mut q = MultiLevelQueue::new();
        // Oldest item is viable; a storm of already-expired items lands
        // behind it (expiry encoded in the item for the test).
        q.push_back(Priority::Batch, ("survivor", false));
        for _ in 0..16 {
            q.push_back(Priority::Batch, ("dead", true));
        }
        for _ in 0..16 {
            let (victim, was_expired) = q
                .shed_victim(Priority::Batch, ShedDiscipline::ExpiredFirst, |it| it.1)
                .unwrap();
            assert_eq!(victim, ("dead", true));
            assert!(was_expired);
        }
        // Only the viable item remains; shedding now falls back to it.
        assert_eq!(q.len(), 1);
        let (victim, was_expired) = q
            .shed_victim(Priority::Batch, ShedDiscipline::ExpiredFirst, |it| it.1)
            .unwrap();
        assert_eq!(victim, ("survivor", false));
        assert!(!was_expired);
    }

    /// The pre-deadline discipline for contrast: oldest-first sacrifices
    /// the viable front item even while dead work sits behind it.
    #[test]
    fn oldest_first_shedding_takes_the_front_regardless() {
        let mut q = MultiLevelQueue::new();
        q.push_back(Priority::Batch, ("survivor", false));
        q.push_back(Priority::Batch, ("dead", true));
        let (victim, was_expired) = q
            .shed_victim(Priority::Batch, ShedDiscipline::OldestFirst, |it| it.1)
            .unwrap();
        assert_eq!(victim, ("survivor", false));
        assert!(!was_expired);
        // An expired oldest victim is still reported as expired, so the
        // caller can resolve it as a deadline miss, not overload.
        let (_, was_expired) = q
            .shed_victim(Priority::Batch, ShedDiscipline::OldestFirst, |it| it.1)
            .unwrap();
        assert!(was_expired);
    }

    #[test]
    fn shedding_is_class_local() {
        let mut q = MultiLevelQueue::new();
        q.push_back(Priority::Interactive, ("urgent", true));
        assert!(q
            .shed_victim(
                Priority::Batch,
                ShedDiscipline::ExpiredFirst,
                |it: &(&str, bool)| it.1
            )
            .is_none());
        assert_eq!(q.len_of(Priority::Interactive), 1);
    }
}
