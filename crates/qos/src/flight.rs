//! Singleflight request coalescing: [`FlightTable`] and
//! [`FlightOutcome`].
//!
//! When many clients miss the cache on the *same* key at the same time,
//! running the computation once and sharing the answer beats running it
//! N times — the classic "thundering herd" fix. The table tracks one
//! in-flight computation per key: the first arrival **leads** (it runs
//! the work), later arrivals **join** (they receive the leader's shared
//! completion handle and wait on it). Like the other primitives in this
//! crate the table is generic: it stores any `Hash + Eq + Clone` key and
//! any `Clone` handle type, so `tnn-serve` can instantiate it with its
//! query key and ticket cell without this crate learning either type.
//!
//! A flight is only as healthy as its leader. The table never assumes
//! leaders finish: [`FlightTable::join_or_lead`] takes a liveness
//! predicate, and an entry whose handle tests dead (its leader already
//! resolved — successfully or by crashing) is *replaced*, not joined, so
//! a wedged or abandoned flight can never absorb followers forever.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Mutex;

/// Entry count above which [`FlightTable::join_or_lead`] sweeps dead
/// entries before inserting. Leaders normally retire their own entry
/// ([`FlightTable::complete`]), so the sweep only matters when leaders
/// die without cleanup (a crashed worker, a shed victim whose caller
/// forgot) — the bound keeps the table's memory proportional to the
/// number of genuinely in-flight keys, not to the history of dead ones.
const SWEEP_WATERMARK: usize = 1024;

/// What [`FlightTable::join_or_lead`] decided for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome<T> {
    /// No live flight existed for the key: the caller is now the leader
    /// and must run the computation, then retire the entry with
    /// [`FlightTable::complete`].
    Led,
    /// A live flight already exists: the carried value is a clone of the
    /// leader's handle — wait on it instead of recomputing.
    Joined(T),
}

/// A map of in-flight computations, one per key, behind a single mutex.
///
/// The critical section is a hash probe plus (rarely) a bounded sweep —
/// callers do the actual work *outside* the lock. See the module docs
/// above for the leader/follower protocol.
///
/// ```
/// use tnn_qos::{FlightOutcome, FlightTable};
///
/// let flights: FlightTable<&'static str, u32> = FlightTable::new();
/// // First arrival leads.
/// assert_eq!(flights.join_or_lead(&"q", 7, |_| true), FlightOutcome::Led);
/// // Identical arrivals join the live flight and get the leader's handle.
/// assert_eq!(
///     flights.join_or_lead(&"q", 8, |_| true),
///     FlightOutcome::Joined(7)
/// );
/// // Once the leader completes, the next arrival leads a fresh flight.
/// flights.complete(&"q");
/// assert_eq!(flights.join_or_lead(&"q", 9, |_| true), FlightOutcome::Led);
/// ```
#[derive(Debug, Default)]
pub struct FlightTable<K, T> {
    flights: Mutex<HashMap<K, T>>,
}

impl<K: Eq + Hash + Clone, T: Clone> FlightTable<K, T> {
    /// An empty table.
    pub fn new() -> Self {
        FlightTable {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the live flight for `key`, or installs `lead` as the new
    /// leader's handle.
    ///
    /// `live` judges an existing entry: `true` means its leader is still
    /// working (join it), `false` means the leader already resolved or
    /// died (replace it — the stale handle would never deliver a fresh
    /// answer). The predicate runs under the table lock, so it must be
    /// cheap and must not touch the table again.
    pub fn join_or_lead(&self, key: &K, lead: T, live: impl Fn(&T) -> bool) -> FlightOutcome<T> {
        let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
        if flights.len() > SWEEP_WATERMARK {
            flights.retain(|_, handle| live(handle));
        }
        match flights.get(key) {
            Some(handle) if live(handle) => FlightOutcome::Joined(handle.clone()),
            _ => {
                flights.insert(key.clone(), lead);
                FlightOutcome::Led
            }
        }
    }

    /// Retires the flight for `key` (leader's post-completion cleanup).
    /// A no-op when no entry exists — completion may race a sweep.
    pub fn complete(&self, key: &K) {
        let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
        flights.remove(key);
    }

    /// Number of tracked flights (live **and** dead-but-unswept).
    pub fn len(&self) -> usize {
        self.flights.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when no flight is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn first_arrival_leads_and_identical_arrivals_join() {
        let flights: FlightTable<u32, u64> = FlightTable::new();
        assert!(matches!(
            flights.join_or_lead(&1, 100, |_| true),
            FlightOutcome::Led
        ));
        assert_eq!(
            flights.join_or_lead(&1, 200, |_| true),
            FlightOutcome::Joined(100)
        );
        // A different key is its own flight.
        assert!(matches!(
            flights.join_or_lead(&2, 300, |_| true),
            FlightOutcome::Led
        ));
        assert_eq!(flights.len(), 2);
    }

    #[test]
    fn complete_retires_the_flight() {
        let flights: FlightTable<u32, u64> = FlightTable::new();
        assert!(matches!(
            flights.join_or_lead(&1, 100, |_| true),
            FlightOutcome::Led
        ));
        flights.complete(&1);
        assert!(flights.is_empty());
        // The next arrival leads anew rather than joining a ghost.
        assert!(matches!(
            flights.join_or_lead(&1, 101, |_| true),
            FlightOutcome::Led
        ));
        // Completing a missing key is harmless.
        flights.complete(&99);
    }

    #[test]
    fn dead_entries_are_replaced_not_joined() {
        let flights: FlightTable<u32, Arc<AtomicBool>> = FlightTable::new();
        let first = Arc::new(AtomicBool::new(true));
        let live = |h: &Arc<AtomicBool>| h.load(Ordering::SeqCst);
        assert!(matches!(
            flights.join_or_lead(&1, Arc::clone(&first), live),
            FlightOutcome::Led
        ));
        // Leader dies without calling `complete` (e.g. worker crash).
        first.store(false, Ordering::SeqCst);
        let second = Arc::new(AtomicBool::new(true));
        // The dead entry must not absorb the new arrival: it leads.
        assert!(matches!(
            flights.join_or_lead(&1, Arc::clone(&second), live),
            FlightOutcome::Led
        ));
        // And the replacement is what later arrivals join.
        match flights.join_or_lead(&1, Arc::new(AtomicBool::new(true)), live) {
            FlightOutcome::Joined(handle) => assert!(Arc::ptr_eq(&handle, &second)),
            FlightOutcome::Led => panic!("expected to join the replacement leader"),
        }
    }

    #[test]
    fn sweep_evicts_dead_entries_past_the_watermark() {
        let flights: FlightTable<usize, bool> = FlightTable::new();
        // `true` = live, `false` = dead; fill past the watermark with
        // dead entries whose leaders never completed.
        for i in 0..SWEEP_WATERMARK + 1 {
            assert!(matches!(
                flights.join_or_lead(&i, false, |h| *h),
                FlightOutcome::Led
            ));
        }
        assert_eq!(flights.len(), SWEEP_WATERMARK + 1);
        // The next insert triggers the sweep: every dead entry goes,
        // leaving only the newcomer.
        assert!(matches!(
            flights.join_or_lead(&usize::MAX, true, |h| *h),
            FlightOutcome::Led
        ));
        assert_eq!(flights.len(), 1);
    }
}
