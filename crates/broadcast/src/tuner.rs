//! Client-side tuning accounting: the paper's two cost metrics.

use serde::{Deserialize, Serialize};

/// Accounting for one mobile client on one channel.
///
/// * **Tune-in time** ([`Tuner::pages`]): pages actually downloaded — the
///   energy metric. Pruned pages cost nothing (the client dozes).
/// * **Access time**: derived by the caller from [`Tuner::finish_time`]
///   relative to the query issue time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuner {
    /// Number of pages downloaded so far.
    pub pages: u64,
    /// Completion slot of the last downloaded page (arrival + 1), if any.
    pub finish_time: Option<u64>,
}

impl Tuner {
    /// A fresh tuner with nothing downloaded.
    pub fn new() -> Self {
        Tuner::default()
    }

    /// Records the download of one page arriving at slot `arrival`
    /// (occupying `[arrival, arrival + 1)`).
    #[inline]
    pub fn download(&mut self, arrival: u64) {
        self.pages += 1;
        let done = arrival + 1;
        self.finish_time = Some(self.finish_time.map_or(done, |f| f.max(done)));
    }

    /// Records the download of `pages` pages finishing at `finish`
    /// (used for multi-page object retrievals).
    #[inline]
    pub fn download_span(&mut self, pages: u64, finish: u64) {
        if pages == 0 {
            return;
        }
        self.pages += pages;
        self.finish_time = Some(self.finish_time.map_or(finish, |f| f.max(finish)));
    }

    /// Merges another tuner's accounting into this one.
    pub fn merge(&mut self, other: &Tuner) {
        self.pages += other.pages;
        self.finish_time = match (self.finish_time, other.finish_time) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn download_counts_and_tracks_finish() {
        let mut t = Tuner::new();
        assert_eq!(t.pages, 0);
        assert_eq!(t.finish_time, None);
        t.download(10);
        t.download(5); // out-of-order arrival must not move finish backwards
        assert_eq!(t.pages, 2);
        assert_eq!(t.finish_time, Some(11));
    }

    #[test]
    fn download_span_zero_pages_is_noop() {
        let mut t = Tuner::new();
        t.download_span(0, 99);
        assert_eq!(t, Tuner::new());
        t.download_span(16, 40);
        assert_eq!(t.pages, 16);
        assert_eq!(t.finish_time, Some(40));
    }

    #[test]
    fn merge_combines_counts_and_max_finish() {
        let mut a = Tuner::new();
        a.download(3);
        let mut b = Tuner::new();
        b.download(9);
        b.download(1);
        a.merge(&b);
        assert_eq!(a.pages, 3);
        assert_eq!(a.finish_time, Some(10));
        let mut empty = Tuner::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }
}
