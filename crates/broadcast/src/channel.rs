//! A broadcast channel: one dataset's program plus a phase offset onto the
//! global clock.

use crate::{BroadcastLayout, BroadcastParams};
use std::sync::Arc;
use tnn_rtree::{Node, NodeId, ObjectId, RTree};

/// What a channel carries during one page slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageContent {
    /// An index page holding one R-tree node.
    IndexNode(NodeId),
    /// A data page: the `part`-th page of `object`'s content.
    Data {
        /// Object whose content the page carries.
        object: ObjectId,
        /// Zero-based page number within that object's content.
        part: u64,
    },
    /// Tail padding of the last data fraction (when `m` does not divide
    /// the data-segment length).
    Padding,
}

/// One wireless broadcast channel: a cyclic `(1, m)` program over a single
/// dataset, shifted by a phase so that concurrent channels are not
/// artificially aligned (the paper draws "two random numbers … to simulate
/// the waiting time to get the two roots").
#[derive(Debug, Clone)]
pub struct Channel {
    tree: Arc<RTree>,
    layout: Arc<BroadcastLayout>,
    params: BroadcastParams,
    phase: u64,
    /// Leaf-rank → object id: which object occupies data block `rank`.
    object_by_rank: Arc<Vec<ObjectId>>,
    /// Cached content identity (tree data + program parameters), computed
    /// once at construction — see [`Channel::fingerprint`].
    fingerprint: u64,
}

/// FNV-1a over a word sequence — the workspace's deterministic
/// fingerprint fold (the std hasher is unspecified across releases,
/// while these values identify environments across processes).
pub(crate) fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for word in words {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

impl Channel {
    /// Creates a channel broadcasting `tree` under `params`, with the
    /// program shifted by `phase` slots (the page on air at global time
    /// `t` is the cycle position `(t + phase) mod cycle_len`).
    pub fn new(tree: Arc<RTree>, params: BroadcastParams, phase: u64) -> Self {
        let layout = Arc::new(BroadcastLayout::new(&tree, &params));
        let object_by_rank = Arc::new(tree.objects_in_leaf_order().map(|(_, o)| o).collect());
        let fingerprint = fnv1a([
            tree.content_fingerprint(),
            params.page_capacity as u64,
            u64::from(params.interleave_m),
            params.data_content_bytes as u64,
        ]);
        Channel {
            tree,
            layout,
            params,
            phase,
            object_by_rank,
            fingerprint,
        }
    }

    /// A copy of this channel with a different phase — O(1), sharing the
    /// tree and layout. Experiment harnesses use this to re-randomize the
    /// root waiting times per query without rebuilding the program.
    pub fn with_phase(&self, phase: u64) -> Self {
        Channel {
            tree: Arc::clone(&self.tree),
            layout: Arc::clone(&self.layout),
            params: self.params,
            phase,
            object_by_rank: Arc::clone(&self.object_by_rank),
            fingerprint: self.fingerprint,
        }
    }

    /// A deterministic 64-bit identity of the channel's **content**: the
    /// broadcast tree's data/shape fingerprint folded with the program
    /// parameters. The phase is deliberately excluded (it is schedule
    /// alignment, not content, and is folded separately at the
    /// environment level); see
    /// [`MultiChannelEnv::fingerprint`](crate::MultiChannelEnv::fingerprint).
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The R-tree being broadcast.
    #[inline]
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// The shared handle to the R-tree.
    #[inline]
    pub fn tree_arc(&self) -> &Arc<RTree> {
        &self.tree
    }

    /// The page-level layout.
    #[inline]
    pub fn layout(&self) -> &BroadcastLayout {
        &self.layout
    }

    /// The program parameters.
    #[inline]
    pub fn params(&self) -> &BroadcastParams {
        &self.params
    }

    /// The channel's phase offset.
    #[inline]
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// Resolves a node id to its node (the client "downloading" the page).
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        self.tree.node(id)
    }

    /// Next time `t ≥ now` at which `node`'s index page is on air.
    #[inline]
    pub fn next_node_arrival(&self, node: NodeId, now: u64) -> u64 {
        self.layout.next_node_arrival(node, now, self.phase)
    }

    /// Next time `t ≥ now` at which the root index page is on air — the
    /// client's initial probe target after issuing a query.
    #[inline]
    pub fn next_root_arrival(&self, now: u64) -> u64 {
        self.next_node_arrival(NodeId::ROOT, now)
    }

    /// Simulates downloading all data pages of `object` starting at `now`:
    /// returns `(finish_time, pages_downloaded)`. The pages of one object
    /// are consecutive in the data segment but may straddle a fraction
    /// boundary, in which case the client dozes through the interposed
    /// index copy.
    pub fn retrieve_object(&self, object: ObjectId, now: u64) -> (u64, u64) {
        self.view().retrieve_object(object, now)
    }

    /// A borrowed view of this channel under its own phase — the form the
    /// query tasks consume (see [`ChannelView`]).
    #[inline]
    pub fn view(&self) -> ChannelView<'_> {
        ChannelView {
            channel: self,
            phase: self.phase,
        }
    }

    /// A borrowed view of this channel with `phase` substituted for the
    /// channel's own — the zero-clone alternative to
    /// [`Channel::with_phase`] used by
    /// [`PhaseOverlay`](crate::PhaseOverlay) to re-randomize root waiting
    /// times per query without touching the shared channel.
    #[inline]
    pub fn view_with_phase(&self, phase: u64) -> ChannelView<'_> {
        ChannelView {
            channel: self,
            phase,
        }
    }

    /// The content on air at global time `t`. This is the *semantic* view
    /// of the virtual schedule, used by tests to cross-check the arrival
    /// arithmetic and by the trace example; query processing never needs
    /// it.
    pub fn page_at(&self, t: u64) -> PageContent {
        let pos = (t + self.phase) % self.layout.cycle_len();
        let in_bucket = pos % self.layout.bucket_len();
        let bucket = pos / self.layout.bucket_len();
        if in_bucket < self.layout.index_len() {
            return PageContent::IndexNode(NodeId(in_bucket as u32));
        }
        let j = bucket * self.layout.fraction_len() + (in_bucket - self.layout.index_len());
        if j >= self.layout.data_len() {
            return PageContent::Padding;
        }
        let rank = (j / self.layout.pages_per_object()) as usize;
        PageContent::Data {
            object: self.object_by_rank[rank],
            part: j % self.layout.pages_per_object(),
        }
    }
}

/// A borrowed, `Copy` view of a [`Channel`] under an (optionally
/// overridden) phase — what the broadcast query tasks actually consume.
///
/// The phase is the *only* per-query degree of freedom of a channel (the
/// tree, layout, and parameters are immutable once built), so threading a
/// `ChannelView` through a task instead of a cloned `Channel` makes
/// per-query phase randomization free: no `Vec` of channels, no `Arc`
/// reference-count traffic, just a reference and a `u64`. Obtain one via
/// [`Channel::view`], [`Channel::view_with_phase`], or a
/// [`PhaseOverlay`](crate::PhaseOverlay).
///
/// All arrival arithmetic is identical to the underlying channel's with
/// the view's phase substituted, so a view with the channel's own phase
/// behaves exactly like the channel itself.
#[derive(Debug, Clone, Copy)]
pub struct ChannelView<'a> {
    channel: &'a Channel,
    phase: u64,
}

impl<'a> From<&'a Channel> for ChannelView<'a> {
    fn from(channel: &'a Channel) -> Self {
        channel.view()
    }
}

impl<'a> ChannelView<'a> {
    /// The underlying channel.
    #[inline]
    pub fn channel(&self) -> &'a Channel {
        self.channel
    }

    /// The phase this view applies (possibly overriding the channel's).
    #[inline]
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// The R-tree being broadcast.
    #[inline]
    pub fn tree(&self) -> &'a RTree {
        &self.channel.tree
    }

    /// The page-level layout.
    #[inline]
    pub fn layout(&self) -> &'a BroadcastLayout {
        &self.channel.layout
    }

    /// The program parameters.
    #[inline]
    pub fn params(&self) -> &'a BroadcastParams {
        &self.channel.params
    }

    /// Resolves a node id to its node (the client "downloading" the page).
    #[inline]
    pub fn node(&self, id: NodeId) -> &'a Node {
        self.channel.tree.node(id)
    }

    /// Next time `t ≥ now` at which `node`'s index page is on air, under
    /// this view's phase.
    #[inline]
    pub fn next_node_arrival(&self, node: NodeId, now: u64) -> u64 {
        self.channel.layout.next_node_arrival(node, now, self.phase)
    }

    /// Next time `t ≥ now` at which the root index page is on air.
    #[inline]
    pub fn next_root_arrival(&self, now: u64) -> u64 {
        self.next_node_arrival(NodeId::ROOT, now)
    }

    /// Simulates downloading all data pages of `object` starting at `now`
    /// under this view's phase: returns `(finish_time, pages_downloaded)`.
    /// See [`Channel::retrieve_object`].
    pub fn retrieve_object(&self, object: ObjectId, now: u64) -> (u64, u64) {
        let layout = &self.channel.layout;
        let pages = layout.pages_per_object();
        if pages == 0 {
            return (now, 0);
        }
        let slot = layout.data_slot(object);
        let mut t = now;
        for k in 0..pages {
            let arrival = layout.next_data_arrival(slot + k, t, self.phase);
            t = arrival + 1; // the page occupies one slot
        }
        (t, pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn_geom::Point;
    use tnn_rtree::PackingAlgorithm;

    fn channel(n: usize, phase: u64) -> Channel {
        let params = BroadcastParams::new(64);
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i * 7 % 113) as f64, (i * 13 % 127) as f64))
            .collect();
        let tree = RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        Channel::new(Arc::new(tree), params, phase)
    }

    #[test]
    fn page_at_agrees_with_node_arrival_arithmetic() {
        let ch = channel(60, 123);
        for node in [0u32, 1, 7, ch.tree().num_nodes() as u32 - 1] {
            let id = NodeId(node);
            for now in [0u64, 5, 100, 1000, 12345] {
                let arr = ch.next_node_arrival(id, now);
                assert!(arr >= now);
                assert_eq!(
                    ch.page_at(arr),
                    PageContent::IndexNode(id),
                    "node {id} at {arr}"
                );
                // No earlier slot in [now, arr) carries this node.
                for t in now..arr {
                    assert_ne!(ch.page_at(t), PageContent::IndexNode(id));
                }
            }
        }
    }

    #[test]
    fn page_at_agrees_with_data_arrival_arithmetic() {
        let ch = channel(10, 7);
        let l = ch.layout();
        for j in [0u64, 1, l.data_len() / 3, l.data_len() - 1] {
            let arr = l.next_data_arrival(j, 50, ch.phase());
            match ch.page_at(arr) {
                PageContent::Data { object, part } => {
                    let rank = (j / l.pages_per_object()) as usize;
                    assert_eq!(l.data_slot(object), rank as u64 * l.pages_per_object());
                    assert_eq!(part, j % l.pages_per_object());
                }
                other => panic!("expected data page at {arr}, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_cycle_slot_is_classified() {
        let ch = channel(9, 0);
        let l = ch.layout();
        let mut index_pages = 0u64;
        let mut data_pages = 0u64;
        let mut padding = 0u64;
        for t in 0..l.cycle_len() {
            match ch.page_at(t) {
                PageContent::IndexNode(_) => index_pages += 1,
                PageContent::Data { .. } => data_pages += 1,
                PageContent::Padding => padding += 1,
            }
        }
        assert_eq!(index_pages, l.index_len() * l.interleave_m() as u64);
        assert_eq!(data_pages, l.data_len());
        assert_eq!(
            padding,
            l.fraction_len() * l.interleave_m() as u64 - l.data_len()
        );
    }

    #[test]
    fn retrieve_object_downloads_all_pages() {
        let ch = channel(15, 3);
        let (_, object) = ch.tree().objects_in_leaf_order().next().unwrap();
        let (finish, pages) = ch.retrieve_object(object, 0);
        assert_eq!(pages, 16);
        assert!(finish >= 16);
        // Retrieval starting right at the object's first page is contiguous
        // when the object does not straddle a fraction boundary.
        let first = ch
            .layout()
            .next_data_arrival(ch.layout().data_slot(object), 0, ch.phase());
        let (finish2, _) = ch.retrieve_object(object, first);
        let straddles = (ch.layout().data_slot(object) / ch.layout().fraction_len())
            != ((ch.layout().data_slot(object) + 15) / ch.layout().fraction_len());
        if !straddles {
            assert_eq!(finish2, first + 16);
        } else {
            assert!(finish2 > first + 16);
        }
    }

    #[test]
    fn root_arrival_within_one_bucket() {
        let ch = channel(100, 999);
        for now in [0u64, 17, 500, 100_000] {
            let arr = ch.next_root_arrival(now);
            assert!(arr - now < ch.layout().bucket_len());
            assert_eq!(ch.page_at(arr), PageContent::IndexNode(NodeId::ROOT));
        }
    }

    #[test]
    fn view_with_phase_matches_rephased_channel() {
        let base = channel(40, 3);
        let rephased = base.with_phase(777);
        let view = base.view_with_phase(777);
        let (_, object) = base.tree().objects_in_leaf_order().next().unwrap();
        for now in [0u64, 9, 500, 44_444] {
            for node in [NodeId::ROOT, NodeId(1)] {
                assert_eq!(
                    view.next_node_arrival(node, now),
                    rephased.next_node_arrival(node, now)
                );
            }
            assert_eq!(
                view.retrieve_object(object, now),
                rephased.retrieve_object(object, now)
            );
        }
        // A view without an override behaves like the channel itself.
        assert_eq!(base.view().phase(), base.phase());
        assert_eq!(
            base.view().next_root_arrival(17),
            base.next_root_arrival(17)
        );
    }

    #[test]
    fn phase_changes_alignment_but_not_structure() {
        let a = channel(40, 0);
        let b = channel(40, 1000);
        assert_eq!(a.layout().cycle_len(), b.layout().cycle_len());
        // Same page sequence, shifted by 1000 slots.
        for t in 0..200u64 {
            assert_eq!(a.page_at(t + 1000), b.page_at(t));
        }
    }
}
