//! The `(1, m)` interleaved layout: pure arrival-time arithmetic over a
//! virtual cyclic page schedule.

use crate::BroadcastParams;
use serde::{Deserialize, Serialize};
use tnn_rtree::{NodeId, ObjectId, RTree};

/// The page-level layout of one dataset's broadcast program.
///
/// The cycle consists of `m` *buckets*, each an index segment (the whole
/// R-tree in preorder, one node per page) followed by one data fraction:
///
/// ```text
///  bucket 0                bucket 1                      bucket m−1
/// ┌───────────┬─────────┐ ┌───────────┬─────────┐      ┌───────────┬─────────┐
/// │ index (I) │ frac 0  │ │ index (I) │ frac 1  │  …   │ index (I) │ frac m−1│
/// └───────────┴─────────┘ └───────────┴─────────┘      └───────────┴─────────┘
/// ```
///
/// All positions are *cycle-relative*; [`crate::Channel`] adds the
/// per-channel phase to map them onto global time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BroadcastLayout {
    /// Index-segment length in pages (== number of R-tree nodes).
    index_len: u64,
    /// Pages per data object.
    pages_per_object: u64,
    /// Data-segment length in pages.
    data_len: u64,
    /// Fraction length `F = ceil(data_len / m)`.
    fraction_len: u64,
    /// Bucket length `I + F`.
    bucket_len: u64,
    /// Cycle length `m · (I + F)`.
    cycle_len: u64,
    /// Number of fractions `m`.
    m: u32,
    /// Data-segment offset of each object's first page, indexed by
    /// `ObjectId`; objects are laid out in R-tree leaf (preorder) order.
    data_slot: Vec<u64>,
}

impl BroadcastLayout {
    /// Computes the layout for broadcasting `tree` under `params`.
    ///
    /// The tree must have been built with node capacities matching the
    /// page size (see [`BroadcastParams::rtree_params`]); this is asserted
    /// in debug builds.
    pub fn new(tree: &RTree, params: &BroadcastParams) -> Self {
        debug_assert_eq!(
            tree.params(),
            params.rtree_params(),
            "R-tree node capacities must match the broadcast page size"
        );
        let index_len = tree.num_nodes() as u64;
        let pages_per_object = params.pages_per_object();
        let num_objects = tree.num_objects() as u64;
        let data_len = num_objects * pages_per_object;
        let m = params.interleave_m.max(1);
        let fraction_len = data_len.div_ceil(m as u64);
        let bucket_len = index_len + fraction_len;
        let cycle_len = m as u64 * bucket_len;

        // Objects appear in the data segment in leaf preorder; invert the
        // mapping so ObjectId -> slot is O(1).
        let mut data_slot = vec![0u64; tree.num_objects()];
        for (rank, (_, object)) in tree.objects_in_leaf_order().enumerate() {
            data_slot[object.index()] = rank as u64 * pages_per_object;
        }

        BroadcastLayout {
            index_len,
            pages_per_object,
            data_len,
            fraction_len,
            bucket_len,
            cycle_len,
            m,
            data_slot,
        }
    }

    /// Index-segment length in pages.
    #[inline]
    pub fn index_len(&self) -> u64 {
        self.index_len
    }

    /// Data-segment length in pages.
    #[inline]
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// Pages per data object.
    #[inline]
    pub fn pages_per_object(&self) -> u64 {
        self.pages_per_object
    }

    /// Fraction length in pages.
    #[inline]
    pub fn fraction_len(&self) -> u64 {
        self.fraction_len
    }

    /// Bucket length (index + one fraction) in pages: the period at which
    /// every index node recurs.
    #[inline]
    pub fn bucket_len(&self) -> u64 {
        self.bucket_len
    }

    /// Full cycle length in pages: the period at which data pages recur.
    #[inline]
    pub fn cycle_len(&self) -> u64 {
        self.cycle_len
    }

    /// The interleave factor `m`.
    #[inline]
    pub fn interleave_m(&self) -> u32 {
        self.m
    }

    /// First data-segment page of `object`.
    #[inline]
    pub fn data_slot(&self, object: ObjectId) -> u64 {
        self.data_slot[object.index()]
    }

    /// Cycle-relative position of data-segment page `j`: fraction `j / F`
    /// starts after that bucket's index copy.
    #[inline]
    pub fn data_page_position(&self, j: u64) -> u64 {
        debug_assert!(j < self.data_len);
        let f = j / self.fraction_len;
        let r = j % self.fraction_len;
        f * self.bucket_len + self.index_len + r
    }

    /// Next time `t ≥ now` at which the node with preorder id `node` is on
    /// air, given the channel phase (`position_of(t) = (t + phase) mod
    /// cycle`). Nodes recur every bucket.
    #[inline]
    pub fn next_node_arrival(&self, node: NodeId, now: u64, phase: u64) -> u64 {
        // Node offset o is on air whenever (t + phase) ≡ o (mod bucket).
        let o = node.0 as u64 % self.bucket_len;
        let cur = (now + phase) % self.bucket_len;
        now + (o + self.bucket_len - cur) % self.bucket_len
    }

    /// Next time `t ≥ now` at which data-segment page `j` is on air.
    /// Data pages recur every cycle.
    #[inline]
    pub fn next_data_arrival(&self, j: u64, now: u64, phase: u64) -> u64 {
        let pos = self.data_page_position(j);
        let cur = (now + phase) % self.cycle_len;
        now + (pos + self.cycle_len - cur) % self.cycle_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn_geom::Point;
    use tnn_rtree::PackingAlgorithm;

    fn tree(n: usize, page: usize) -> RTree {
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i * 7 % 113) as f64, (i * 13 % 127) as f64))
            .collect();
        RTree::build(
            &pts,
            BroadcastParams::new(page).rtree_params(),
            PackingAlgorithm::Str,
        )
        .unwrap()
    }

    #[test]
    fn lengths_are_consistent() {
        let t = tree(100, 64);
        let p = BroadcastParams::new(64);
        let l = BroadcastLayout::new(&t, &p);
        assert_eq!(l.index_len(), t.num_nodes() as u64);
        assert_eq!(l.data_len(), 100 * 16);
        assert_eq!(l.fraction_len(), (100u64 * 16).div_ceil(4));
        assert_eq!(l.bucket_len(), l.index_len() + l.fraction_len());
        assert_eq!(l.cycle_len(), 4 * l.bucket_len());
    }

    #[test]
    fn data_slots_follow_leaf_order() {
        let t = tree(50, 64);
        let p = BroadcastParams::new(64);
        let l = BroadcastLayout::new(&t, &p);
        let mut slots: Vec<u64> = t
            .objects_in_leaf_order()
            .map(|(_, o)| l.data_slot(o))
            .collect();
        // Leaf-order objects occupy consecutive 16-page blocks.
        for (rank, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, rank as u64 * 16);
        }
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 50);
    }

    #[test]
    fn node_arrival_is_periodic_and_in_future() {
        let t = tree(200, 64);
        let p = BroadcastParams::new(64);
        let l = BroadcastLayout::new(&t, &p);
        let phase = 37;
        for node in [0u32, 1, 5, t.num_nodes() as u32 - 1] {
            let id = NodeId(node);
            let mut prev = l.next_node_arrival(id, 0, phase);
            assert!(prev < l.bucket_len());
            for _ in 0..5 {
                let next = l.next_node_arrival(id, prev + 1, phase);
                assert_eq!(next - prev, l.bucket_len(), "period must be one bucket");
                prev = next;
            }
        }
    }

    #[test]
    fn arrival_at_exact_now_is_now() {
        let t = tree(60, 64);
        let p = BroadcastParams::new(64);
        let l = BroadcastLayout::new(&t, &p);
        let id = NodeId(3);
        let arr = l.next_node_arrival(id, 1000, 0);
        assert_eq!(l.next_node_arrival(id, arr, 0), arr);
        // One slot later we wait a whole bucket.
        assert_eq!(l.next_node_arrival(id, arr + 1, 0), arr + l.bucket_len());
    }

    #[test]
    fn data_arrival_is_cycle_periodic() {
        let t = tree(30, 128);
        let p = BroadcastParams::new(128);
        let l = BroadcastLayout::new(&t, &p);
        for j in [0u64, 1, l.data_len() / 2, l.data_len() - 1] {
            let a0 = l.next_data_arrival(j, 0, 11);
            let a1 = l.next_data_arrival(j, a0 + 1, 11);
            assert_eq!(a1 - a0, l.cycle_len());
        }
    }

    #[test]
    fn data_page_position_places_fractions_after_index() {
        let t = tree(40, 64);
        let p = BroadcastParams::new(64);
        let l = BroadcastLayout::new(&t, &p);
        // First data page sits right after the first index copy.
        assert_eq!(l.data_page_position(0), l.index_len());
        // First page of the second fraction sits after the second index copy.
        let f1 = l.fraction_len();
        assert_eq!(l.data_page_position(f1), l.bucket_len() + l.index_len());
    }

    #[test]
    fn phase_shifts_arrivals() {
        let t = tree(80, 64);
        let p = BroadcastParams::new(64);
        let l = BroadcastLayout::new(&t, &p);
        let id = NodeId(2);
        let base = l.next_node_arrival(id, 0, 0);
        // Shifting the phase by k moves the whole program k slots earlier.
        for k in 1..5u64 {
            let shifted = l.next_node_arrival(id, 0, k);
            assert_eq!((shifted + k) % l.bucket_len(), base % l.bucket_len());
        }
    }

    #[test]
    fn zero_data_layout() {
        let t = tree(20, 64);
        let p = BroadcastParams {
            page_capacity: 64,
            interleave_m: 2,
            data_content_bytes: 0,
        };
        let l = BroadcastLayout::new(&t, &p);
        assert_eq!(l.data_len(), 0);
        assert_eq!(l.fraction_len(), 0);
        assert_eq!(l.bucket_len(), l.index_len());
    }
}
