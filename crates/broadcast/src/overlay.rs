//! Zero-clone per-query phase randomization: [`PhaseOverlay`] and the
//! small-vector storage ([`InlineVec`]) backing it.
//!
//! The paper's experiment methodology draws fresh random phases for every
//! query ("two random numbers are generated to simulate the waiting time
//! to get the two roots"). Re-materializing a [`MultiChannelEnv`] per
//! query — `env.with_phases(&phases)` — allocates a channel vector and
//! touches three `Arc` reference counts per channel, on the hottest path
//! of every batch runner. A `PhaseOverlay` instead *borrows* the shared
//! environment and carries only the substitute phases, handing the query
//! tasks [`ChannelView`]s that fold the phase into the arrival arithmetic
//! directly. Nothing is cloned, and for `k ≤ 4` channels the phases live
//! inline on the stack.

use crate::{Channel, ChannelView, MultiChannelEnv};
use serde::{Deserialize, Serialize};

/// A small vector with inline storage for up to `N` elements, spilling to
/// the heap beyond that — the storage behind k-ary query state
/// (per-channel phases, per-channel ANN modes) whose common case is tiny
/// (`k = 2` for plain TNN) but whose shape must not hardcode 2.
///
/// Invariant: when `len <= N` the elements live in `inline[..len]` and
/// `spill` is empty; once the length exceeds `N` *all* elements live in
/// `spill`. Building one from a slice of at most `N` elements performs no
/// allocation.
///
/// The serde derives keep the ROADMAP's "swap the shims for the real
/// crates" path compiling: types embedding an `InlineVec` (`AnnModes`,
/// `TnnConfig`, `Query`) derive `Serialize`/`Deserialize` themselves, so
/// this type must too. It round-trips through `Vec<T>` (the
/// `into`/`from` container attributes), so the wire format is a plain
/// sequence — independent of the inline capacity `N` and incapable of
/// encoding a value that violates the `len`/`spill` invariant.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(into = "Vec<T>", from = "Vec<T>")]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no allocation).
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [T::default(); N],
            spill: Vec::new(),
        }
    }

    /// Copies `items` in; allocation-free when `items.len() <= N`.
    pub fn from_slice(items: &[T]) -> Self {
        let mut v = InlineVec::new();
        v.extend_from_slice(items);
        v
    }

    /// Appends one element, spilling to the heap at the `N + 1`-th.
    pub fn push(&mut self, item: T) {
        if self.len < N {
            self.inline[self.len] = item;
        } else {
            if self.len == N {
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(item);
        }
        self.len += 1;
    }

    /// Copies a slice onto the end.
    pub fn extend_from_slice(&mut self, items: &[T]) {
        for &item in items {
            self.push(item);
        }
    }

    /// Removes all elements, keeping any heap capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.len <= N {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// `true` while the elements still fit the inline buffer (diagnostic
    /// for allocation-freedom assertions in tests).
    pub fn is_inline(&self) -> bool {
        self.len <= N
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> From<&[T]> for InlineVec<T, N> {
    fn from(items: &[T]) -> Self {
        InlineVec::from_slice(items)
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(items: Vec<T>) -> Self {
        InlineVec::from_slice(&items)
    }
}

impl<T: Copy + Default, const N: usize> From<InlineVec<T, N>> for Vec<T> {
    fn from(v: InlineVec<T, N>) -> Self {
        v.as_slice().to_vec()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

/// Per-channel phases with inline storage for up to four channels — the
/// chained-TNN workloads of the evaluation never exceed that, so building
/// one per query costs no allocation.
pub type PhaseVec = InlineVec<u64, 4>;

/// A borrowed [`MultiChannelEnv`] with (optionally) substituted
/// per-channel phases — the zero-clone way to re-randomize root waiting
/// times per query.
///
/// Query pipelines consume the environment exclusively through
/// [`PhaseOverlay::view`]: an [`identity`](PhaseOverlay::identity)
/// overlay hands out each channel's own phase, while
/// [`new`](PhaseOverlay::new) substitutes fresh ones. Either way no
/// channel is cloned and no allocation happens for `k ≤ 4` channels —
/// compare [`MultiChannelEnv::with_phases`], which materializes a new
/// channel vector per call.
#[derive(Debug, Clone)]
pub struct PhaseOverlay<'a> {
    env: &'a MultiChannelEnv,
    phases: Option<PhaseVec>,
}

impl<'a> PhaseOverlay<'a> {
    /// An overlay that changes nothing: every view carries its channel's
    /// own phase.
    pub fn identity(env: &'a MultiChannelEnv) -> Self {
        PhaseOverlay { env, phases: None }
    }

    /// An overlay substituting `phases[i]` for channel `i`'s phase.
    ///
    /// # Panics
    /// Panics when `phases` does not match the channel count (the same
    /// contract as [`MultiChannelEnv::new`] / `with_phases`).
    pub fn new(env: &'a MultiChannelEnv, phases: &[u64]) -> Self {
        assert_eq!(env.len(), phases.len(), "one phase per channel is required");
        PhaseOverlay {
            env,
            phases: Some(PhaseVec::from_slice(phases)),
        }
    }

    /// The borrowed environment.
    #[inline]
    pub fn env(&self) -> &'a MultiChannelEnv {
        self.env
    }

    /// Number of channels.
    #[inline]
    pub fn len(&self) -> usize {
        self.env.len()
    }

    /// `true` when the environment has no channels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.env.is_empty()
    }

    /// The underlying channel `i` (phase *not* substituted — use
    /// [`PhaseOverlay::view`] for query work).
    #[inline]
    pub fn channel(&self, i: usize) -> &'a Channel {
        self.env.channel(i)
    }

    /// The view of channel `i` under this overlay's phase for it.
    #[inline]
    pub fn view(&self, i: usize) -> ChannelView<'a> {
        let channel = self.env.channel(i);
        match &self.phases {
            Some(phases) => channel.view_with_phase(phases[i]),
            None => channel.view(),
        }
    }

    /// All channel views, in channel order.
    pub fn views(&self) -> impl Iterator<Item = ChannelView<'a>> + '_ {
        (0..self.len()).map(move |i| self.view(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BroadcastParams;
    use std::sync::Arc;
    use tnn_geom::Point;
    use tnn_rtree::{NodeId, PackingAlgorithm, RTree};

    #[test]
    fn inline_vec_spills_and_preserves_order() {
        let mut v: InlineVec<u64, 2> = InlineVec::new();
        assert!(v.is_empty());
        v.push(5);
        v.push(6);
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[5, 6]);
        v.push(7);
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[5, 6, 7]);
        assert_eq!(v[1], 6);
        let w: InlineVec<u64, 2> = InlineVec::from_slice(&[5, 6, 7]);
        assert_eq!(v, w);
        let mut c = w.clone();
        c.clear();
        assert!(c.is_empty());
        c.extend_from_slice(&[1]);
        assert_eq!(c.as_slice(), &[1]);
        let collected: InlineVec<u64, 2> = (0..4).collect();
        assert_eq!(collected.as_slice(), &[0, 1, 2, 3]);
    }

    fn env(phases: &[u64]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = phases
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let pts: Vec<Point> = (0..30 + i * 7)
                    .map(|j| Point::new((j * 3 % 31) as f64, (j * 5 % 37) as f64))
                    .collect();
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        MultiChannelEnv::new(trees, params, phases)
    }

    #[test]
    fn identity_overlay_uses_channel_phases() {
        let e = env(&[3, 99]);
        let ov = PhaseOverlay::identity(&e);
        assert_eq!(ov.len(), 2);
        assert_eq!(ov.view(0).phase(), 3);
        assert_eq!(ov.view(1).phase(), 99);
        assert_eq!(ov.views().count(), 2);
    }

    #[test]
    fn overlay_matches_with_phases_arithmetic() {
        let e = env(&[0, 0, 0]);
        let phases = [17u64, 4_321, 999];
        let ov = PhaseOverlay::new(&e, &phases);
        let cloned = e.with_phases(&phases);
        for i in 0..3 {
            for now in [0u64, 11, 777, 50_000] {
                assert_eq!(
                    ov.view(i).next_root_arrival(now),
                    cloned.channel(i).next_root_arrival(now),
                    "channel {i} at {now}"
                );
                assert_eq!(
                    ov.view(i).next_node_arrival(NodeId(1), now),
                    cloned.channel(i).next_node_arrival(NodeId(1), now)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one phase per channel")]
    fn overlay_checks_phase_count() {
        let e = env(&[0, 0]);
        let _ = PhaseOverlay::new(&e, &[1, 2, 3]);
    }
}
