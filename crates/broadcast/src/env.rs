//! The multi-channel access environment: several broadcast channels
//! observable simultaneously by one client.

use crate::{BroadcastParams, Channel};
use std::sync::Arc;
use tnn_rtree::RTree;

/// A set of co-existing broadcast channels, one dataset each, that a
/// multi-radio mobile client can monitor **simultaneously** — the paper's
/// central premise ("a mobile device has the ability to process queries
/// using the information simultaneously received from multiple channels").
///
/// A TNN query uses two channels (S on channel 0, R on channel 1); the
/// chained-TNN extension uses one channel per dataset. The channel count
/// `k` is a first-class parameter: nothing in the environment is
/// specialized to two channels.
///
/// The channel list is held behind an `Arc`, so **cloning an environment
/// is O(1)** — one atomic increment, no per-channel work. Query engines,
/// worker threads, and (future) async executors can each hold their own
/// handle to one shared environment. Per-query phase randomization goes
/// through [`crate::PhaseOverlay`], which borrows the environment and
/// clones nothing.
#[derive(Debug, Clone)]
pub struct MultiChannelEnv {
    channels: Arc<[Channel]>,
}

impl MultiChannelEnv {
    /// Builds an environment broadcasting each tree on its own channel
    /// with the given phase offsets.
    ///
    /// # Panics
    /// Panics when `trees` and `phases` differ in length.
    pub fn new(trees: Vec<Arc<RTree>>, params: BroadcastParams, phases: &[u64]) -> Self {
        assert_eq!(
            trees.len(),
            phases.len(),
            "one phase per channel is required"
        );
        let channels: Vec<Channel> = trees
            .into_iter()
            .zip(phases)
            .map(|(tree, &phase)| Channel::new(tree, params, phase))
            .collect();
        MultiChannelEnv {
            channels: channels.into(),
        }
    }

    /// The channels, in dataset order.
    #[inline]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Channel `i`.
    #[inline]
    pub fn channel(&self, i: usize) -> &Channel {
        &self.channels[i]
    }

    /// Number of channels.
    #[inline]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// A copy of the environment with different per-channel phases —
    /// O(channels), sharing all trees and layouts but materializing a new
    /// channel list.
    ///
    /// Prefer [`crate::PhaseOverlay`] on hot paths: it borrows this
    /// environment and threads the substitute phases into the query tasks
    /// directly, cloning nothing per query.
    ///
    /// # Panics
    /// Panics when `phases` does not match the channel count.
    pub fn with_phases(&self, phases: &[u64]) -> Self {
        assert_eq!(
            self.channels.len(),
            phases.len(),
            "one phase per channel is required"
        );
        let channels: Vec<Channel> = self
            .channels
            .iter()
            .zip(phases)
            .map(|(c, &p)| c.with_phase(p))
            .collect();
        MultiChannelEnv {
            channels: channels.into(),
        }
    }

    /// `true` when the environment has no channels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn_geom::Point;
    use tnn_rtree::PackingAlgorithm;

    fn tree(n: usize, params: &BroadcastParams) -> Arc<RTree> {
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i * 3 % 31) as f64, (i * 5 % 37) as f64))
            .collect();
        Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
    }

    #[test]
    fn builds_one_channel_per_tree() {
        let params = BroadcastParams::new(64);
        let env =
            MultiChannelEnv::new(vec![tree(20, &params), tree(50, &params)], params, &[3, 99]);
        assert_eq!(env.len(), 2);
        assert!(!env.is_empty());
        assert_eq!(env.channel(0).phase(), 3);
        assert_eq!(env.channel(1).phase(), 99);
        assert_eq!(env.channel(0).tree().num_objects(), 20);
        assert_eq!(env.channel(1).tree().num_objects(), 50);
    }

    #[test]
    #[should_panic(expected = "one phase per channel")]
    fn mismatched_phases_panic() {
        let params = BroadcastParams::new(64);
        MultiChannelEnv::new(vec![tree(10, &params)], params, &[1, 2]);
    }

    #[test]
    fn clone_shares_the_channel_list() {
        let params = BroadcastParams::new(64);
        let env =
            MultiChannelEnv::new(vec![tree(20, &params), tree(50, &params)], params, &[3, 99]);
        let copy = env.clone();
        // O(1) clone: both handles point at the same channel slice.
        assert!(std::ptr::eq(env.channels(), copy.channels()));
        // with_phases produces an independent list (the legacy copying
        // path) without touching the original.
        let rephased = env.with_phases(&[7, 8]);
        assert!(!std::ptr::eq(env.channels(), rephased.channels()));
        assert_eq!(env.channel(0).phase(), 3);
        assert_eq!(rephased.channel(0).phase(), 7);
    }

    #[test]
    fn channels_are_independent_programs() {
        let params = BroadcastParams::new(64);
        let env =
            MultiChannelEnv::new(vec![tree(20, &params), tree(500, &params)], params, &[0, 0]);
        assert_ne!(
            env.channel(0).layout().cycle_len(),
            env.channel(1).layout().cycle_len()
        );
    }
}
