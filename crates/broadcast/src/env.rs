//! The multi-channel access environment: several broadcast channels
//! observable simultaneously by one client.

use crate::channel::fnv1a;
use crate::{BroadcastParams, Channel};
use std::sync::Arc;
use tnn_rtree::RTree;

/// A set of co-existing broadcast channels, one dataset each, that a
/// multi-radio mobile client can monitor **simultaneously** — the paper's
/// central premise ("a mobile device has the ability to process queries
/// using the information simultaneously received from multiple channels").
///
/// A TNN query uses two channels (S on channel 0, R on channel 1); the
/// chained-TNN extension uses one channel per dataset. The channel count
/// `k` is a first-class parameter: nothing in the environment is
/// specialized to two channels.
///
/// The channel list is held behind an `Arc`, so **cloning an environment
/// is O(1)** — one atomic increment, no per-channel work. Query engines,
/// worker threads, and (future) async executors can each hold their own
/// handle to one shared environment. Per-query phase randomization goes
/// through [`crate::PhaseOverlay`], which borrows the environment and
/// clones nothing.
///
/// # Epochs and mutation
///
/// Environments are **versioned snapshots**: every value is immutable,
/// and a data update produces a *new* environment via
/// [`MultiChannelEnv::advance`] / [`MultiChannelEnv::advance_channel`]
/// with the [`MultiChannelEnv::epoch`] bumped. In-flight readers keep
/// their clone (and thus a consistent view) while writers publish the
/// next snapshot — the `Arc<[Channel]>` machinery makes both sides O(1)
/// apart from the replaced channels themselves. The epoch together with
/// the content [`MultiChannelEnv::fingerprint`] is the environment's
/// cache identity: `QueryKey` in `tnn-core` folds both, so result-cache
/// entries from a replaced environment can never be served again.
#[derive(Debug, Clone)]
pub struct MultiChannelEnv {
    channels: Arc<[Channel]>,
    /// Mutation counter: 0 at construction, +1 per `advance*` call.
    epoch: u64,
    /// Content identity folded over every channel (see `fingerprint()`).
    fingerprint: u64,
}

/// Folds the channel count plus every channel's `(content, phase)` pair.
/// The phases belong here (not in the per-channel fingerprint): they are
/// environment-level schedule alignment, and they change query outcomes
/// whenever a query does not override them.
fn fingerprint_of(channels: &[Channel]) -> u64 {
    fnv1a(
        std::iter::once(channels.len() as u64)
            .chain(channels.iter().flat_map(|c| [c.fingerprint(), c.phase()])),
    )
}

impl MultiChannelEnv {
    /// Builds an environment broadcasting each tree on its own channel
    /// with the given phase offsets. A fresh environment starts at epoch
    /// 0.
    ///
    /// # Panics
    /// Panics when `trees` and `phases` differ in length.
    pub fn new(trees: Vec<Arc<RTree>>, params: BroadcastParams, phases: &[u64]) -> Self {
        assert_eq!(
            trees.len(),
            phases.len(),
            "one phase per channel is required"
        );
        let channels: Vec<Channel> = trees
            .into_iter()
            .zip(phases)
            .map(|(tree, &phase)| Channel::new(tree, params, phase))
            .collect();
        let fingerprint = fingerprint_of(&channels);
        MultiChannelEnv {
            channels: channels.into(),
            epoch: 0,
            fingerprint,
        }
    }

    /// The channels, in dataset order.
    #[inline]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Channel `i`.
    #[inline]
    pub fn channel(&self, i: usize) -> &Channel {
        &self.channels[i]
    }

    /// Number of channels.
    #[inline]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// A copy of the environment with different per-channel phases —
    /// O(channels), sharing all trees and layouts but materializing a new
    /// channel list.
    ///
    /// Prefer [`crate::PhaseOverlay`] on hot paths: it borrows this
    /// environment and threads the substitute phases into the query tasks
    /// directly, cloning nothing per query.
    ///
    /// # Panics
    /// Panics when `phases` does not match the channel count.
    pub fn with_phases(&self, phases: &[u64]) -> Self {
        assert_eq!(
            self.channels.len(),
            phases.len(),
            "one phase per channel is required"
        );
        let channels: Vec<Channel> = self
            .channels
            .iter()
            .zip(phases)
            .map(|(c, &p)| c.with_phase(p))
            .collect();
        let fingerprint = fingerprint_of(&channels);
        MultiChannelEnv {
            channels: channels.into(),
            // Re-phasing is not a data mutation: the epoch carries over,
            // but the fingerprint reflects the new alignment (phases
            // change outcomes for queries without a phase override).
            epoch: self.epoch,
            fingerprint,
        }
    }

    /// `true` when the environment has no channels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// The environment's mutation epoch: 0 for a freshly built
    /// environment, incremented by every [`MultiChannelEnv::advance`] /
    /// [`MultiChannelEnv::advance_channel`]. Together with
    /// [`MultiChannelEnv::fingerprint`] this is the identity caches fold
    /// into their keys.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A deterministic 64-bit identity of the environment's **content**:
    /// channel count plus every channel's data fingerprint and phase.
    /// Two environments broadcasting the same datasets under the same
    /// parameters and phases share a fingerprint even across processes.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The next snapshot: every channel's dataset replaced by the
    /// corresponding tree, keeping each channel's parameters and phase,
    /// with the epoch bumped. Readers holding a clone of `self` are
    /// unaffected — this is the writer half of the epoch-versioned
    /// snapshot contract.
    ///
    /// # Panics
    /// Panics when `trees` does not match the channel count.
    pub fn advance(&self, trees: Vec<Arc<RTree>>) -> Self {
        assert_eq!(
            self.channels.len(),
            trees.len(),
            "one tree per channel is required"
        );
        let channels: Vec<Channel> = self
            .channels
            .iter()
            .zip(trees)
            .map(|(c, tree)| Channel::new(tree, *c.params(), c.phase()))
            .collect();
        let fingerprint = fingerprint_of(&channels);
        MultiChannelEnv {
            channels: channels.into(),
            epoch: self.epoch + 1,
            fingerprint,
        }
    }

    /// The next snapshot with only channel `i`'s dataset replaced —
    /// every other channel is shared (O(1) per untouched channel), the
    /// epoch is bumped. The common churn path: one dataset's broadcast
    /// cycle is re-cut while the rest stay on air.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn advance_channel(&self, i: usize, tree: Arc<RTree>) -> Self {
        assert!(i < self.channels.len(), "channel index out of range");
        let channels: Vec<Channel> = self
            .channels
            .iter()
            .enumerate()
            .map(|(j, c)| {
                if j == i {
                    Channel::new(Arc::clone(&tree), *c.params(), c.phase())
                } else {
                    c.clone()
                }
            })
            .collect();
        let fingerprint = fingerprint_of(&channels);
        MultiChannelEnv {
            channels: channels.into(),
            epoch: self.epoch + 1,
            fingerprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn_geom::Point;
    use tnn_rtree::PackingAlgorithm;

    fn tree(n: usize, params: &BroadcastParams) -> Arc<RTree> {
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i * 3 % 31) as f64, (i * 5 % 37) as f64))
            .collect();
        Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
    }

    #[test]
    fn builds_one_channel_per_tree() {
        let params = BroadcastParams::new(64);
        let env =
            MultiChannelEnv::new(vec![tree(20, &params), tree(50, &params)], params, &[3, 99]);
        assert_eq!(env.len(), 2);
        assert!(!env.is_empty());
        assert_eq!(env.channel(0).phase(), 3);
        assert_eq!(env.channel(1).phase(), 99);
        assert_eq!(env.channel(0).tree().num_objects(), 20);
        assert_eq!(env.channel(1).tree().num_objects(), 50);
    }

    #[test]
    #[should_panic(expected = "one phase per channel")]
    fn mismatched_phases_panic() {
        let params = BroadcastParams::new(64);
        MultiChannelEnv::new(vec![tree(10, &params)], params, &[1, 2]);
    }

    #[test]
    fn clone_shares_the_channel_list() {
        let params = BroadcastParams::new(64);
        let env =
            MultiChannelEnv::new(vec![tree(20, &params), tree(50, &params)], params, &[3, 99]);
        let copy = env.clone();
        // O(1) clone: both handles point at the same channel slice.
        assert!(std::ptr::eq(env.channels(), copy.channels()));
        // with_phases produces an independent list (the legacy copying
        // path) without touching the original.
        let rephased = env.with_phases(&[7, 8]);
        assert!(!std::ptr::eq(env.channels(), rephased.channels()));
        assert_eq!(env.channel(0).phase(), 3);
        assert_eq!(rephased.channel(0).phase(), 7);
    }

    #[test]
    fn advance_bumps_the_epoch_and_changes_the_fingerprint() {
        let params = BroadcastParams::new(64);
        let env =
            MultiChannelEnv::new(vec![tree(20, &params), tree(50, &params)], params, &[3, 99]);
        assert_eq!(env.epoch(), 0);
        let next = env.advance_channel(0, tree(21, &params));
        assert_eq!(next.epoch(), 1);
        assert_ne!(next.fingerprint(), env.fingerprint());
        // The untouched channel is shared, phases and params carry over.
        assert!(std::ptr::eq(
            env.channel(1).tree_arc().as_ref(),
            next.channel(1).tree_arc().as_ref()
        ));
        assert_eq!(next.channel(0).phase(), 3);
        assert_eq!(next.channel(1).phase(), 99);
        // The reader's snapshot is untouched.
        assert_eq!(env.epoch(), 0);
        assert_eq!(env.channel(0).tree().num_objects(), 20);
        // A whole-environment advance replaces every channel.
        let all = next.advance(vec![tree(5, &params), tree(6, &params)]);
        assert_eq!(all.epoch(), 2);
        assert_eq!(all.channel(0).tree().num_objects(), 5);
        assert_eq!(all.channel(1).tree().num_objects(), 6);
    }

    #[test]
    fn fingerprint_tracks_content_and_phases() {
        let params = BroadcastParams::new(64);
        let a = MultiChannelEnv::new(vec![tree(20, &params), tree(50, &params)], params, &[3, 99]);
        let b = MultiChannelEnv::new(vec![tree(20, &params), tree(50, &params)], params, &[3, 99]);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "same data, params, phases → same identity"
        );
        // An advance to *identical* trees still changes the epoch, so
        // the (epoch, fingerprint) pair stays distinct even though the
        // content identity matches.
        let same = a.advance(vec![tree(20, &params), tree(50, &params)]);
        assert_eq!(same.fingerprint(), a.fingerprint());
        assert_eq!(same.epoch(), 1);
        // Re-phasing changes the fingerprint but not the epoch.
        let rephased = a.with_phases(&[4, 99]);
        assert_eq!(rephased.epoch(), 0);
        assert_ne!(rephased.fingerprint(), a.fingerprint());
        // Different data changes the fingerprint.
        let other =
            MultiChannelEnv::new(vec![tree(21, &params), tree(50, &params)], params, &[3, 99]);
        assert_ne!(other.fingerprint(), a.fingerprint());
    }

    #[test]
    #[should_panic(expected = "one tree per channel")]
    fn mismatched_advance_panics() {
        let params = BroadcastParams::new(64);
        let env = MultiChannelEnv::new(vec![tree(10, &params)], params, &[1]);
        env.advance(vec![tree(10, &params), tree(10, &params)]);
    }

    #[test]
    fn channels_are_independent_programs() {
        let params = BroadcastParams::new(64);
        let env =
            MultiChannelEnv::new(vec![tree(20, &params), tree(500, &params)], params, &[0, 0]);
        assert_ne!(
            env.channel(0).layout().cycle_len(),
            env.channel(1).layout().cycle_len()
        );
    }
}
