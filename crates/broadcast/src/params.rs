//! Broadcast-program parameters (paper Table 2).

use serde::{Deserialize, Serialize};
use tnn_rtree::RTreeParams;

/// The page capacities evaluated in the paper (Table 2: "64 – 512 bytes").
pub const PAGE_CAPACITIES: [usize; 4] = [64, 128, 256, 512];

/// Parameters of a broadcast program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadcastParams {
    /// Page capacity in bytes (Table 2: 64–512). One R-tree node occupies
    /// exactly one page; data objects occupy
    /// `ceil(data_content_bytes / page_capacity)` pages.
    pub page_capacity: usize,
    /// The `m` of the `(1, m)` interleaving scheme \[10\]: the index is
    /// broadcast `m` times per cycle, before each of the `m` data
    /// fractions.
    pub interleave_m: u32,
    /// Size of one data object's content in bytes (Table 2: 1 KiB).
    pub data_content_bytes: usize,
}

impl BroadcastParams {
    /// Paper defaults: 64-byte pages, `(1, 4)` interleaving, 1 KiB objects.
    pub const fn new(page_capacity: usize) -> Self {
        BroadcastParams {
            page_capacity,
            interleave_m: 4,
            data_content_bytes: 1024,
        }
    }

    /// The R-tree node capacities implied by this page size.
    pub const fn rtree_params(&self) -> RTreeParams {
        RTreeParams::for_page_capacity(self.page_capacity)
    }

    /// Pages needed to carry one data object's content.
    pub const fn pages_per_object(&self) -> u64 {
        self.data_content_bytes.div_ceil(self.page_capacity) as u64
    }

    /// `true` when the configuration is usable: positive page size, at
    /// least one interleave fraction and a branching index.
    pub const fn is_valid(&self) -> bool {
        self.page_capacity > 0 && self.interleave_m >= 1 && self.rtree_params().is_valid()
    }
}

impl Default for BroadcastParams {
    fn default() -> Self {
        BroadcastParams::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = BroadcastParams::default();
        assert_eq!(p.page_capacity, 64);
        assert_eq!(p.interleave_m, 4);
        assert_eq!(p.data_content_bytes, 1024);
        assert_eq!(p.pages_per_object(), 16);
        assert!(p.is_valid());
    }

    #[test]
    fn pages_per_object_by_capacity() {
        assert_eq!(BroadcastParams::new(64).pages_per_object(), 16);
        assert_eq!(BroadcastParams::new(128).pages_per_object(), 8);
        assert_eq!(BroadcastParams::new(256).pages_per_object(), 4);
        assert_eq!(BroadcastParams::new(512).pages_per_object(), 2);
    }

    #[test]
    fn zero_data_is_allowed_for_index_only_ablations() {
        let p = BroadcastParams {
            page_capacity: 64,
            interleave_m: 1,
            data_content_bytes: 0,
        };
        assert_eq!(p.pages_per_object(), 0);
        assert!(p.is_valid());
    }

    #[test]
    fn invalid_configurations_detected() {
        let p = BroadcastParams {
            interleave_m: 0,
            ..BroadcastParams::default()
        };
        assert!(!p.is_valid());
        // A 16-byte page cannot hold two child entries.
        assert!(!BroadcastParams::new(16).is_valid());
    }
}
