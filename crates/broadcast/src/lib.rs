//! # tnn-broadcast
//!
//! The wireless data-broadcast substrate of the EDBT 2008 TNN
//! reproduction: air-indexed broadcast programs, `(1, m)` interleaving, and
//! the multi-channel mobile-client model.
//!
//! ## Model (paper §2.1)
//!
//! A server broadcasts each dataset cyclically on its own channel, in
//! fixed-size **pages**. An R-tree *air index* is interleaved with the data
//! using the `(1, m)` scheme of Imielinski et al. \[10\]: the full index (in
//! depth-first preorder, one node per page) precedes each of the `m`
//! equal fractions of the data segment:
//!
//! ```text
//! cycle = [Index][Frac 1][Index][Frac 2] … [Index][Frac m]
//! ```
//!
//! Index pointers are **arrival times**: a child entry resolves to the
//! child node's page offset within the index segment, from which the next
//! on-air time is pure arithmetic. Nothing is ever materialized — a
//! 100,000-object program costs only the memory of its R-tree
//! ([`BroadcastLayout`] keeps a handful of integers plus one slot per
//! object).
//!
//! A mobile client ([`Tuner`]) tunes into one or more [`Channel`]s. The two
//! cost metrics follow the paper: **access time** (elapsed slots) and
//! **tune-in time** (pages downloaded), both counted in pages.
//!
//! Random access is impossible on air: a page missed waits a full bucket
//! (index + fraction) or cycle. Query processing therefore traverses
//! indexes in **arrival order** (see `tnn-core`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod channel;
mod env;
mod layout;
mod overlay;
mod params;
mod tuner;

pub use channel::{Channel, ChannelView, PageContent};
pub use env::MultiChannelEnv;
pub use layout::BroadcastLayout;
pub use overlay::{InlineVec, PhaseOverlay, PhaseVec};
pub use params::{BroadcastParams, PAGE_CAPACITIES};
pub use tuner::Tuner;
