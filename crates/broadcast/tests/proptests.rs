//! Property tests for the virtual broadcast schedule: the closed-form
//! arrival arithmetic must agree with brute-force scanning of the page
//! stream for arbitrary programs and phases.

use proptest::prelude::*;
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, Channel, PageContent};
use tnn_geom::Point;
use tnn_rtree::{NodeId, PackingAlgorithm, RTree};

fn channel_strategy() -> impl Strategy<Value = (Channel, u64)> {
    (
        1usize..120, // number of objects
        prop::sample::select(vec![64usize, 128, 256]),
        1u32..6,      // interleave m
        0u64..10_000, // phase
        0u64..5_000,  // probe time
    )
        .prop_map(|(n, page, m, phase, now)| {
            let params = BroadcastParams {
                page_capacity: page,
                interleave_m: m,
                data_content_bytes: 1024,
            };
            let pts: Vec<Point> = (0..n)
                .map(|i| Point::new((i * 17 % 257) as f64, (i * 23 % 263) as f64))
                .collect();
            let tree = RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap();
            (Channel::new(Arc::new(tree), params, phase), now)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `next_node_arrival` returns the first slot ≥ now carrying the node.
    #[test]
    fn node_arrival_is_first_on_air_slot((ch, now) in channel_strategy(), node_sel in 0usize..50) {
        let node = NodeId((node_sel % ch.tree().num_nodes()) as u32);
        let arr = ch.next_node_arrival(node, now);
        prop_assert!(arr >= now);
        prop_assert!(arr - now < ch.layout().bucket_len());
        prop_assert_eq!(ch.page_at(arr), PageContent::IndexNode(node));
        for t in now..arr {
            prop_assert_ne!(ch.page_at(t), PageContent::IndexNode(node));
        }
    }

    /// Data arrivals match the page stream and recur once per cycle.
    #[test]
    fn data_arrival_matches_stream((ch, now) in channel_strategy(), j_sel in 0u64..100_000) {
        let l = ch.layout();
        prop_assume!(l.data_len() > 0);
        let j = j_sel % l.data_len();
        let arr = l.next_data_arrival(j, now, ch.phase());
        prop_assert!(arr >= now);
        prop_assert!(arr - now < l.cycle_len());
        match ch.page_at(arr) {
            PageContent::Data { object, part } => {
                let expect_slot = (j / l.pages_per_object()) * l.pages_per_object();
                prop_assert_eq!(l.data_slot(object), expect_slot);
                prop_assert_eq!(part, j % l.pages_per_object());
            }
            other => prop_assert!(false, "expected data page, got {other:?}"),
        }
    }

    /// Object retrieval downloads exactly pages_per_object pages and always
    /// finishes within two cycles.
    #[test]
    fn object_retrieval_is_bounded((ch, now) in channel_strategy(), rank in 0usize..200) {
        let objects: Vec<_> = ch.tree().objects_in_leaf_order().collect();
        let (_, object) = objects[rank % objects.len()];
        let (finish, pages) = ch.retrieve_object(object, now);
        prop_assert_eq!(pages, ch.layout().pages_per_object());
        prop_assert!(finish >= now);
        prop_assert!(finish - now <= 2 * ch.layout().cycle_len() + pages);
    }

    /// The root recurs every bucket: two consecutive arrivals differ by
    /// exactly bucket_len.
    #[test]
    fn root_period_is_bucket((ch, now) in channel_strategy()) {
        let a0 = ch.next_root_arrival(now);
        let a1 = ch.next_root_arrival(a0 + 1);
        prop_assert_eq!(a1 - a0, ch.layout().bucket_len());
    }
}
