//! Calibration sweep for the dynamic-α ANN factor (paper eq. 4).
//!
//! Prints tune-in, phase breakdown and filter radius for a grid of
//! factors, per algorithm — the tool used to pick the factors baked into
//! the Figure 12/13 experiments. Run with:
//!
//! ```sh
//! TNN_QUERIES=200 cargo run --release -p tnn-sim --example ann_calibration
//! ```

use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, AnnMode, TnnConfig};
use tnn_sim::experiments::Context;
use tnn_sim::DatasetSpec;

fn main() {
    let ctx = Context::from_env();
    let params = BroadcastParams::new(64);
    for (s, r, label) in [
        (
            DatasetSpec::UnifS(-50),
            DatasetSpec::UnifR(-50),
            "S=UNIF(-5.0) R=UNIF(-5.0)",
        ),
        (
            DatasetSpec::UnifS(-58),
            DatasetSpec::UnifR(-58),
            "S=UNIF(-5.8) R=UNIF(-5.8)",
        ),
        (
            DatasetSpec::UnifS(-50),
            DatasetSpec::UnifR(-42),
            "S=UNIF(-5.0) R=UNIF(-4.2)",
        ),
    ] {
        println!("== {label}");
        for alg in [
            Algorithm::DoubleNn,
            Algorithm::WindowBased,
            Algorithm::HybridNn,
        ] {
            let enn = ctx.batch(s, r, params, TnnConfig::exact(alg), false);
            println!(
                "{:18} eNN       tune-in {:8.1} (est {:6.1}/filt {:6.1}) radius {:7.1}",
                alg.name(),
                enn.mean_tune_in,
                enn.mean_tune_estimate,
                enn.mean_tune_filter,
                enn.mean_radius
            );
            for f in [0.05, 0.02, 0.01, 1.0 / 150.0, 0.005, 0.002] {
                let m = AnnMode::Dynamic { factor: f };
                let st = ctx.batch(
                    s,
                    r,
                    params,
                    TnnConfig::exact(alg).with_ann_modes(&[m, m]),
                    false,
                );
                println!(
                    "{:18} f={:<7.4} tune-in {:8.1} (est {:6.1}/filt {:6.1}) radius {:7.1} saved {:+.1}%",
                    alg.name(),
                    f,
                    st.mean_tune_in,
                    st.mean_tune_estimate,
                    st.mean_tune_filter,
                    st.mean_radius,
                    (1.0 - st.mean_tune_in / enn.mean_tune_in) * 100.0
                );
            }
        }
    }
}
