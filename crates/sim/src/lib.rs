//! # tnn-sim
//!
//! The experiment harness reproducing every measured table and figure of
//! the EDBT 2008 TNN paper's evaluation (§6):
//!
//! | experiment | binary | paper section |
//! |---|---|---|
//! | Figure 9 (a–d): access time | `fig9` | §6.1.1 |
//! | Figure 11 (a–d): tune-in time vs. density | `fig11` | §6.1.2 |
//! | Figure 12 (a–d): ANN vs. eNN optimization | `fig12` | §6.2 |
//! | Figure 13 (a–b): Hybrid-NN with ANN | `fig13` | §6.2.2 |
//! | Table 3: Approximate-TNN fail rates | `table3` | §6.3 |
//! | design ablations (packing, interleaving, …) | `ablations` | — |
//!
//! Run everything with `cargo run --release -p tnn-sim --bin
//! all-experiments`; set `TNN_QUERIES` (default 1000, the paper's count)
//! and `TNN_SEED` to control batch size and reproducibility.
//!
//! The harness mirrors the paper's methodology: for each configuration it
//! issues `TNN_QUERIES` queries at points uniform over the 39,000²
//! region, with **independent random phases per channel per query**
//! simulating the waiting times for the two roots, and reports access
//! time and tune-in time in pages.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
mod metrics;
mod report;
mod runner;
mod workload;
mod zipf;

pub use metrics::BatchStats;
pub use report::{format_table, write_csv, Table};
pub use runner::{queries_per_batch, run_batch, run_chain_batch, run_tnn_batch, BatchConfig};
pub use workload::{Catalog, DatasetSpec};
pub use zipf::ZipfSampler;

#[cfg(feature = "linear-reference")]
pub use runner::{run_batch_linear, run_tnn_batch_linear};
