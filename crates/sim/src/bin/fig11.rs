//! Regenerates Figure 11 (tune-in time vs. density, paper §6.1.2).

#![forbid(unsafe_code)]

use tnn_sim::experiments::{fig11, Context};

fn main() {
    let ctx = Context::from_env();
    eprintln!(
        "fig11: {} queries per configuration (TNN_QUERIES to change)",
        ctx.queries
    );
    for (i, table) in fig11::run(&ctx).into_iter().enumerate() {
        let name = format!("fig11{}", char::from(b'a' + i as u8));
        ctx.emit(&table, &name);
    }
}
