//! Regenerates Figure 9 (access time, paper §6.1.1).

#![forbid(unsafe_code)]

use tnn_sim::experiments::{fig9, Context};

fn main() {
    let ctx = Context::from_env();
    eprintln!(
        "fig9: {} queries per configuration (TNN_QUERIES to change)",
        ctx.queries
    );
    for (i, table) in fig9::run(&ctx).into_iter().enumerate() {
        let name = format!("fig9{}", char::from(b'a' + i as u8));
        ctx.emit(&table, &name);
    }
}
