//! Regenerates Figure 12 (ANN vs. eNN optimization, paper §6.2).

#![forbid(unsafe_code)]

use tnn_sim::experiments::{fig12, Context};

fn main() {
    let ctx = Context::from_env();
    eprintln!(
        "fig12: {} queries per configuration (TNN_QUERIES to change)",
        ctx.queries
    );
    for (i, table) in fig12::run(&ctx).into_iter().enumerate() {
        let name = format!("fig12{}", char::from(b'a' + i as u8));
        ctx.emit(&table, &name);
    }
}
