//! Regenerates Table 3 (Approximate-TNN fail rates, paper §6.3).

#![forbid(unsafe_code)]

use tnn_sim::experiments::{table3, Context};

fn main() {
    let ctx = Context::from_env();
    eprintln!(
        "table3: {} queries per configuration (TNN_QUERIES to change)",
        ctx.queries
    );
    for (i, table) in table3::run(&ctx).into_iter().enumerate() {
        let name = if i == 0 {
            "table3".into()
        } else {
            format!("table3_control{i}")
        };
        ctx.emit(&table, &name);
    }
}
