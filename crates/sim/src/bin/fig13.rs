//! Regenerates Figure 13 (Hybrid-NN with ANN, paper §6.2.2).

#![forbid(unsafe_code)]

use tnn_sim::experiments::{fig13, Context};

fn main() {
    let ctx = Context::from_env();
    eprintln!(
        "fig13: {} queries per configuration (TNN_QUERIES to change)",
        ctx.queries
    );
    for (i, table) in fig13::run(&ctx).into_iter().enumerate() {
        let name = format!("fig13{}", char::from(b'a' + i as u8));
        ctx.emit(&table, &name);
    }
}
