//! Load generator for the `tnn-serve` front-end: measures serving
//! throughput, latency percentiles, cache effectiveness, and
//! deadline-miss behaviour against the batch-runner ceiling and writes a
//! `BENCH_<tag>.json` trajectory point.
//!
//! Phases (k = 2, 3, 4 by default, override with positional arguments):
//!
//! 1. **Closed loop** (per k) — the run_tnn_batch workload (Hybrid-NN,
//!    identical per-query rng streams) pushed through a 1-worker server
//!    via `submit_batch` with the cache disabled; its throughput is
//!    compared against a direct `run_tnn_batch` of the same queries (the
//!    serving overhead must be small — the acceptance gate wants the
//!    1-worker path within 15% on a single-CPU host).
//! 2. **Open loop** (per k) — Poisson-ish arrivals (exponential
//!    inter-arrival times from the rand shim) at ~70% of measured
//!    capacity, mixing **all four algorithms**, against a multi-worker
//!    `Reject` server, cache disabled; `Ticket::latency()` p50/p99.
//! 3. **Zipf cache axis** (per k) — a skewed repeat-query workload
//!    (`TNN_POOL` distinct queries, Zipf exponent `TNN_ZIPF`) served
//!    cold through an uncached and a cached server; reports the cache
//!    speedup and hit rate, and **asserts a nonzero hit rate** (the CI
//!    smoke gate).
//! 4. **Deadline axis** (k = 2) — saturating bursts of mixed tight/
//!    generous deadlines against a `Shed` server, once per shed
//!    discipline; reports the client-observed deadline-miss rate of
//!    expiry-aware shedding vs. the old shed-oldest.
//! 5. **Ablation** (k = 2) — the deferred `batch_window` ×
//!    `queue_capacity` grid: closed-loop throughput per combination.
//! 6. **Shard axis** (k = 2, `--shards` only) — spatially skewed Zipf
//!    traffic (the hot head of the query pool lives in one corner cell)
//!    pushed by concurrent clients through a [`tnn_shard::ShardRouter`]
//!    over the shard-count × replication grid, with a deliberately tiny
//!    per-replica queue under `Reject` backpressure. Reports throughput,
//!    scatter rejections, fallbacks, the gather prune rate, and spawned
//!    replicas per configuration; the binary *asserts* a nonzero gather
//!    prune rate on the ≥ 4-shard grids — this is the CI shard smoke
//!    gate — and the single-copy vs replicated rejection counts show
//!    hot-shard replication absorbing the skew.
//! 7. **Chaos axis** (k = 2, `--faults` only) — a mixed-priority
//!    workload through [`Server::spawn_with_faults`] under a nonzero
//!    fault schedule (channel drops + jitter, a periodic outage, an
//!    injected engine panic, and two worker kills). The binary itself
//!    *asserts* zero lost tickets and nonzero `worker_restarts` — this
//!    is the CI chaos smoke gate — and reports per-class p50/p99 from
//!    the server-side [`tnn_serve::ServeStats`] latency histograms.
//! 8. **Churn axis** (k = 2, `--churn` only) — a skewed repeat-query
//!    workload against a caching, singleflight server whose environment
//!    is swapped (`Server::swap_env`) between rounds: every channel's
//!    data is replaced and the epoch bumped. The binary *asserts* — the
//!    CI churn smoke gate — that the epoch actually advanced, that the
//!    cache was exercised (nonzero hits), and that **zero** served
//!    answers diverge from a fresh reference engine over the
//!    then-current environment (a stale cache entry surviving a swap
//!    would fail the count).
//!
//! 9. **Trace axis** (k = 2, `--trace` only) — a skewed repeat-query
//!    workload through a traced, caching server
//!    ([`tnn_serve::TraceConfig::on`]). The binary *asserts* — the CI
//!    observability smoke gate — that the flight recorder retained
//!    traces, that every retained trace carries stamped spans whose sum
//!    reconciles with the recorded end-to-end latency to within one
//!    log₂ histogram bucket (totals under 16 µs are skipped: all seam),
//!    and that the rendered Prometheus snapshot's per-class completion
//!    counters conserve the server's own completion count.
//!
//! ```sh
//! cargo run --release -p tnn-sim --bin serve_load -- --tag pr7 --faults --shards --churn --trace 2 3 4
//! ```
//!
//! Environment knobs: `TNN_QUERIES` (closed-loop batch size, default
//! 1,000), `TNN_LOAD_POINTS` (points per channel, default 10,000),
//! `TNN_LOAD_SECS` (open-loop duration per k, default 2),
//! `TNN_BENCH_REPS` (min-of-reps, default 3), `TNN_POOL` (Zipf pool
//! size, default 200), `TNN_ZIPF` (Zipf exponent, default 1.1),
//! `TNN_SHARD_QUERIES` (shard-axis workload size, default 400),
//! `TNN_CHAOS_QUERIES` (chaos-axis workload size, default 300),
//! `TNN_CHURN_QUERIES` (churn-axis queries per epoch, default 240), and
//! `TNN_TRACE_QUERIES` (trace-axis workload size, default 300).

#![forbid(unsafe_code)]
// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, Query, TnnConfig, TnnError};
use tnn_datasets::{paper_region, uniform_points};
use tnn_geom::{Point, Rect};
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{
    Backpressure, CacheConfig, ChannelFaults, Degradation, FaultPlan, MetricsRegistry, Priority,
    Qos, RetryPolicy, ServeConfig, Server, ShedDiscipline, ShutdownMode, TraceConfig,
};
use tnn_shard::{ShardConfig, ShardRouter};
use tnn_sim::{format_table, run_tnn_batch, BatchConfig, Table, ZipfSampler};

const SEED_GAMMA: u64 = 0x9E3779B97F4A7C15;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The exact per-query workload of `run_tnn_batch`'s `run_one`: point
/// and per-channel phases from the seed-premixed per-query stream, so
/// the served batch is the batch runner's workload query for query.
fn batch_query(
    region: &Rect,
    cycle_lens: &[u64],
    seed: u64,
    index: u64,
    algorithm: Algorithm,
) -> Query {
    let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(SEED_GAMMA));
    let p = tnn_geom::Point::new(
        rng.gen_range(region.min.x..=region.max.x),
        rng.gen_range(region.min.y..=region.max.y),
    );
    let phases: Vec<u64> = cycle_lens
        .iter()
        .map(|&len| rng.gen_range(0..len.max(1)))
        .collect();
    Query::tnn(p).algorithm(algorithm).phases(&phases)
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Minimal `BENCH_*.json` writer (format-identical to
/// `tnn-bench::write_bench_json`; duplicated here because `tnn-bench`
/// depends on this crate).
fn write_bench_json(
    path: &std::path::Path,
    tag: &str,
    workload: &str,
    records: &[(String, f64, u64)],
    derived: &[(String, f64)],
) -> std::io::Result<()> {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"tag\": \"{}\",", esc(tag))?;
    writeln!(f, "  \"workload\": \"{}\",", esc(workload))?;
    writeln!(f, "  \"benchmarks\": [")?;
    for (i, (id, ns, iters)) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"id\": \"{}\", \"ns_per_iter\": {ns:.1}, \"iters\": {iters}}}{comma}",
            esc(id)
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"derived\": {{")?;
    for (i, (k, v)) in derived.iter().enumerate() {
        let comma = if i + 1 < derived.len() { "," } else { "" };
        writeln!(f, "    \"{}\": {v:.4}{comma}", esc(k))?;
    }
    writeln!(f, "  }}")?;
    writeln!(f, "}}")
}

/// Pushes `workload` through a fresh 1-worker server (cold cache) and
/// returns the elapsed nanoseconds plus the server's final stats.
fn closed_loop_once(
    env: &tnn_broadcast::MultiChannelEnv,
    workload: &[Query],
    cache: CacheConfig,
) -> (f64, tnn_serve::ServeStats) {
    let server = Server::spawn(
        env.clone(),
        ServeConfig::new()
            .workers(1)
            .queue_capacity(workload.len())
            .backpressure(Backpressure::Block)
            .cache(cache)
            .batch_window(32),
    );
    let t0 = Instant::now();
    let tickets = server.submit_batch(workload.to_vec());
    // Wait in reverse submission order: completions are FIFO, so
    // blocking on the *last* ticket sleeps exactly once instead of
    // ping-ponging worker and collector on every resolve.
    for ticket in tickets.into_iter().rev() {
        ticket
            .expect("capacity covers the batch")
            .wait()
            .expect("closed-loop queries are valid");
    }
    let elapsed = t0.elapsed().as_nanos() as f64;
    let stats = server.shutdown(ShutdownMode::Drain);
    assert!(stats.conserved(), "closed loop lost tickets: {stats:?}");
    (elapsed, stats)
}

fn main() {
    let mut tag = String::from("pr5");
    let mut ks: Vec<usize> = Vec::new();
    let mut faults = false;
    let mut shards_axis = false;
    let mut churn = false;
    let mut trace_axis = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--tag" {
            tag = args.next().expect("--tag needs a value");
        } else if arg == "--faults" {
            faults = true;
        } else if arg == "--shards" {
            shards_axis = true;
        } else if arg == "--churn" {
            churn = true;
        } else if arg == "--trace" {
            trace_axis = true;
        } else if let Ok(k) = arg.parse::<usize>() {
            assert!(k >= 2, "TNN needs at least two channels");
            ks.push(k);
        } else {
            panic!(
                "unknown argument {arg:?} \
                 (usage: serve_load [--tag T] [--faults] [--shards] [--churn] [--trace] [k...])"
            );
        }
    }
    if ks.is_empty() {
        ks = vec![2, 3, 4];
    }
    let queries = env_usize("TNN_QUERIES", 1_000);
    let points = env_usize("TNN_LOAD_POINTS", 10_000);
    let open_secs = env_f64("TNN_LOAD_SECS", 2.0);
    let reps = env_usize("TNN_BENCH_REPS", 3).max(1);
    let pool_size = env_usize("TNN_POOL", 200).max(1);
    let zipf_s = env_f64("TNN_ZIPF", 1.1);
    let open_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "serve_load: {queries} queries/batch over {points} points/channel, k = {ks:?}, \
         {reps} reps, {open_secs} s open loop ({open_workers} workers), \
         Zipf({zipf_s}) over a {pool_size}-query pool"
    );

    let params = BroadcastParams::new(64);
    let region = paper_region();
    let mut table = Table::new(
        "tnn-serve load: closed-loop vs batch runner, open-loop latency, Zipf cache axis",
        &[
            "k",
            "batch [q/s]",
            "serve 1w [q/s]",
            "serve/batch",
            "p50 [ms]",
            "p99 [ms]",
            "rejected",
            "cache speedup",
            "hit rate",
        ],
    );
    let mut records: Vec<(String, f64, u64)> = Vec::new();
    let mut derived: Vec<(String, f64)> = Vec::new();
    let mut k2_serve_qps = 0.0f64;
    let mut k2_env = None;
    let mut k2_workload = Vec::new();

    for &k in &ks {
        let trees: Vec<Arc<RTree>> = (0..k)
            .map(|i| {
                let pts = uniform_points(points, &region, 10 + i as u64);
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        let seed = 0xF19 + k as u64;
        let cfg = BatchConfig {
            params,
            tnn: TnnConfig::exact_for(Algorithm::HybridNn, k),
            queries,
            seed,
            check_oracle: false,
        };

        // --- Closed loop: direct batch runner (the throughput ceiling).
        run_tnn_batch(&trees, &region, &cfg); // warm-up
        let mut batch_ns = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            std::hint::black_box(run_tnn_batch(&trees, &region, &cfg));
            batch_ns = batch_ns.min(t0.elapsed().as_nanos() as f64);
        }
        let batch_qps = queries as f64 / (batch_ns / 1e9);

        // --- Closed loop: the same workload through a 1-worker server,
        // cache disabled (every query distinct anyway — this measures
        // pure serving overhead, comparable with the pr4 trajectory).
        let env = tnn_broadcast::MultiChannelEnv::new(trees.clone(), params, &vec![0; k]);
        let cycle_lens: Vec<u64> = env
            .channels()
            .iter()
            .map(|c| c.layout().cycle_len())
            .collect();
        let workload: Vec<Query> = (0..queries as u64)
            .map(|i| batch_query(&region, &cycle_lens, seed, i, Algorithm::HybridNn))
            .collect();
        let mut serve_ns = f64::INFINITY;
        for _ in 0..reps {
            let (elapsed, _) = closed_loop_once(&env, &workload, CacheConfig::disabled());
            serve_ns = serve_ns.min(elapsed);
        }
        let serve_qps = queries as f64 / (serve_ns / 1e9);
        let ratio = serve_qps / batch_qps;
        if k == 2 {
            k2_serve_qps = serve_qps;
            k2_env = Some(env.clone());
            k2_workload = workload.clone();
        }

        // --- Open loop: Poisson-ish arrivals at ~70% capacity, all four
        // algorithms, multi-worker, Reject backpressure, no cache.
        let server = Server::spawn(
            env.clone(),
            ServeConfig::new()
                .workers(open_workers)
                .queue_capacity(256)
                .backpressure(Backpressure::Reject)
                .cache(CacheConfig::disabled())
                .batch_window(16),
        );
        let rate = (serve_qps * 0.7).max(1.0); // arrivals per second
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_A5A5);
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        let mut offered = 0u64;
        let t0 = Instant::now();
        let mut next_arrival = Duration::ZERO;
        while next_arrival.as_secs_f64() < open_secs {
            // Exponential inter-arrival gap (guard u = 0 → ln(0)).
            let u: f64 = rng.gen::<f64>().max(1e-12);
            next_arrival += Duration::from_secs_f64((-u.ln() / rate).min(open_secs));
            while t0.elapsed() < next_arrival {
                std::thread::sleep(Duration::from_micros(50));
            }
            let alg = match rng.gen_range(0u32..4) {
                0 => Algorithm::WindowBased,
                1 => Algorithm::ApproximateTnn,
                2 => Algorithm::DoubleNn,
                _ => Algorithm::HybridNn,
            };
            offered += 1;
            match server.submit(batch_query(
                &region,
                &cycle_lens,
                seed ^ 0x0BE1,
                offered,
                alg,
            )) {
                Ok(t) => tickets.push(t),
                Err(_) => rejected += 1,
            }
        }
        let stats = server.shutdown(ShutdownMode::Drain);
        assert!(stats.conserved(), "open loop lost tickets: {stats:?}");
        let mut latencies: Vec<Duration> = tickets
            .iter()
            .map(|t| t.latency().expect("drained tickets are resolved"))
            .collect();
        latencies.sort_unstable();
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);

        // --- Zipf cache axis: a skewed repeat-query workload, cold
        // through an uncached and then a cached server (min over reps,
        // fresh server each rep so both start cold).
        let pool: Vec<Query> = (0..pool_size as u64)
            .map(|i| batch_query(&region, &cycle_lens, seed ^ 0x21BF, i, Algorithm::HybridNn))
            .collect();
        let zipf = ZipfSampler::new(pool_size, zipf_s);
        let mut zrng = StdRng::seed_from_u64(seed ^ 0x51CC);
        let skewed: Vec<Query> = (0..queries)
            .map(|_| pool[zipf.sample(&mut zrng)].clone())
            .collect();
        let mut uncached_ns = f64::INFINITY;
        let mut cached_ns = f64::INFINITY;
        let mut cached_stats = None;
        for _ in 0..reps {
            let (elapsed, _) = closed_loop_once(&env, &skewed, CacheConfig::disabled());
            uncached_ns = uncached_ns.min(elapsed);
            let (elapsed, stats) =
                closed_loop_once(&env, &skewed, CacheConfig::new().capacity(2 * pool_size));
            cached_ns = cached_ns.min(elapsed);
            cached_stats = Some(stats);
        }
        let cached_stats = cached_stats.expect("at least one rep");
        let speedup = uncached_ns / cached_ns;
        let hit_rate = cached_stats.cache_hit_rate();
        // The CI smoke gate: a skewed workload over a pool smaller than
        // the batch *must* hit — repeats queued behind their first
        // occurrence hit the dequeue-time probe deterministically.
        assert!(
            cached_stats.cache_hits > 0,
            "skewed workload produced no cache hits: {cached_stats:?}"
        );

        table.push_row(vec![
            k.to_string(),
            format!("{batch_qps:.0}"),
            format!("{serve_qps:.0}"),
            format!("{ratio:.3}"),
            format!("{:.3}", p50.as_secs_f64() * 1e3),
            format!("{:.3}", p99.as_secs_f64() * 1e3),
            rejected.to_string(),
            format!("{speedup:.2}x"),
            format!("{:.3}", hit_rate),
        ]);
        records.push((
            format!("serve/hybrid_{queries}q/k{k}_batch"),
            batch_ns,
            reps as u64,
        ));
        records.push((
            format!("serve/hybrid_{queries}q/k{k}_serve_1w"),
            serve_ns,
            reps as u64,
        ));
        records.push((
            format!("serve/zipf_{queries}q/k{k}_uncached"),
            uncached_ns,
            reps as u64,
        ));
        records.push((
            format!("serve/zipf_{queries}q/k{k}_cached"),
            cached_ns,
            reps as u64,
        ));
        derived.push((format!("k{k}_batch_qps"), batch_qps));
        derived.push((format!("k{k}_serve_1w_qps"), serve_qps));
        derived.push((format!("k{k}_serve_vs_batch"), ratio));
        derived.push((format!("k{k}_open_offered_qps"), rate));
        derived.push((format!("k{k}_open_completed"), latencies.len() as f64));
        derived.push((format!("k{k}_open_rejected"), rejected as f64));
        derived.push((format!("k{k}_open_p50_ms"), p50.as_secs_f64() * 1e3));
        derived.push((format!("k{k}_open_p99_ms"), p99.as_secs_f64() * 1e3));
        // Server-side histogram of the same completions (open-loop
        // traffic is all Batch class) — the in-server view to hold
        // against the client-observed ticket latencies above.
        let server_lat = &stats.class(Priority::Batch).latency;
        derived.push((
            format!("k{k}_open_server_p50_ms"),
            server_lat.p50().as_secs_f64() * 1e3,
        ));
        derived.push((
            format!("k{k}_open_server_p99_ms"),
            server_lat.p99().as_secs_f64() * 1e3,
        ));
        derived.push((format!("k{k}_zipf_cache_speedup"), speedup));
        derived.push((format!("k{k}_zipf_hit_rate"), hit_rate));
    }

    println!("{}", format_table(&table));

    // --- Deadline axis (k = 2): saturating bursts of mixed tight and
    // generous deadlines against a Shed server, once per discipline.
    // Self-calibrated against the measured 1-worker capacity so the
    // tight TTL genuinely expires inside a full queue while the
    // generous one comfortably outlives it, whatever this host's speed.
    // The shed discipline matters exactly when *viable* work shares the
    // lane with *aged* dead weight as fresh pressure arrives. Each round
    // reproduces the regression scenario at benchmark scale: a standing
    // backlog of generous-deadline work the worker is still serving, a
    // block of ultra-short-TTL probes queued behind it (dead long before
    // a worker could reach them — their misses are sunk either way),
    // then a renewed burst of viable work that overflows the lane.
    // Expiry-aware shedding spends every eviction on a corpse; shed-
    // oldest spends them on the viable front of the lane. Timings
    // self-calibrate against the measured 1-worker capacity so the
    // phase structure holds whatever this host's speed.
    if let Some(env) = &k2_env {
        let gen_block = 80usize; // standing viable backlog per round
        let tight_block = 40usize; // short-TTL probes (die in the queue)
        let storm_block = 40usize; // renewed viable pressure → overflow
        let qcap = gen_block + tight_block - 10;
        let service = 1.0 / k2_serve_qps.max(1.0); // seconds per query
                                                   // The storm lands while the worker is still inside the generous
                                                   // backlog (robust to ~3× sleep overshoot: 0.3 × 80 drains 24 of
                                                   // 80 nominally) but well after the probes died.
        let storm_delay = Duration::from_secs_f64(0.3 * gen_block as f64 * service);
        let tight = Duration::from_secs_f64(0.4 * storm_delay.as_secs_f64());
        let generous = Duration::from_secs_f64(2000.0 * service);
        let drain_gap = Duration::from_secs_f64((gen_block + storm_block + 10) as f64 * service);
        let per_round = gen_block + tight_block + storm_block;
        let rounds = (queries / per_round).max(25);
        let cycle_lens: Vec<u64> = env
            .channels()
            .iter()
            .map(|c| c.layout().cycle_len())
            .collect();
        let mut dtable = Table::new(
            "deadline-miss rate under saturation (k = 2, Shed policy, mixed TTLs)",
            &[
                "shed discipline",
                "offered",
                "completed",
                "missed",
                "miss rate",
                "generous missed",
                "generous miss rate",
            ],
        );
        let mut miss_rates = Vec::new();
        for (label, discipline) in [
            ("expired-first", ShedDiscipline::ExpiredFirst),
            ("oldest-first", ShedDiscipline::OldestFirst),
        ] {
            let server = Server::spawn(
                env.clone(),
                ServeConfig::new()
                    .workers(1)
                    .queue_capacity(qcap)
                    .backpressure(Backpressure::Shed)
                    .shed_discipline(discipline)
                    .cache(CacheConfig::disabled())
                    .batch_window(4),
            );
            let mut tickets: Vec<(tnn_serve::Ticket, Duration)> = Vec::new();
            let mut index = 0u64;
            let mut block = |server: &Server, n: usize, ttl: Duration| {
                let submissions: Vec<(Query, Qos)> = (0..n)
                    .map(|_| {
                        index += 1;
                        let query =
                            batch_query(&region, &cycle_lens, 0xDEAD, index, Algorithm::HybridNn);
                        (query, Qos::new().deadline_in(ttl))
                    })
                    .collect();
                server
                    .submit_batch_qos(submissions)
                    .into_iter()
                    .map(|t| (t.expect("Shed never refuses"), ttl))
                    .collect::<Vec<_>>()
            };
            for _ in 0..rounds {
                tickets.extend(block(&server, gen_block, generous));
                tickets.extend(block(&server, tight_block, tight));
                std::thread::sleep(storm_delay);
                tickets.extend(block(&server, storm_block, generous));
                std::thread::sleep(drain_gap);
            }
            let offered = tickets.len();
            let mut missed = 0usize;
            let mut completed = 0usize;
            let mut generous_missed = 0usize;
            let mut generous_offered = 0usize;
            for (ticket, ttl) in &tickets {
                let is_generous = *ttl == generous;
                generous_offered += is_generous as usize;
                let miss = match ticket.wait() {
                    Ok(_) => {
                        completed += 1;
                        ticket.latency().expect("resolved") > *ttl
                    }
                    Err(TnnError::DeadlineExceeded) | Err(TnnError::Overloaded) => true,
                    Err(other) => panic!("unexpected outcome {other:?}"),
                };
                missed += miss as usize;
                generous_missed += (miss && is_generous) as usize;
            }
            let stats = server.shutdown(ShutdownMode::Drain);
            assert!(stats.conserved(), "deadline axis lost tickets: {stats:?}");
            eprintln!(
                "deadline axis [{label}]: completed={} shed={} expired={}",
                stats.completed, stats.shed, stats.expired
            );
            let miss_rate = missed as f64 / offered as f64;
            let generous_rate = generous_missed as f64 / generous_offered.max(1) as f64;
            miss_rates.push(miss_rate);
            dtable.push_row(vec![
                label.to_string(),
                offered.to_string(),
                completed.to_string(),
                missed.to_string(),
                format!("{miss_rate:.3}"),
                generous_missed.to_string(),
                format!("{generous_rate:.3}"),
            ]);
            let key = label.replace('-', "_");
            derived.push((format!("k2_deadline_miss_{key}"), miss_rate));
            derived.push((format!("k2_deadline_generous_miss_{key}"), generous_rate));
        }
        println!("{}", format_table(&dtable));
        derived.push((
            "k2_deadline_miss_ratio_old_over_new".into(),
            miss_rates[1] / miss_rates[0].max(1e-9),
        ));

        // --- Ablation (k = 2): batch_window × queue_capacity over the
        // closed-loop workload, all available workers, Block policy.
        let mut atable = Table::new(
            "closed-loop throughput [q/s] over batch_window x queue_capacity (k = 2)",
            &["batch_window", "qcap 64", "qcap 256", "qcap 1024"],
        );
        for bw in [1usize, 4, 16, 64] {
            let mut row = vec![bw.to_string()];
            for qc in [64usize, 256, 1024] {
                let mut best_ns = f64::INFINITY;
                for _ in 0..reps {
                    let server = Server::spawn(
                        env.clone(),
                        ServeConfig::new()
                            .workers(open_workers)
                            .queue_capacity(qc)
                            .backpressure(Backpressure::Block)
                            .cache(CacheConfig::disabled())
                            .batch_window(bw),
                    );
                    let t0 = Instant::now();
                    let tickets = server.submit_batch(k2_workload.to_vec());
                    for ticket in tickets.into_iter().rev() {
                        ticket
                            .expect("Block admits everything")
                            .wait()
                            .expect("ablation queries are valid");
                    }
                    best_ns = best_ns.min(t0.elapsed().as_nanos() as f64);
                    let stats = server.shutdown(ShutdownMode::Drain);
                    assert!(stats.conserved(), "ablation lost tickets: {stats:?}");
                }
                let qps = queries as f64 / (best_ns / 1e9);
                row.push(format!("{qps:.0}"));
                derived.push((format!("k2_ablation_bw{bw}_qc{qc}_qps"), qps));
            }
            atable.push_row(row);
        }
        println!("{}", format_table(&atable));
    }

    // --- Shard axis (k = 2, `--shards` only): spatially skewed Zipf
    // traffic through a ShardRouter across the shard-count ×
    // replication grid. The hot head of the query pool lives in one
    // corner cell, so its shard takes nearly every primary sub-query;
    // a deliberately tiny per-replica queue under Reject backpressure
    // makes the single-copy hot shard turn concurrent clients away,
    // while hot-shard replication absorbs the same skew. The gather-
    // prune assertion is the CI shard smoke gate: distant sub-trees
    // must be skipped wholesale once the transitive bound is known.
    if shards_axis {
        let trees: Vec<Arc<RTree>> = (0..2)
            .map(|i| {
                let pts = uniform_points(points, &region, 510 + i as u64);
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        let env = tnn_broadcast::MultiChannelEnv::new(trees, params, &[0, 0]);
        let n = env_usize("TNN_SHARD_QUERIES", 400).max(32);
        let clients = 4usize;
        // The Zipf head (the most popular fifth of the pool) is drawn
        // from the lower-left corner cell; the tail spans the region.
        let head = (pool_size / 5).max(1);
        let hot = Rect::from_coords(
            region.min.x,
            region.min.y,
            region.min.x + 0.25 * (region.max.x - region.min.x),
            region.min.y + 0.25 * (region.max.y - region.min.y),
        );
        let mut pool_pts = uniform_points(head, &hot, 0x507);
        pool_pts.extend(uniform_points(pool_size - head, &region, 0x7A11));
        let zipf = ZipfSampler::new(pool_size, zipf_s);
        let mut zrng = StdRng::seed_from_u64(0x5A4D);
        let qpoints: Vec<Point> = (0..n).map(|_| pool_pts[zipf.sample(&mut zrng)]).collect();

        let mut stable = Table::new(
            "shard axis (k = 2): Zipf-skewed scatter-gather over shards x replication",
            &[
                "shards",
                "repl",
                "qps",
                "rejected",
                "fallbacks",
                "gather prune",
                "replicas",
            ],
        );
        let mut s4_rejected = [0u64; 2];
        for shards in [1usize, 2, 4, 8] {
            for replication in [1usize, 2] {
                let config = ShardConfig::new()
                    .shards(shards)
                    .replication(replication)
                    .replication_warmup(16)
                    .serve(
                        ServeConfig::new()
                            .workers(1)
                            .queue_capacity(2)
                            .backpressure(Backpressure::Reject)
                            .cache(CacheConfig::disabled())
                            .batch_window(1),
                    );
                let router = ShardRouter::spawn(env.clone(), config);
                let t0 = Instant::now();
                std::thread::scope(|scope| {
                    for c in 0..clients {
                        let router = &router;
                        let qpoints = &qpoints;
                        scope.spawn(move || {
                            let mut i = c;
                            while i < qpoints.len() {
                                router
                                    .run(&Query::tnn(qpoints[i]).algorithm(Algorithm::HybridNn))
                                    .expect("shard-axis queries are valid");
                                i += clients;
                            }
                        });
                    }
                });
                let elapsed = t0.elapsed().as_nanos() as f64;
                let stats = router.shutdown(ShutdownMode::Drain);
                assert!(stats.conserved(), "shard axis lost tickets: {stats:?}");
                if shards >= 4 {
                    // The CI shard smoke gate: with the hot head in one
                    // corner of a >= 4-cell grid, the transitive bound
                    // must keep the gather out of distant sub-trees.
                    assert!(
                        stats.gather_prune_rate() > 0.0,
                        "sharded gather pruned nothing at {shards} shards: {stats:?}"
                    );
                }
                if shards == 4 {
                    s4_rejected[replication - 1] = stats.scatter_rejected;
                }
                let qps = n as f64 / (elapsed / 1e9);
                stable.push_row(vec![
                    shards.to_string(),
                    replication.to_string(),
                    format!("{qps:.0}"),
                    stats.scatter_rejected.to_string(),
                    stats.fallbacks.to_string(),
                    format!("{:.3}", stats.gather_prune_rate()),
                    stats.replicas_spawned.to_string(),
                ]);
                records.push((
                    format!("shard/zipf_{n}q/s{shards}_r{replication}"),
                    elapsed,
                    1,
                ));
                let key = format!("shard_s{shards}_r{replication}");
                derived.push((format!("{key}_qps"), qps));
                derived.push((format!("{key}_rejected"), stats.scatter_rejected as f64));
                derived.push((format!("{key}_fallbacks"), stats.fallbacks as f64));
                derived.push((format!("{key}_scatter_pruned"), stats.scatter_pruned as f64));
                derived.push((
                    format!("{key}_gather_prune_rate"),
                    stats.gather_prune_rate(),
                ));
                derived.push((format!("{key}_replicas"), stats.replicas_spawned as f64));
            }
        }
        println!("{}", format_table(&stable));
        derived.push((
            "shard_s4_reject_ratio_r1_over_r2".into(),
            s4_rejected[0] as f64 / s4_rejected[1].max(1) as f64,
        ));
    }

    // --- Chaos axis (k = 2, `--faults` only): a mixed-priority workload
    // through a faulted server. The submission sequence is single-
    // threaded so every fault draw lands on a deterministic job seq; the
    // plan carries channel drops + jitter, a periodic outage, one
    // injected engine panic, and two worker kills. The assertions below
    // ARE the CI chaos smoke gate: nothing may be lost, and the pool
    // must have died (worker_restarts > 0) and kept serving.
    if faults {
        let cpoints = points.min(2_000);
        let trees: Vec<Arc<RTree>> = (0..2)
            .map(|i| {
                let pts = uniform_points(cpoints, &region, 910 + i as u64);
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        let env = tnn_broadcast::MultiChannelEnv::new(trees, params, &[0, 0]);
        let cycle_lens: Vec<u64> = env
            .channels()
            .iter()
            .map(|c| c.layout().cycle_len())
            .collect();
        let n = env_usize("TNN_CHAOS_QUERIES", 300).max(64) as u64;
        let plan = FaultPlan::new(0xC7A05)
            .channel(0, ChannelFaults::NONE.drop_rate(80).jitter(2))
            .channel(1, ChannelFaults::NONE.outage(16, 2))
            .panic_at(2 * n / 3)
            .kill_at(n / 8)
            .kill_at(n / 3);
        let server = Server::spawn_with_faults(
            env,
            ServeConfig::new()
                .workers(2)
                .queue_capacity(64)
                .backpressure(Backpressure::Block)
                .cache(CacheConfig::disabled())
                .batch_window(4)
                .retry(
                    RetryPolicy::new()
                        .max_attempts(6)
                        .base(Duration::from_micros(50))
                        .cap(Duration::from_micros(500)),
                )
                .degradation(Degradation::Approximate),
            plan,
        );
        let tickets: Vec<_> = (0..n)
            .map(|i| {
                let class = Priority::ALL[i as usize % Priority::COUNT];
                let query = batch_query(&region, &cycle_lens, 0xFA17, i, Algorithm::HybridNn);
                server
                    .submit_with(query, Qos::new().priority(class))
                    .expect("Block admits everything")
            })
            .collect();
        let mut answered = 0u64;
        let mut internal = 0u64;
        for ticket in &tickets {
            match ticket.wait() {
                Ok(_) => answered += 1,
                // A kill abandoned the job mid-batch, or the injected
                // engine panic fired: resolved fail-closed, never lost.
                Err(TnnError::Internal) => internal += 1,
                Err(other) => panic!("unexpected chaos outcome {other:?}"),
            }
        }
        let fstats = server.fault_stats().expect("faulted spawn exposes stats");
        let stats = server.shutdown(ShutdownMode::Drain);
        assert!(
            stats.conserved(),
            "chaos axis broke conservation: {stats:?}"
        );
        assert_eq!(
            stats.submitted,
            stats.completed + stats.rejected + stats.shed + stats.cancelled + stats.expired,
            "chaos axis lost tickets: {stats:?}"
        );
        assert_eq!(answered + internal, n, "a ticket vanished: {stats:?}");
        assert_eq!(
            stats.completed, n,
            "Block + Drain must complete all: {stats:?}"
        );
        assert!(
            fstats.injected() > 0,
            "the chaos plan injected nothing: {fstats:?}"
        );
        assert_eq!(fstats.worker_kills, 2, "both kills must fire: {fstats:?}");
        assert_eq!(
            stats.worker_restarts, 2,
            "both killed workers must respawn in place: {stats:?}"
        );
        assert!(
            stats.retried > 0,
            "drops + outage must force retries: {stats:?}"
        );

        let mut ctable = Table::new(
            "chaos axis (k = 2): per-class server-side latency under injected faults",
            &[
                "class",
                "completed",
                "retried",
                "degraded",
                "p50 [ms]",
                "p99 [ms]",
            ],
        );
        for class in Priority::ALL {
            let c = stats.class(class);
            let name = match class {
                Priority::Interactive => "interactive",
                Priority::Batch => "batch",
                Priority::Background => "background",
            };
            ctable.push_row(vec![
                name.to_string(),
                c.completed.to_string(),
                c.retried.to_string(),
                c.degraded.to_string(),
                format!("{:.3}", c.latency.p50().as_secs_f64() * 1e3),
                format!("{:.3}", c.latency.p99().as_secs_f64() * 1e3),
            ]);
            derived.push((format!("chaos_{name}_completed"), c.completed as f64));
            derived.push((
                format!("chaos_{name}_p50_ms"),
                c.latency.p50().as_secs_f64() * 1e3,
            ));
            derived.push((
                format!("chaos_{name}_p99_ms"),
                c.latency.p99().as_secs_f64() * 1e3,
            ));
        }
        println!("{}", format_table(&ctable));
        eprintln!(
            "chaos axis: {} answered, {} internal, faults {fstats:?}",
            answered, internal
        );
        derived.push(("chaos_completed".into(), stats.completed as f64));
        derived.push(("chaos_internal_errors".into(), internal as f64));
        derived.push(("chaos_retried".into(), stats.retried as f64));
        derived.push(("chaos_degraded".into(), stats.degraded as f64));
        derived.push(("chaos_worker_restarts".into(), stats.worker_restarts as f64));
        derived.push(("chaos_injected_faults".into(), fstats.injected() as f64));
        derived.push(("chaos_drops".into(), fstats.drops as f64));
        derived.push(("chaos_outages".into(), fstats.outages as f64));
    }

    // --- Churn axis (k = 2, `--churn` only): environment swaps between
    // rounds of a skewed repeat-query workload through a caching,
    // singleflight server. Round 0 primes the cache; every later round
    // swaps in freshly rebuilt channel data first (epoch +1), so its
    // repeats would hit *stale* entries if cache keys ignored the
    // environment's identity. The asserts below ARE the CI churn smoke
    // gate: epochs must actually advance, the cache must be exercised,
    // and zero served answers may diverge from a fresh reference engine
    // over the then-current environment.
    if churn {
        let cpoints = points.min(3_000);
        let epochs = 4u64;
        let n = env_usize("TNN_CHURN_QUERIES", 240).max(32);
        let make_trees = |seed: u64| -> Vec<Arc<RTree>> {
            (0..2u64)
                .map(|i| {
                    let pts = uniform_points(cpoints, &region, seed + i);
                    Arc::new(
                        RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap(),
                    )
                })
                .collect()
        };
        let base_env = tnn_broadcast::MultiChannelEnv::new(make_trees(0xE9_0000), params, &[0, 0]);
        // A small pool with many repeats: every round re-offers the same
        // query bytes, the exact workload a stale cache would poison.
        let pool_n = (n / 4).max(1);
        let pool_pts = uniform_points(pool_n, &region, 0x000C_09CE);
        let workload: Vec<Query> = (0..n)
            .map(|i| {
                Query::tnn(pool_pts[i % pool_n])
                    .algorithm(Algorithm::HybridNn)
                    .issued_at(3)
            })
            .collect();
        let server = Server::spawn(
            base_env.clone(),
            ServeConfig::new()
                .workers(2)
                .queue_capacity(n)
                .backpressure(Backpressure::Block)
                .cache(CacheConfig::new().capacity(2 * pool_n))
                .singleflight(true)
                .batch_window(8),
        );
        let mut env = base_env.clone();
        let mut stale = 0u64;
        let t0 = Instant::now();
        for round in 0..epochs {
            if round > 0 {
                env = env.advance(make_trees(0xE9_0000 + 0x101 * round));
                server.swap_env(env.clone()).expect("swap keeps the shape");
            }
            let reference = tnn_core::QueryEngine::new(env.clone());
            // Two passes per round: the first runs cold at this epoch
            // (repeats coalesce behind their leader), the second repeats
            // the same bytes against a now-warm cache — the exact path a
            // stale entry would poison.
            for _pass in 0..2 {
                let tickets = server.submit_batch(workload.to_vec());
                for (ticket, query) in tickets.into_iter().zip(&workload) {
                    let got = ticket
                        .expect("Block admits everything")
                        .wait()
                        .expect("churn queries are valid");
                    let want = reference.run(query).expect("churn queries are valid");
                    stale += (got != want) as u64;
                }
            }
        }
        let elapsed = t0.elapsed().as_nanos() as f64;
        let final_epoch = server.engine().env().epoch();
        let stats = server.shutdown(ShutdownMode::Drain);
        assert!(stats.conserved(), "churn axis lost tickets: {stats:?}");
        assert_eq!(
            final_epoch,
            base_env.epoch() + (epochs - 1),
            "every swap must bump the epoch: {stats:?}"
        );
        assert_eq!(
            stale, 0,
            "served answers diverged from the current environment \
             (stale cache entries survived a swap): {stats:?}"
        );
        assert!(
            stats.cache_hits > 0,
            "churn workload never exercised the cache: {stats:?}"
        );
        let qps = (epochs as usize * 2 * n) as f64 / (elapsed / 1e9);
        eprintln!(
            "churn axis: {} rounds x 2 x {n} queries at {qps:.0} q/s, epoch {final_epoch}, \
             {} hits / {} misses / {} coalesced, 0 stale",
            epochs, stats.cache_hits, stats.cache_misses, stats.cache_coalesced
        );
        records.push((format!("churn/hybrid_{n}q_x{epochs}"), elapsed, 1));
        derived.push(("churn_epoch_bumps".into(), (epochs - 1) as f64));
        derived.push(("churn_stale_answers".into(), stale as f64));
        derived.push(("churn_qps".into(), qps));
        derived.push(("churn_cache_hits".into(), stats.cache_hits as f64));
        derived.push(("churn_cache_coalesced".into(), stats.cache_coalesced as f64));
    }

    // --- Trace axis (k = 2, `--trace` only): a skewed repeat-query
    // workload through a traced, caching server. The asserts below ARE
    // the CI observability smoke gate: the flight recorder must retain
    // retrievable traces, stamped spans must reconcile with the
    // recorded end-to-end latency at histogram (log2-bucket)
    // resolution, and the rendered Prometheus snapshot must conserve
    // the completion count.
    if trace_axis {
        let tpoints = points.min(2_000);
        let trees: Vec<Arc<RTree>> = (0..2)
            .map(|i| {
                let pts = uniform_points(tpoints, &region, 1_310 + i as u64);
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        let env = tnn_broadcast::MultiChannelEnv::new(trees, params, &[0, 0]);
        let cycle_lens: Vec<u64> = env
            .channels()
            .iter()
            .map(|c| c.layout().cycle_len())
            .collect();
        let n = env_usize("TNN_TRACE_QUERIES", 300).max(64);
        // A small pool with many repeats, so the dequeue-time cache
        // probe sees both misses (leaders) and hits (repeats queued
        // behind them) — CacheProbe spans on both sides.
        let pool_n = (n / 4).max(1);
        let tpool: Vec<Query> = (0..pool_n as u64)
            .map(|i| batch_query(&region, &cycle_lens, 0x7_AACE, i, Algorithm::HybridNn))
            .collect();
        let server = Server::spawn(
            env,
            ServeConfig::new()
                .workers(2)
                .queue_capacity(n)
                .backpressure(Backpressure::Block)
                .cache(CacheConfig::new().capacity(2 * pool_n))
                .batch_window(8)
                .trace(TraceConfig::on()),
        );
        let workload: Vec<Query> = (0..n).map(|i| tpool[i % pool_n].clone()).collect();
        for ticket in server.submit_batch(workload) {
            ticket
                .expect("Block admits everything")
                .wait()
                .expect("trace-axis queries are valid");
        }
        let recorder = server.recorder().expect("tracing is on");
        assert!(recorder.recorded() > 0, "no traces recorded");
        let slowest = recorder.slowest();
        assert!(!slowest.is_empty(), "flight recorder retained nothing");
        let bucket = |d: Duration| {
            let us = d.as_micros().max(1) as u64;
            63 - us.leading_zeros()
        };
        for t in &slowest {
            assert!(!t.spans.is_empty(), "retained trace has no spans: {t:?}");
            // Sub-16 µs totals are dominated by the measurement seams
            // between layers; everything slower must be explained by
            // its spans to within one log2 bucket.
            if t.total < Duration::from_micros(16) {
                continue;
            }
            assert!(
                bucket(t.span_sum()).abs_diff(bucket(t.total)) <= 1,
                "span sum {:?} does not reconcile with total {:?}: {t:?}",
                t.span_sum(),
                t.total,
            );
        }
        // Publish only after shutdown: workers book their counters in
        // micro-batches *after* resolving tickets, so a snapshot taken
        // right after the last wait() can lag the final fold by up to
        // one batch_window.
        let stats = server.shutdown(ShutdownMode::Drain);
        assert!(stats.conserved(), "trace axis lost tickets: {stats:?}");
        let registry = MetricsRegistry::new();
        server.publish_metrics(&registry);
        let text = registry.render_prometheus();
        // Parse the snapshot back: the per-class completion counters
        // must conserve the server's own completion count.
        let completed_sum: u64 = text
            .lines()
            .filter(|l| l.starts_with("tnn_serve_completed_total{"))
            .map(|l| {
                l.rsplit(' ')
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .expect("counter samples are integers")
            })
            .sum();
        assert_eq!(
            completed_sum, stats.completed,
            "rendered snapshot diverges from the stats fold"
        );
        assert!(
            text.contains("tnn_trace_recorded_total"),
            "recorder series missing from the snapshot:\n{text}"
        );
        let head = &slowest[0];
        eprintln!(
            "trace axis: recorded={} retained={} | slowest seq={} total={:?} attempts={} \
             visits={} peak_queue={} spans={:?}",
            recorder.recorded(),
            recorder.len(),
            head.seq,
            head.total,
            head.attempts,
            head.node_visits,
            head.peak_queue,
            head.spans,
        );
        derived.push(("trace_recorded".into(), recorder.recorded() as f64));
        derived.push(("trace_retained".into(), recorder.len() as f64));
        derived.push(("trace_slowest_ms".into(), head.total.as_secs_f64() * 1e3));
        derived.push(("trace_cache_hits".into(), stats.cache_hits as f64));
    }

    let shard_note = if shards_axis {
        "; k=2 shard axis (ShardRouter scatter-gather over shards {1,2,4,8} x replication \
         {1,2}, corner-skewed Zipf traffic, 4 concurrent clients, 1-worker 2-slot Reject \
         replicas)"
    } else {
        ""
    };
    let chaos_note = if faults {
        "; k=2 chaos axis (faulted 2-worker server: drops+jitter on channel 0, periodic \
         outage on channel 1, 1 injected engine panic, 2 worker kills, Approximate \
         degradation, mixed priority classes)"
    } else {
        ""
    };
    let churn_note = if churn {
        "; k=2 churn axis (caching singleflight server, full-data environment swap per \
         round, every answer checked against a fresh reference engine on the current epoch)"
    } else {
        ""
    };
    let trace_note = if trace_axis {
        "; k=2 trace axis (traced caching server: flight-recorder retention, span-vs-total \
         reconciliation at log2-bucket resolution, Prometheus snapshot conservation)"
    } else {
        ""
    };
    let path = std::path::PathBuf::from(format!("BENCH_{tag}.json"));
    write_bench_json(
        &path,
        &tag,
        &format!(
            "tnn-serve QoS load generator: HybridNn closed loop (1 worker, cache off) vs \
             run_tnn_batch; open-loop Poisson arrivals at 70% capacity over all four \
             algorithms ({open_workers} workers, Reject); Zipf({zipf_s}) repeat-query cache \
             axis over a {pool_size}-query pool (cold cached vs uncached server); \
             k=2 deadline-miss axis (Shed expired-first vs oldest-first, saturating \
             mixed-TTL bursts); k=2 batch_window x queue_capacity ablation{shard_note}{chaos_note}{churn_note}{trace_note}; \
             {queries} queries/batch, {points} uniform points per channel, page 64, \
             paper region"
        ),
        &records,
        &derived,
    )
    .expect("write BENCH json");
    eprintln!("serve_load: wrote {}", path.display());
}
