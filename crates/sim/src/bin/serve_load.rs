//! Load generator for the `tnn-serve` front-end: measures serving
//! throughput and latency percentiles against the batch-runner ceiling
//! and writes a `BENCH_<tag>.json` trajectory point.
//!
//! Two phases per channel count (k = 2, 3, 4 by default, override with
//! positional arguments):
//!
//! 1. **Closed loop** — the run_tnn_batch workload (Hybrid-NN, identical
//!    per-query rng streams) pushed through a 1-worker server via
//!    `submit_batch`; its throughput is compared against a direct
//!    `run_tnn_batch` of the same queries (the serving overhead must be
//!    small — the acceptance gate wants the 1-worker path within 15% on
//!    a single-CPU host).
//! 2. **Open loop** — Poisson-ish arrivals (exponential inter-arrival
//!    times drawn from the rand shim) at ~70% of the measured capacity,
//!    mixing **all four algorithms**, against a multi-worker server with
//!    the `Reject` policy; per-query latency comes from
//!    `Ticket::latency()` (stamped at resolution) and is reported as
//!    p50/p99.
//!
//! ```sh
//! cargo run --release -p tnn-sim --bin serve_load -- --tag pr4 2 3 4
//! ```
//!
//! Environment knobs: `TNN_QUERIES` (closed-loop batch size, default
//! 1,000), `TNN_LOAD_POINTS` (points per channel, default 10,000),
//! `TNN_LOAD_SECS` (open-loop duration per k, default 2), and
//! `TNN_BENCH_REPS` (min-of-reps for the closed loop, default 3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, Query, TnnConfig};
use tnn_datasets::{paper_region, uniform_points};
use tnn_geom::Rect;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{Backpressure, ServeConfig, Server, ShutdownMode};
use tnn_sim::{format_table, run_tnn_batch, BatchConfig, Table};

const SEED_GAMMA: u64 = 0x9E3779B97F4A7C15;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The exact per-query workload of `run_tnn_batch`'s `run_one`: point
/// and per-channel phases from the seed-premixed per-query stream, so
/// the served batch is the batch runner's workload query for query.
fn batch_query(
    region: &Rect,
    cycle_lens: &[u64],
    seed: u64,
    index: u64,
    algorithm: Algorithm,
) -> Query {
    let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(SEED_GAMMA));
    let p = tnn_geom::Point::new(
        rng.gen_range(region.min.x..=region.max.x),
        rng.gen_range(region.min.y..=region.max.y),
    );
    let phases: Vec<u64> = cycle_lens
        .iter()
        .map(|&len| rng.gen_range(0..len.max(1)))
        .collect();
    Query::tnn(p).algorithm(algorithm).phases(&phases)
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Minimal `BENCH_*.json` writer (format-identical to
/// `tnn-bench::write_bench_json`; duplicated here because `tnn-bench`
/// depends on this crate).
fn write_bench_json(
    path: &std::path::Path,
    tag: &str,
    workload: &str,
    records: &[(String, f64, u64)],
    derived: &[(String, f64)],
) -> std::io::Result<()> {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"tag\": \"{}\",", esc(tag))?;
    writeln!(f, "  \"workload\": \"{}\",", esc(workload))?;
    writeln!(f, "  \"benchmarks\": [")?;
    for (i, (id, ns, iters)) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"id\": \"{}\", \"ns_per_iter\": {ns:.1}, \"iters\": {iters}}}{comma}",
            esc(id)
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"derived\": {{")?;
    for (i, (k, v)) in derived.iter().enumerate() {
        let comma = if i + 1 < derived.len() { "," } else { "" };
        writeln!(f, "    \"{}\": {v:.4}{comma}", esc(k))?;
    }
    writeln!(f, "  }}")?;
    writeln!(f, "}}")
}

fn main() {
    let mut tag = String::from("pr4");
    let mut ks: Vec<usize> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--tag" {
            tag = args.next().expect("--tag needs a value");
        } else if let Ok(k) = arg.parse::<usize>() {
            assert!(k >= 2, "TNN needs at least two channels");
            ks.push(k);
        } else {
            panic!("unknown argument {arg:?} (usage: serve_load [--tag T] [k...])");
        }
    }
    if ks.is_empty() {
        ks = vec![2, 3, 4];
    }
    let queries = env_usize("TNN_QUERIES", 1_000);
    let points = env_usize("TNN_LOAD_POINTS", 10_000);
    let open_secs = env_f64("TNN_LOAD_SECS", 2.0);
    let reps = env_usize("TNN_BENCH_REPS", 3).max(1);
    let open_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "serve_load: {queries} queries/batch over {points} points/channel, k = {ks:?}, \
         {reps} reps, {open_secs} s open loop ({open_workers} workers)"
    );

    let params = BroadcastParams::new(64);
    let region = paper_region();
    let mut table = Table::new(
        "tnn-serve load: closed-loop vs batch runner, open-loop latency",
        &[
            "k",
            "batch [q/s]",
            "serve 1w [q/s]",
            "serve/batch",
            "offered [q/s]",
            "p50 [ms]",
            "p99 [ms]",
            "rejected",
        ],
    );
    let mut records: Vec<(String, f64, u64)> = Vec::new();
    let mut derived: Vec<(String, f64)> = Vec::new();

    for &k in &ks {
        let trees: Vec<Arc<RTree>> = (0..k)
            .map(|i| {
                let pts = uniform_points(points, &region, 10 + i as u64);
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        let seed = 0xF19 + k as u64;
        let cfg = BatchConfig {
            params,
            tnn: TnnConfig::exact_for(Algorithm::HybridNn, k),
            queries,
            seed,
            check_oracle: false,
        };

        // --- Closed loop: direct batch runner (the throughput ceiling).
        run_tnn_batch(&trees, &region, &cfg); // warm-up
        let mut batch_ns = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            std::hint::black_box(run_tnn_batch(&trees, &region, &cfg));
            batch_ns = batch_ns.min(t0.elapsed().as_nanos() as f64);
        }
        let batch_qps = queries as f64 / (batch_ns / 1e9);

        // --- Closed loop: the same workload through a 1-worker server.
        let env = tnn_broadcast::MultiChannelEnv::new(trees.clone(), params, &vec![0; k]);
        let cycle_lens: Vec<u64> = env
            .channels()
            .iter()
            .map(|c| c.layout().cycle_len())
            .collect();
        let workload: Vec<Query> = (0..queries as u64)
            .map(|i| batch_query(&region, &cycle_lens, seed, i, Algorithm::HybridNn))
            .collect();
        let server = Server::spawn(
            env.clone(),
            ServeConfig::new()
                .workers(1)
                .queue_capacity(queries)
                .backpressure(Backpressure::Block)
                .batch_window(32),
        );
        let mut serve_ns = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let tickets = server.submit_batch(workload.iter().cloned());
            // Wait in reverse submission order: completions are FIFO, so
            // blocking on the *last* ticket sleeps exactly once instead
            // of ping-ponging worker and collector on every resolve.
            for ticket in tickets.into_iter().rev() {
                ticket
                    .expect("capacity covers the batch")
                    .wait()
                    .expect("closed-loop queries are valid");
            }
            serve_ns = serve_ns.min(t0.elapsed().as_nanos() as f64);
        }
        let stats = server.shutdown(ShutdownMode::Drain);
        assert!(stats.conserved(), "closed loop lost tickets: {stats:?}");
        let serve_qps = queries as f64 / (serve_ns / 1e9);
        let ratio = serve_qps / batch_qps;

        // --- Open loop: Poisson-ish arrivals at ~70% capacity, all four
        // algorithms, multi-worker, Reject backpressure.
        let server = Server::spawn(
            env,
            ServeConfig::new()
                .workers(open_workers)
                .queue_capacity(256)
                .backpressure(Backpressure::Reject)
                .batch_window(16),
        );
        let rate = (serve_qps * 0.7).max(1.0); // arrivals per second
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_A5A5);
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        let mut offered = 0u64;
        let t0 = Instant::now();
        let mut next_arrival = Duration::ZERO;
        while next_arrival.as_secs_f64() < open_secs {
            // Exponential inter-arrival gap (guard u = 0 → ln(0)).
            let u: f64 = rng.gen::<f64>().max(1e-12);
            next_arrival += Duration::from_secs_f64((-u.ln() / rate).min(open_secs));
            while t0.elapsed() < next_arrival {
                std::thread::sleep(Duration::from_micros(50));
            }
            let alg = match rng.gen_range(0u32..4) {
                0 => Algorithm::WindowBased,
                1 => Algorithm::ApproximateTnn,
                2 => Algorithm::DoubleNn,
                _ => Algorithm::HybridNn,
            };
            offered += 1;
            match server.submit(batch_query(
                &region,
                &cycle_lens,
                seed ^ 0x0BE1,
                offered,
                alg,
            )) {
                Ok(t) => tickets.push(t),
                Err(_) => rejected += 1,
            }
        }
        let stats = server.shutdown(ShutdownMode::Drain);
        assert!(stats.conserved(), "open loop lost tickets: {stats:?}");
        let mut latencies: Vec<Duration> = tickets
            .iter()
            .map(|t| t.latency().expect("drained tickets are resolved"))
            .collect();
        latencies.sort_unstable();
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);

        table.push_row(vec![
            k.to_string(),
            format!("{batch_qps:.0}"),
            format!("{serve_qps:.0}"),
            format!("{ratio:.3}"),
            format!("{rate:.0}"),
            format!("{:.3}", p50.as_secs_f64() * 1e3),
            format!("{:.3}", p99.as_secs_f64() * 1e3),
            rejected.to_string(),
        ]);
        records.push((
            format!("serve/hybrid_{queries}q/k{k}_batch"),
            batch_ns,
            reps as u64,
        ));
        records.push((
            format!("serve/hybrid_{queries}q/k{k}_serve_1w"),
            serve_ns,
            reps as u64,
        ));
        derived.push((format!("k{k}_batch_qps"), batch_qps));
        derived.push((format!("k{k}_serve_1w_qps"), serve_qps));
        derived.push((format!("k{k}_serve_vs_batch"), ratio));
        derived.push((format!("k{k}_open_offered_qps"), rate));
        derived.push((format!("k{k}_open_completed"), latencies.len() as f64));
        derived.push((format!("k{k}_open_rejected"), rejected as f64));
        derived.push((format!("k{k}_open_p50_ms"), p50.as_secs_f64() * 1e3));
        derived.push((format!("k{k}_open_p99_ms"), p99.as_secs_f64() * 1e3));
    }

    println!("{}", format_table(&table));
    let path = std::path::PathBuf::from(format!("BENCH_{tag}.json"));
    write_bench_json(
        &path,
        &tag,
        &format!(
            "tnn-serve load generator: HybridNn closed loop (1 worker, batch_window 32) vs \
             run_tnn_batch, plus open-loop Poisson arrivals at 70% capacity over all four \
             algorithms ({open_workers} workers, Reject policy); {queries} queries/batch, \
             {points} uniform points per channel, page 64, paper region"
        ),
        &records,
        &derived,
    )
    .expect("write BENCH json");
    eprintln!("serve_load: wrote {}", path.display());
}
