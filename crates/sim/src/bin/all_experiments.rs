//! Regenerates every table and figure of the paper's evaluation plus the
//! ablations, printing results and writing CSVs under `results/`
//! (override with `TNN_OUT`).

#![forbid(unsafe_code)]
// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;
use tnn_sim::experiments::{ablations, fig11, fig12, fig13, fig9, table3, Context};

fn main() {
    let ctx = Context::from_env();
    eprintln!(
        "all-experiments: {} queries per configuration, seed {:#x}, output to {}",
        ctx.queries,
        ctx.seed,
        ctx.out_dir.display()
    );
    let t0 = Instant::now();

    for (name, tables) in [
        ("fig9", fig9::run(&ctx)),
        ("fig11", fig11::run(&ctx)),
        ("fig12", fig12::run(&ctx)),
        ("fig13", fig13::run(&ctx)),
    ] {
        for (i, table) in tables.into_iter().enumerate() {
            ctx.emit(&table, &format!("{name}{}", char::from(b'a' + i as u8)));
        }
        eprintln!("[all-experiments] {name} done at {:.1?}", t0.elapsed());
    }
    for (i, table) in table3::run(&ctx).into_iter().enumerate() {
        let name = if i == 0 {
            "table3".into()
        } else {
            format!("table3_control{i}")
        };
        ctx.emit(&table, &name);
    }
    eprintln!("[all-experiments] table3 done at {:.1?}", t0.elapsed());
    for (i, table) in ablations::run(&ctx).into_iter().enumerate() {
        ctx.emit(&table, &format!("ablation{}", i + 1));
    }
    eprintln!(
        "[all-experiments] all experiments finished in {:.1?}",
        t0.elapsed()
    );
}
