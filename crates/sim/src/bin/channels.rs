//! k-channel smoke runner: executes one oracle-checked TNN batch per
//! `(k, algorithm)` combination over k = 2, 3, 4 broadcast channels and
//! prints the cost table — the CI gate for the k-ary pipeline
//! generalization. Pass explicit channel counts as arguments
//! (`channels 2 3 4`); `TNN_QUERIES` / `TNN_SEED` control the batch.

#![forbid(unsafe_code)]

use std::sync::Arc;
use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, TnnConfig};
use tnn_datasets::paper_region;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_sim::experiments::Context;
use tnn_sim::{run_tnn_batch, BatchConfig, Table};

fn main() {
    let ctx = Context::from_env();
    let ks: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![2, 3, 4]
        } else {
            args
        }
    };
    eprintln!(
        "channels: {} queries per configuration over k = {ks:?} (TNN_QUERIES to change)",
        ctx.queries
    );
    let params = BroadcastParams::new(64);
    let region = paper_region();
    let mut table = Table::new(
        "k-channel smoke: oracle-checked TNN batches per channel count",
        &[
            "k",
            "algorithm",
            "mean access [pages]",
            "mean tune-in [pages]",
            "fail rate",
        ],
    );
    for &k in &ks {
        assert!(k >= 2, "TNN needs at least two channels");
        let trees: Vec<Arc<RTree>> = (0..k)
            .map(|i| {
                let pts = tnn_datasets::unif(-5.4, 0x9000 + i as u64);
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        for alg in [
            Algorithm::WindowBased,
            Algorithm::DoubleNn,
            Algorithm::HybridNn,
        ] {
            let cfg = BatchConfig {
                params,
                tnn: TnnConfig::exact_for(alg, k),
                queries: ctx.queries,
                seed: ctx.seed,
                check_oracle: true,
            };
            let stats = run_tnn_batch(&trees, &region, &cfg);
            assert_eq!(
                stats.fail_rate,
                0.0,
                "{} must stay exact at k = {k}",
                alg.name()
            );
            table.push_row(vec![
                k.to_string(),
                alg.name().into(),
                format!("{:.1}", stats.mean_access),
                format!("{:.1}", stats.mean_tune_in),
                format!("{:.4}", stats.fail_rate),
            ]);
        }
    }
    ctx.emit(&table, "channels_smoke");
}
