//! One-shot Prometheus snapshot of a live serving stack: spins up a
//! traced, caching, faulted [`tnn_serve::Server`] and a
//! [`tnn_shard::ShardRouter`] over small uniform environments, pushes a
//! short mixed workload through both, publishes every layer's stats
//! into one [`tnn_serve::MetricsRegistry`], and prints the rendered
//! text exposition to stdout — the quickest way to eyeball the full
//! metric surface (`tnn_serve_*`, `tnn_cache_*`, `tnn_faults_*`,
//! `tnn_shard_*`, `tnn_trace_*`) or to diff it in CI.
//!
//! ```sh
//! cargo run -p tnn-sim --bin metrics_dump
//! ```
//!
//! Environment knobs: `TNN_DUMP_POINTS` (points per channel, default
//! 1,500) and `TNN_DUMP_QUERIES` (queries per layer, default 120).

#![forbid(unsafe_code)]
// R1-approved timing module (see check/r1.allow): this binary reads no
// clock itself, but keep the posture explicit and uniform with its
// siblings.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{Algorithm, Query};
use tnn_datasets::{paper_region, uniform_points};
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{
    Backpressure, CacheConfig, ChannelFaults, FaultPlan, MetricsRegistry, RetryPolicy, ServeConfig,
    Server, ShutdownMode, TraceConfig,
};
use tnn_shard::{ShardConfig, ShardRouter};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_env(points: usize, seed: u64) -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let region = paper_region();
    let trees: Vec<Arc<RTree>> = (0..2)
        .map(|i| {
            let pts = uniform_points(points, &region, seed + i as u64);
            Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    MultiChannelEnv::new(trees, params, &[0, 0])
}

fn main() {
    let points = env_usize("TNN_DUMP_POINTS", 1_500).max(32);
    let queries = env_usize("TNN_DUMP_QUERIES", 120).max(8);
    let region = paper_region();
    let qpoints = uniform_points(queries, &region, 0xD0_0D);
    let registry = MetricsRegistry::new();

    // A traced, caching server under a light fault plan: exercises the
    // serve, cache, fault, and trace metric families in one pass. The
    // repeat-heavy workload (every point offered twice) guarantees
    // cache traffic.
    let server = Server::spawn_with_faults(
        build_env(points, 0xA11CE),
        ServeConfig::new()
            .workers(2)
            .queue_capacity(2 * queries)
            .backpressure(Backpressure::Block)
            .cache(CacheConfig::new().capacity(queries))
            .batch_window(8)
            .retry(RetryPolicy::new().max_attempts(4))
            .trace(TraceConfig::on()),
        FaultPlan::new(0xD0_5E).all_channels(2, ChannelFaults::NONE.drop_rate(60).jitter(1)),
    );
    let workload: Vec<Query> = qpoints
        .iter()
        .chain(qpoints.iter())
        .map(|&p| Query::tnn(p).algorithm(Algorithm::HybridNn))
        .collect();
    for ticket in server.submit_batch(workload) {
        ticket
            .expect("Block admits everything")
            .wait()
            .expect("dump queries are valid");
    }
    // Shutdown first: workers book counters in micro-batches after
    // resolving tickets, so the pre-shutdown fold can lag the truth.
    let stats = server.shutdown(ShutdownMode::Drain);
    assert!(stats.conserved(), "dump server lost tickets: {stats:?}");
    server.publish_metrics(&registry);

    // A traced shard router over its own environment: adds the
    // tnn_shard_* family (the router's serve fold lands in the same
    // tnn_serve_* series — published last, it overwrites the
    // single-server values above with the fleet fold; run the dump
    // twice with one layer disabled to separate them).
    let router = ShardRouter::spawn(
        build_env(points, 0xB0B),
        ShardConfig::new()
            .shards(4)
            .serve(ServeConfig::new().workers(1).trace(TraceConfig::on())),
    );
    for &p in &qpoints {
        router
            .run(&Query::tnn(p).algorithm(Algorithm::HybridNn))
            .expect("dump queries are valid");
    }
    let shard_stats = router.shutdown(ShutdownMode::Drain);
    assert!(
        shard_stats.conserved(),
        "dump router lost tickets: {shard_stats:?}"
    );
    router.publish_metrics(&registry);

    let text = registry.render_prometheus();
    // The one-line smoke contract CI leans on: every layer's family
    // must be present in a single snapshot.
    for family in [
        "tnn_serve_completed_total",
        "tnn_serve_latency_bucket",
        "tnn_cache_hits_total",
        "tnn_faults_drops_total",
        "tnn_shard_queries_total",
        "tnn_trace_recorded_total",
    ] {
        assert!(text.contains(family), "missing family {family}:\n{text}");
    }
    print!("{text}");
    eprintln!(
        "metrics_dump: {} series over {} queries x 2 layers",
        registry.len(),
        queries
    );
}
