//! Runs the design ablations (traversal order, packing, interleaving,
//! page capacity, α policy, chained TNN).

#![forbid(unsafe_code)]

use tnn_sim::experiments::{ablations, Context};

fn main() {
    let ctx = Context::from_env();
    eprintln!(
        "ablations: {} queries per configuration (TNN_QUERIES to change)",
        ctx.queries
    );
    for (i, table) in ablations::run(&ctx).into_iter().enumerate() {
        let name = format!("ablation{}", i + 1);
        ctx.emit(&table, &name);
    }
}
