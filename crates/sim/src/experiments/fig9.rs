//! **Figure 9 — access time** (paper §6.1.1).
//!
//! Four panels, all reporting mean access time (pages) of the four
//! algorithms with exact search:
//!
//! * (a) `size(S) = 10,000` fixed, `size(R)` sweeping the size family;
//! * (b) `size(R) = 10,000` fixed, `size(S)` sweeping;
//! * (c) `S = UNIF(−5.8)`, `R` sweeping the density family;
//! * (d) `S = UNIF(−5.0)`, `R` sweeping the density family.
//!
//! Expected shape: Approximate-TNN lowest (no estimate phase); Double-NN
//! = Hybrid-NN, both below Window-Based by ~7–15% when the sizes are
//! within `[1/40, 1.8×]` of each other, converging outside that band.

use super::{f1, Context};
use crate::{DatasetSpec, Table};
use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, TnnConfig};
use tnn_datasets::SIZE_FAMILY;

const ALGOS: [Algorithm; 4] = [
    Algorithm::WindowBased,
    Algorithm::ApproximateTnn,
    Algorithm::DoubleNn,
    Algorithm::HybridNn,
];

fn header() -> Vec<&'static str> {
    let mut h = vec!["sweep"];
    h.extend(ALGOS.iter().map(|a| a.name()));
    h
}

fn panel(
    ctx: &Context,
    title: &str,
    sweep: impl Iterator<Item = (String, DatasetSpec, DatasetSpec)>,
) -> Table {
    let params = BroadcastParams::new(64);
    let mut table = Table::new(title, &header());
    for (label, s, r) in sweep {
        let mut row = vec![label];
        for alg in ALGOS {
            let stats = ctx.batch(s, r, params, TnnConfig::exact(alg), false);
            row.push(f1(stats.mean_access));
        }
        table.push_row(row);
    }
    table
}

/// Runs all four panels.
pub fn run(ctx: &Context) -> Vec<Table> {
    let a = panel(
        ctx,
        "Fig 9(a): access time, size(S)=10,000, size(R) sweep [pages]",
        SIZE_FAMILY.iter().map(|&n| {
            (
                n.to_string(),
                DatasetSpec::SizeS(10_000),
                DatasetSpec::SizeR(n),
            )
        }),
    );
    let b = panel(
        ctx,
        "Fig 9(b): access time, size(R)=10,000, size(S) sweep [pages]",
        SIZE_FAMILY.iter().map(|&n| {
            (
                n.to_string(),
                DatasetSpec::SizeS(n),
                DatasetSpec::SizeR(10_000),
            )
        }),
    );
    let c = panel(
        ctx,
        "Fig 9(c): access time, S=UNIF(-5.8), R density sweep [pages]",
        DatasetSpec::UNIF_TENTHS.iter().map(|&t| {
            (
                format!("UNIF({:.1})", t as f64 / 10.0),
                DatasetSpec::UnifS(-58),
                DatasetSpec::UnifR(t),
            )
        }),
    );
    let d = panel(
        ctx,
        "Fig 9(d): access time, S=UNIF(-5.0), R density sweep [pages]",
        DatasetSpec::UNIF_TENTHS.iter().map(|&t| {
            (
                format!("UNIF({:.1})", t as f64 / 10.0),
                DatasetSpec::UnifS(-50),
                DatasetSpec::UnifR(t),
            )
        }),
    );
    vec![a, b, c, d]
}
