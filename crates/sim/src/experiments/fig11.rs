//! **Figure 11 — tune-in time vs. density** (paper §6.1.2).
//!
//! Mean tune-in time (pages) of Window-Based, Double-NN and Hybrid-NN
//! with exact search, sweeping `R`'s density for three fixed `S`:
//!
//! * (a) `S = UNIF(−4.2)` (dense S: `size(S) ≥ 0.4·size(R)` mostly —
//!   Double ≈ Window, Hybrid pays for its smaller range);
//! * (b) `S = UNIF(−5.0)` (the sweet band `0.01 ≤ size(S)/size(R) ≤ 0.4`
//!   appears at the dense end of the sweep — Hybrid wins there);
//! * (c) `S = UNIF(−7.0)` (tiny S: `size(S) < 0.01·size(R)` at the dense
//!   end — Window-Based wins);
//! * (d) `S = UNIF(−5.0)` including Approximate-TNN, whose formula-based
//!   range inflates tune-in dramatically.

use super::{f1, Context};
use crate::{DatasetSpec, Table};
use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, TnnConfig};

fn panel(ctx: &Context, title: &str, s_tenths: i32, include_approx: bool) -> Table {
    let params = BroadcastParams::new(64);
    let mut algos = vec![
        Algorithm::WindowBased,
        Algorithm::DoubleNn,
        Algorithm::HybridNn,
    ];
    if include_approx {
        algos.push(Algorithm::ApproximateTnn);
    }
    let mut header = vec!["R density"];
    header.extend(algos.iter().map(|a| a.name()));
    let mut table = Table::new(title, &header);
    for &t in &DatasetSpec::UNIF_TENTHS {
        let mut row = vec![format!("UNIF({:.1})", t as f64 / 10.0)];
        for &alg in &algos {
            let stats = ctx.batch(
                DatasetSpec::UnifS(s_tenths),
                DatasetSpec::UnifR(t),
                params,
                TnnConfig::exact(alg),
                false,
            );
            row.push(f1(stats.mean_tune_in));
        }
        table.push_row(row);
    }
    table
}

/// Runs all four panels.
pub fn run(ctx: &Context) -> Vec<Table> {
    vec![
        panel(
            ctx,
            "Fig 11(a): tune-in time, S=UNIF(-4.2), R density sweep [pages]",
            -42,
            false,
        ),
        panel(
            ctx,
            "Fig 11(b): tune-in time, S=UNIF(-5.0), R density sweep [pages]",
            -50,
            false,
        ),
        panel(
            ctx,
            "Fig 11(c): tune-in time, S=UNIF(-7.0), R density sweep [pages]",
            -70,
            false,
        ),
        panel(
            ctx,
            "Fig 11(d): tune-in time incl. Approximate-TNN, S=UNIF(-5.0) [pages]",
            -50,
            true,
        ),
    ]
}
