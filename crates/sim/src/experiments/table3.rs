//! **Table 3 — Approximate-TNN fail rate by distribution combination**
//! (paper §6.3).
//!
//! A query *fails* when Approximate-TNN returns no pair (empty candidate
//! set) or a sub-optimal pair (checked against the exact oracle). Fail
//! rates are averaged over the page capacities {64, 128, 256, 512} and,
//! for the mixed combinations, over the eight uniform datasets — the
//! paper's protocol ("we use CITY dataset and change the eight uniform
//! ones … average fail rates are calculated").
//!
//! Paper reference values: uni-uni 0%, uni-real 9.08%, real-uni 9.08%,
//! real-real 43.2%. The real datasets here are clustered stand-ins (see
//! DESIGN.md), so the expectation is the *shape*: zero for uniform pairs,
//! moderate for mixed, large for real-real.
//!
//! A second table confirms the paper's side claim that "Double-NN and
//! Hybrid-NN never fail".

use super::{pct, Context};
use crate::{DatasetSpec, Table};
use tnn_broadcast::{BroadcastParams, PAGE_CAPACITIES};
use tnn_core::{Algorithm, TnnConfig};

/// The four distribution combinations, each as a list of (S, R) pairs.
fn combos() -> Vec<(&'static str, Vec<(DatasetSpec, DatasetSpec)>)> {
    let uni_uni: Vec<_> = DatasetSpec::UNIF_TENTHS
        .iter()
        .map(|&t| (DatasetSpec::UnifS(t), DatasetSpec::UnifR(t)))
        .collect();
    let uni_real: Vec<_> = DatasetSpec::UNIF_TENTHS
        .iter()
        .map(|&t| (DatasetSpec::UnifS(t), DatasetSpec::CityLike))
        .collect();
    let real_uni: Vec<_> = DatasetSpec::UNIF_TENTHS
        .iter()
        .map(|&t| (DatasetSpec::CityLike, DatasetSpec::UnifR(t)))
        .collect();
    let real_real = vec![(DatasetSpec::CityLike, DatasetSpec::PostLike)];
    vec![
        ("uni-uni", uni_uni),
        ("uni-real", uni_real),
        ("real-uni", real_uni),
        ("real-real", real_real),
    ]
}

/// Runs the fail-rate measurement.
pub fn run(ctx: &Context) -> Vec<Table> {
    let mut main = Table::new(
        "Table 3: Approximate-TNN average fail rate by distribution combination",
        &["combination", "fail rate", "no-answer rate", "paper"],
    );
    let paper_ref = ["0%", "9.08%", "9.08%", "43.2%"];
    for ((name, pairs), paper) in combos().into_iter().zip(paper_ref) {
        let mut fail_sum = 0.0;
        let mut none_sum = 0.0;
        let mut n = 0usize;
        for &(s, r) in &pairs {
            for &cap in &PAGE_CAPACITIES {
                let stats = ctx.batch(
                    s,
                    r,
                    BroadcastParams::new(cap),
                    TnnConfig::exact(Algorithm::ApproximateTnn),
                    true,
                );
                fail_sum += stats.fail_rate;
                none_sum += stats.no_answer_rate;
                n += 1;
            }
        }
        main.push_row(vec![
            name.to_string(),
            pct(fail_sum / n as f64),
            pct(none_sum / n as f64),
            paper.to_string(),
        ]);
    }

    // The control: exact algorithms never fail, on the hardest combo.
    let mut control = Table::new(
        "Table 3 control: exact algorithms on real-real (must all be 0%)",
        &["algorithm", "fail rate"],
    );
    for alg in [
        Algorithm::WindowBased,
        Algorithm::DoubleNn,
        Algorithm::HybridNn,
    ] {
        let stats = ctx.batch(
            DatasetSpec::CityLike,
            DatasetSpec::PostLike,
            BroadcastParams::new(64),
            TnnConfig::exact(alg),
            true,
        );
        control.push_row(vec![alg.name().to_string(), pct(stats.fail_rate)]);
    }

    vec![main, control]
}
