//! **Figure 12 — the ANN optimization vs. eNN** (paper §6.2).
//!
//! Mean tune-in time of Window-Based and Double-NN with exact search vs.
//! with the approximate-NN estimate phase (Heuristic 1, dynamic α of
//! eq. 4 with `factor = 1`):
//!
//! * (a) equal-size datasets (`S` and `R` at the same density), ANN on
//!   both channels — the paper reports 11–20% tune-in reduction;
//! * (b) `density(S) > density(R)`: the density-aware strategy sets the
//!   *sparse* side exact (α = 0) and the dense side dynamic;
//! * (c) `density(R) > density(S)`: the mirror case;
//! * (d) real-like datasets (`S` = CITY stand-in, `R` = POST stand-in)
//!   across all four page capacities, sparse side exact.

use super::{f1, pct, Context};
use crate::{BatchStats, DatasetSpec, Table};
use tnn_broadcast::{BroadcastParams, PAGE_CAPACITIES};
use tnn_core::{Algorithm, AnnMode, TnnConfig};

/// The dynamic-α adjustment factor used for Window-Based and Double-NN.
///
/// The paper quotes `factor = 1` for these algorithms; in this
/// reproduction the net-savings regime sits at factor ≈ 0.02–0.05
/// (calibrated by sweeping — see `examples/probe.rs` and the α-policy
/// ablation). The two-orders-of-magnitude spread between the paper's own
/// Double (1) and Hybrid (1/150) factors shows the effective α scale is
/// implementation-specific; what reproduces is the *mechanism*: dynamic
/// depth-scaled pruning trades a slightly larger radius for a cheaper
/// estimate phase, with a tuning factor per algorithm.
const DYN: AnnMode = AnnMode::Dynamic { factor: 0.02 };

fn header() -> Vec<&'static str> {
    vec![
        "sweep",
        "Window eNN",
        "Window ANN",
        "Window saved",
        "Double eNN",
        "Double ANN",
        "Double saved",
    ]
}

fn row(
    ctx: &Context,
    label: String,
    s: DatasetSpec,
    r: DatasetSpec,
    params: BroadcastParams,
    ann: [AnnMode; 2],
) -> Vec<String> {
    let mut cells = vec![label];
    for alg in [Algorithm::WindowBased, Algorithm::DoubleNn] {
        let enn: BatchStats = ctx.batch(s, r, params, TnnConfig::exact(alg), false);
        let ann_stats: BatchStats = ctx.batch(
            s,
            r,
            params,
            TnnConfig::exact(alg).with_ann_modes(&ann),
            false,
        );
        let saved = 1.0 - ann_stats.mean_tune_in / enn.mean_tune_in.max(1e-9);
        cells.push(f1(enn.mean_tune_in));
        cells.push(f1(ann_stats.mean_tune_in));
        cells.push(pct(saved));
    }
    cells
}

/// Runs all four panels.
pub fn run(ctx: &Context) -> Vec<Table> {
    let p64 = BroadcastParams::new(64);

    // (a) equal sizes, ANN on both channels, factor = 1.
    let mut a = Table::new(
        "Fig 12(a): ANN vs eNN tune-in, equal-density datasets, factor=1 [pages]",
        &header(),
    );
    for &t in &DatasetSpec::UNIF_TENTHS {
        a.push_row(row(
            ctx,
            format!("UNIF({:.1})", t as f64 / 10.0),
            DatasetSpec::UnifS(t),
            DatasetSpec::UnifR(t),
            p64,
            [DYN, DYN],
        ));
    }

    // (b) S denser than R: α_R = 0 (sparse side exact), α_S dynamic.
    let mut b = Table::new(
        "Fig 12(b): ANN tune-in, density(S)>density(R), S=UNIF(-4.6), sparse side exact [pages]",
        &header(),
    );
    for &t in &[-70, -66, -62, -58, -54] {
        b.push_row(row(
            ctx,
            format!("R=UNIF({:.1})", t as f64 / 10.0),
            DatasetSpec::UnifS(-46),
            DatasetSpec::UnifR(t),
            p64,
            [DYN, AnnMode::Exact],
        ));
    }

    // (c) R denser than S: α_S = 0, α_R dynamic.
    let mut c = Table::new(
        "Fig 12(c): ANN tune-in, density(R)>density(S), S=UNIF(-6.2), sparse side exact [pages]",
        &header(),
    );
    for &t in &[-54, -50, -46, -42] {
        c.push_row(row(
            ctx,
            format!("R=UNIF({:.1})", t as f64 / 10.0),
            DatasetSpec::UnifS(-62),
            DatasetSpec::UnifR(t),
            p64,
            [AnnMode::Exact, DYN],
        ));
    }

    // (d) real-like datasets across page capacities; CITY is the sparse
    // side (α = 0), POST the dense side (dynamic).
    let mut d = Table::new(
        "Fig 12(d): ANN tune-in on real-like data (S=CITY, R=POST) across page capacities [pages]",
        &header(),
    );
    for &cap in &PAGE_CAPACITIES {
        d.push_row(row(
            ctx,
            format!("{cap} B"),
            DatasetSpec::CityLike,
            DatasetSpec::PostLike,
            BroadcastParams::new(cap),
            [AnnMode::Exact, DYN],
        ));
    }

    vec![a, b, c, d]
}
