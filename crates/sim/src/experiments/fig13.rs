//! **Figure 13 — Hybrid-NN with ANN** (paper §6.2.2).
//!
//! Mean tune-in time of Hybrid-NN with exact search vs. with the ANN
//! estimate phase at the paper's Hybrid factors, `1/150` and `1/200`
//! (applied on both channels; case-3 searches use the ellipse–rectangle
//! Heuristic 2):
//!
//! * (a) `S = UNIF(−5.0)`, `R` density sweep;
//! * (b) `S = UNIF(−5.4)`, `R` density sweep.

use super::{f1, pct, Context};
use crate::{DatasetSpec, Table};
use tnn_broadcast::BroadcastParams;
use tnn_core::{Algorithm, AnnMode, TnnConfig};

fn panel(ctx: &Context, title: &str, s_tenths: i32) -> Table {
    let params = BroadcastParams::new(64);
    let mut table = Table::new(
        title,
        &[
            "R density",
            "Hybrid eNN",
            "ANN f=1/150",
            "saved(1/150)",
            "ANN f=1/200",
            "saved(1/200)",
        ],
    );
    for &t in &DatasetSpec::UNIF_TENTHS {
        let s = DatasetSpec::UnifS(s_tenths);
        let r = DatasetSpec::UnifR(t);
        let enn = ctx.batch(s, r, params, TnnConfig::exact(Algorithm::HybridNn), false);
        let mut row = vec![
            format!("UNIF({:.1})", t as f64 / 10.0),
            f1(enn.mean_tune_in),
        ];
        for denom in [150.0, 200.0] {
            let mode = AnnMode::Dynamic {
                factor: 1.0 / denom,
            };
            let ann = ctx.batch(
                s,
                r,
                params,
                TnnConfig::exact(Algorithm::HybridNn).with_ann_modes(&[mode, mode]),
                false,
            );
            row.push(f1(ann.mean_tune_in));
            row.push(pct(1.0 - ann.mean_tune_in / enn.mean_tune_in.max(1e-9)));
        }
        table.push_row(row);
    }
    table
}

/// Runs both panels.
pub fn run(ctx: &Context) -> Vec<Table> {
    vec![
        panel(
            ctx,
            "Fig 13(a): Hybrid-NN tune-in with ANN, S=UNIF(-5.0) [pages]",
            -50,
        ),
        panel(
            ctx,
            "Fig 13(b): Hybrid-NN tune-in with ANN, S=UNIF(-5.4) [pages]",
            -54,
        ),
    ]
}
