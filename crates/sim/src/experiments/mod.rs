//! The paper's experiments, one module per figure/table, plus design
//! ablations. Each module exposes `run(&Context) -> Vec<Table>`.

pub mod ablations;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig9;
pub mod table3;

use crate::{
    format_table, queries_per_batch, run_batch, write_csv, BatchConfig, BatchStats, Catalog,
    DatasetSpec, Table,
};
use std::path::PathBuf;
use std::sync::Arc;
use tnn_broadcast::BroadcastParams;
use tnn_core::TnnConfig;
use tnn_datasets::paper_region;
use tnn_rtree::RTree;

/// Shared experiment context: dataset cache, batch sizing, output
/// directory.
pub struct Context {
    /// Built-tree cache.
    pub catalog: Catalog,
    /// Queries per configuration (paper: 1,000; `TNN_QUERIES` overrides).
    pub queries: usize,
    /// Master seed (`TNN_SEED` overrides).
    pub seed: u64,
    /// Directory for CSV output (`TNN_OUT`, default `results/`).
    pub out_dir: PathBuf,
}

impl Context {
    /// Builds a context from the environment.
    pub fn from_env() -> Self {
        Context {
            catalog: Catalog::new(),
            queries: queries_per_batch(),
            seed: std::env::var("TNN_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0xEDB7_2008),
            out_dir: PathBuf::from(std::env::var("TNN_OUT").unwrap_or_else(|_| "results".into())),
        }
    }

    /// Runs one `(S, R, page, algorithm-config)` batch.
    pub fn batch(
        &self,
        s: DatasetSpec,
        r: DatasetSpec,
        params: BroadcastParams,
        tnn: TnnConfig,
        check_oracle: bool,
    ) -> BatchStats {
        let s_tree = self.catalog.tree(s, &params);
        let r_tree = self.catalog.tree(r, &params);
        self.batch_trees(&s_tree, &r_tree, params, tnn, check_oracle)
    }

    /// Runs one batch over pre-built trees.
    pub fn batch_trees(
        &self,
        s_tree: &Arc<RTree>,
        r_tree: &Arc<RTree>,
        params: BroadcastParams,
        tnn: TnnConfig,
        check_oracle: bool,
    ) -> BatchStats {
        let cfg = BatchConfig {
            params,
            tnn,
            queries: self.queries,
            seed: self.seed,
            check_oracle,
        };
        run_batch(s_tree, r_tree, &paper_region(), &cfg)
    }

    /// Prints a table and writes its CSV twin.
    pub fn emit(&self, table: &Table, csv_name: &str) {
        println!("{}", format_table(table));
        if let Err(e) = write_csv(table, &self.out_dir, csv_name) {
            eprintln!("warning: could not write {csv_name}.csv: {e}");
        }
    }
}

/// Formats a float with one decimal for table cells.
pub(crate) fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a percentage with two decimals.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}
