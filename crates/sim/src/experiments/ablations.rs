//! Design ablations beyond the paper's figures:
//!
//! 1. **Best-First vs. arrival-ordered traversal on air** — quantifies
//!    §2.2's claim that backtracking Best-First "deteriorates severely"
//!    on a broadcast medium.
//! 2. **Packing algorithm** (STR vs. Hilbert vs. Nearest-X) — why the
//!    paper bulk-loads with STR.
//! 3. **`(1, m)` interleave factor** — the access-time/cycle-length
//!    trade-off of the air-indexing scheme.
//! 4. **Page capacity** — Table 2's 64–512 B sweep applied to all
//!    algorithms.
//! 5. **Fixed vs. dynamic α** — why eq. 4 beats the static threshold of
//!    Lin et al. \[14\].
//! 6. **Chained TNN** — cost scaling of the future-work generalization
//!    over k = 2, 3, 4 channels.
//! 7. **Channel count for the core algorithms** — the k-ary
//!    generalization of Window-Based, Double-NN, and Hybrid-NN over
//!    k = 2, 3, 4 channels (the chained estimate is Double-NN's; this
//!    axis shows how the sequential Window-Based estimate and the
//!    neighbor-hop re-targeting of Hybrid-NN scale with hops).

use super::{f1, Context};
use crate::{run_chain_batch, run_tnn_batch, BatchConfig, DatasetSpec, Table};
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, Channel, PAGE_CAPACITIES};
use tnn_core::{Algorithm, AnnMode, SearchMode, TnnConfig};
use tnn_datasets::paper_region;
use tnn_geom::Point;
use tnn_rtree::{NodeId, PackingAlgorithm, RTree};

/// Exact NN on a broadcast channel with the classical Best-First order
/// (by `MinDist`, Hjaltason & Samet), i.e. *with backtracking*: every pop
/// waits for the node's next on-air time, which regularly rolls over to
/// the next bucket once the traversal jumps around the preorder layout.
/// Returns `(access_pages, tune_in_pages)`.
fn best_first_on_air(channel: &Channel, q: Point, start: u64) -> (u64, u64) {
    let tree = channel.tree();
    let mut heap: Vec<(f64, NodeId)> = vec![(tree.bounding_rect().min_dist(q), NodeId::ROOT)];
    let mut best = f64::INFINITY;
    let mut now = start;
    let mut pages = 0u64;
    while let Some(idx) = heap
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
        .map(|(i, _)| i)
    {
        let (mindist, id) = heap.swap_remove(idx);
        if mindist > best {
            continue; // pruned, no cost
        }
        // Random access is impossible: wait for the node's next arrival.
        let arrival = channel.next_node_arrival(id, now);
        now = arrival + 1;
        pages += 1;
        let node = channel.node(id);
        if let Some(children) = node.children() {
            for c in children {
                heap.push((c.mbr.min_dist(q), c.child));
            }
        } else if let Some(points) = node.points() {
            for e in points {
                best = best.min(q.dist(e.point));
            }
        }
    }
    (now - start, pages)
}

/// Ablation 1: Best-First vs. arrival-ordered NN search on one channel.
fn traversal_order(ctx: &Context) -> Table {
    let params = BroadcastParams::new(64);
    let mut table = Table::new(
        "Ablation: NN traversal order on a broadcast channel (S=UNIF(-5.0))",
        &["strategy", "mean access [pages]", "mean tune-in [pages]"],
    );
    let tree = ctx.catalog.tree(DatasetSpec::UnifS(-50), &params);
    let channel = Channel::new(Arc::clone(&tree), params, 0);
    let region = paper_region();
    let n = ctx.queries.min(200); // BF is slow by design; cap the batch
    let mut bf = (0u64, 0u64);
    let mut ao = (0u64, 0u64);
    for i in 0..n as u64 {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed ^ i);
        let q = Point::new(
            rng.gen_range(region.min.x..=region.max.x),
            rng.gen_range(region.min.y..=region.max.y),
        );
        let phase = rng.gen_range(0..channel.layout().cycle_len());
        let ch = channel.with_phase(phase);
        let (acc, pages) = best_first_on_air(&ch, q, 0);
        bf.0 += acc;
        bf.1 += pages;
        let mut task =
            tnn_core::task::NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
        let finish = task.run_to_completion();
        ao.0 += finish;
        ao.1 += task.tuner().pages;
    }
    let n = n as f64;
    table.push_row(vec![
        "Best-First (backtracking)".into(),
        f1(bf.0 as f64 / n),
        f1(bf.1 as f64 / n),
    ]);
    table.push_row(vec![
        "arrival-ordered (ours)".into(),
        f1(ao.0 as f64 / n),
        f1(ao.1 as f64 / n),
    ]);
    table
}

/// Ablation 2: packing algorithm.
fn packing(ctx: &Context) -> Table {
    let params = BroadcastParams::new(64);
    let mut table = Table::new(
        "Ablation: R-tree packing algorithm (Double-NN, S=UNIF(-5.0), R=UNIF(-5.0))",
        &["packing", "mean access [pages]", "mean tune-in [pages]"],
    );
    let s_pts = DatasetSpec::UnifS(-50).points();
    let r_pts = DatasetSpec::UnifR(-50).points();
    for algo in PackingAlgorithm::ALL {
        let s = Arc::new(RTree::build(&s_pts, params.rtree_params(), algo).unwrap());
        let r = Arc::new(RTree::build(&r_pts, params.rtree_params(), algo).unwrap());
        let stats = ctx.batch_trees(&s, &r, params, TnnConfig::exact(Algorithm::DoubleNn), false);
        table.push_row(vec![
            algo.name().to_string(),
            f1(stats.mean_access),
            f1(stats.mean_tune_in),
        ]);
    }
    table
}

/// Ablation 3: the `(1, m)` interleave factor.
fn interleave(ctx: &Context) -> Table {
    let mut table = Table::new(
        "Ablation: (1,m) interleave factor (Double-NN, S=R=UNIF(-5.0))",
        &[
            "m",
            "cycle [pages]",
            "mean access [pages]",
            "mean tune-in [pages]",
        ],
    );
    for m in [1u32, 2, 4, 8, 16] {
        let params = BroadcastParams {
            page_capacity: 64,
            interleave_m: m,
            data_content_bytes: 1024,
        };
        let s = ctx.catalog.tree(DatasetSpec::UnifS(-50), &params);
        let r = ctx.catalog.tree(DatasetSpec::UnifR(-50), &params);
        let cycle = tnn_broadcast::BroadcastLayout::new(&s, &params).cycle_len();
        let stats = ctx.batch_trees(&s, &r, params, TnnConfig::exact(Algorithm::DoubleNn), false);
        table.push_row(vec![
            m.to_string(),
            cycle.to_string(),
            f1(stats.mean_access),
            f1(stats.mean_tune_in),
        ]);
    }
    table
}

/// Ablation 4: page capacity (Table 2's range) for all exact algorithms.
fn page_capacity(ctx: &Context) -> Table {
    let mut table = Table::new(
        "Ablation: page capacity (S=R=UNIF(-5.0))",
        &[
            "capacity [B]",
            "Window access",
            "Window tune-in",
            "Double access",
            "Double tune-in",
            "Hybrid access",
            "Hybrid tune-in",
        ],
    );
    for &cap in &PAGE_CAPACITIES {
        let params = BroadcastParams::new(cap);
        let mut row = vec![cap.to_string()];
        for alg in [
            Algorithm::WindowBased,
            Algorithm::DoubleNn,
            Algorithm::HybridNn,
        ] {
            let stats = ctx.batch(
                DatasetSpec::UnifS(-50),
                DatasetSpec::UnifR(-50),
                params,
                TnnConfig::exact(alg),
                false,
            );
            row.push(f1(stats.mean_access));
            row.push(f1(stats.mean_tune_in));
        }
        table.push_row(row);
    }
    table
}

/// Ablation 5: fixed α (Lin et al. \[14\]) vs. the paper's dynamic α.
fn alpha_policy(ctx: &Context) -> Table {
    let params = BroadcastParams::new(64);
    let s = DatasetSpec::UnifS(-50);
    let r = DatasetSpec::UnifR(-50);
    let mut table = Table::new(
        "Ablation: ANN threshold policy (Double-NN, S=R=UNIF(-5.0))",
        &["policy", "mean tune-in [pages]", "mean radius"],
    );
    let enn = ctx.batch(s, r, params, TnnConfig::exact(Algorithm::DoubleNn), false);
    table.push_row(vec![
        "eNN (α=0)".into(),
        f1(enn.mean_tune_in),
        f1(enn.mean_radius),
    ]);
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mode = AnnMode::Fixed { alpha };
        let stats = ctx.batch(
            s,
            r,
            params,
            TnnConfig::exact(Algorithm::DoubleNn).with_ann_modes(&[mode, mode]),
            false,
        );
        table.push_row(vec![
            format!("fixed α={alpha}"),
            f1(stats.mean_tune_in),
            f1(stats.mean_radius),
        ]);
    }
    let dynamic = AnnMode::Dynamic { factor: 1.0 };
    let stats = ctx.batch(
        s,
        r,
        params,
        TnnConfig::exact(Algorithm::DoubleNn).with_ann_modes(&[dynamic, dynamic]),
        false,
    );
    table.push_row(vec![
        "dynamic (eq. 4, factor=1)".into(),
        f1(stats.mean_tune_in),
        f1(stats.mean_radius),
    ]);
    table
}

/// Ablation 6: chained TNN over k channels (future-work extension).
fn chained(ctx: &Context) -> Table {
    let params = BroadcastParams::new(64);
    let mut table = Table::new(
        "Extension: chained TNN over k channels (UNIF(-5.4) per channel)",
        &["k", "mean access [pages]", "mean tune-in [pages]"],
    );
    let region = paper_region();
    for k in [2usize, 3, 4] {
        let trees: Vec<Arc<RTree>> = (0..k)
            .map(|i| {
                let pts = tnn_datasets::unif(-5.4, 0x7000 + i as u64);
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        let stats = run_chain_batch(
            &trees,
            &region,
            params,
            AnnMode::Exact,
            ctx.queries.min(300),
            ctx.seed,
        );
        table.push_row(vec![
            k.to_string(),
            f1(stats.mean_access),
            f1(stats.mean_tune_in),
        ]);
    }
    table
}

/// Ablation 7: channel count for the core TNN algorithms — the k-ary
/// generalization over k = 2, 3, 4 channels, exercising the sequential
/// Window-Based hops, the parallel Double-NN fan-out, and Hybrid-NN's
/// neighbor-hop re-targeting at every k (oracle-checked).
fn core_channel_count(ctx: &Context) -> Table {
    let params = BroadcastParams::new(64);
    let mut table = Table::new(
        "Extension: core TNN algorithms over k channels (UNIF(-5.4) per channel)",
        &[
            "k",
            "Window access",
            "Window tune-in",
            "Double access",
            "Double tune-in",
            "Hybrid access",
            "Hybrid tune-in",
        ],
    );
    let region = paper_region();
    for k in [2usize, 3, 4] {
        let trees: Vec<Arc<RTree>> = (0..k)
            .map(|i| {
                let pts = tnn_datasets::unif(-5.4, 0x8100 + i as u64);
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        let mut row = vec![k.to_string()];
        for alg in [
            Algorithm::WindowBased,
            Algorithm::DoubleNn,
            Algorithm::HybridNn,
        ] {
            let cfg = BatchConfig {
                params,
                tnn: TnnConfig::exact_for(alg, k),
                queries: ctx.queries.min(300),
                seed: ctx.seed,
                check_oracle: true,
            };
            let stats = run_tnn_batch(&trees, &region, &cfg);
            assert_eq!(
                stats.fail_rate,
                0.0,
                "{} must stay exact at k={k}",
                alg.name()
            );
            row.push(f1(stats.mean_access));
            row.push(f1(stats.mean_tune_in));
        }
        table.push_row(row);
    }
    table
}

/// Ablation 8: the order-free and round-trip variants (future-work items
/// 2 and 3) against plain TNN on the same workload.
fn variants(ctx: &Context) -> Table {
    use rand::{Rng, SeedableRng};
    let params = BroadcastParams::new(64);
    let s = ctx.catalog.tree(DatasetSpec::UnifS(-54), &params);
    let r = ctx.catalog.tree(DatasetSpec::UnifR(-54), &params);
    let engine = tnn_core::QueryEngine::new(tnn_broadcast::MultiChannelEnv::new(
        vec![Arc::clone(&s), Arc::clone(&r)],
        params,
        &[0, 0],
    ));
    let region = paper_region();
    let n = ctx.queries.min(300);
    let mut acc = [(0.0f64, 0u64, 0u64); 3]; // (dist, access, tune-in) per variant
    let mut r_first = 0usize;
    for i in 0..n as u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed ^ i.wrapping_mul(0x2545F491));
        let p = Point::new(
            rng.gen_range(region.min.x..=region.max.x),
            rng.gen_range(region.min.y..=region.max.y),
        );
        let phases = [
            rng.gen_range(0..engine.env().channel(0).layout().cycle_len()),
            rng.gen_range(0..engine.env().channel(1).layout().cycle_len()),
        ];
        let plain = engine
            .run(
                &tnn_core::Query::tnn(p)
                    .algorithm(Algorithm::DoubleNn)
                    .phases(&phases),
            )
            .expect("valid env");
        let free = engine
            .run(&tnn_core::Query::order_free(p).phases(&phases))
            .expect("valid env");
        let tour = engine
            .run(&tnn_core::Query::round_trip(p).phases(&phases))
            .expect("valid env");
        acc[0].0 += plain.total_dist.expect("exact");
        acc[0].1 += plain.access_time();
        acc[0].2 += plain.tune_in();
        acc[1].0 += free.total_dist.expect("exact");
        acc[1].1 += free.access_time();
        acc[1].2 += free.tune_in();
        acc[2].0 += tour.total_dist.expect("exact");
        acc[2].1 += tour.access_time();
        acc[2].2 += tour.tune_in();
        if free.visit_order() == Some(tnn_core::VisitOrder::RFirst) {
            r_first += 1;
        }
    }
    let mut table = Table::new(
        "Extension: order-free and round-trip TNN (S=R=UNIF(-5.4))",
        &[
            "variant",
            "mean route [m]",
            "mean access [pages]",
            "mean tune-in [pages]",
        ],
    );
    let nf = n as f64;
    for (name, (dist, access, tune)) in [
        ("fixed order p->s->r", acc[0]),
        ("order-free (item 2)", acc[1]),
        ("round trip (item 3)", acc[2]),
    ] {
        table.push_row(vec![
            name.into(),
            f1(dist / nf),
            f1(access as f64 / nf),
            f1(tune as f64 / nf),
        ]);
    }
    table.push_row(vec![
        format!("(order-free picked R first in {r_first}/{n} queries)"),
        String::new(),
        String::new(),
        String::new(),
    ]);
    table
}

/// Runs every ablation.
pub fn run(ctx: &Context) -> Vec<Table> {
    vec![
        traversal_order(ctx),
        packing(ctx),
        interleave(ctx),
        page_capacity(ctx),
        alpha_policy(ctx),
        chained(ctx),
        core_channel_count(ctx),
        variants(ctx),
    ]
}
