//! Zipf-distributed rank sampling for skewed repeat-query workloads.
//!
//! Real query traffic is head-heavy: a few hot query points are asked
//! over and over while the tail is asked once. The serving benchmarks
//! model that with the classic Zipf law — rank `r` (1-based) is drawn
//! with probability proportional to `1 / r^s` — which is what makes a
//! result cache earn its keep (and what `serve_load`'s cache axis
//! measures).

use rand::rngs::StdRng;
use rand::Rng;

/// A sampler over ranks `0..n` with Zipf exponent `s` (`s = 0` is
/// uniform; `s ≈ 1` is the canonical web-traffic skew). Sampling is a
/// binary search over the precomputed CDF — O(log n) per draw,
/// deterministic in the caller's rng stream.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// `cdf[r]` = P(rank ≤ r), monotonically increasing to 1.0.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics when `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and ≥ 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 1..=n {
            total += (r as f64).powf(-s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` for the degenerate single-rank sampler.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n` (0 is the hottest).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn head_ranks_dominate_under_skew() {
        let zipf = ZipfSampler::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 is drawn far more often than a deep-tail rank, and the
        // top decile carries the majority of the mass.
        assert!(counts[0] > 20 * counts[90].max(1));
        let head: u32 = counts[..10].iter().sum();
        assert!(head > 10_000, "head ranks carry the traffic: {head}");
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let zipf = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0u32; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..=1300).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn samples_stay_in_range_and_are_deterministic() {
        let zipf = ZipfSampler::new(7, 1.5);
        assert_eq!(zipf.len(), 7);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(3);
        assert_eq!(a, draw(3));
        assert!(a.iter().all(|&r| r < 7));
        assert_ne!(a, draw(4));
    }
}
