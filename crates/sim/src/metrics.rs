//! Aggregated statistics over a query batch.

use serde::{Deserialize, Serialize};

/// Aggregates over one batch of queries for one configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Queries executed.
    pub queries: usize,
    /// Mean access time in pages (the paper's Fig. 9 metric).
    pub mean_access: f64,
    /// Mean tune-in time in pages (the paper's Fig. 11–13 metric).
    pub mean_tune_in: f64,
    /// Mean estimate-phase tune-in (both channels).
    pub mean_tune_estimate: f64,
    /// Mean filter-phase tune-in (both channels).
    pub mean_tune_filter: f64,
    /// Mean search radius of the filter phase.
    pub mean_radius: f64,
    /// Mean number of filter-phase candidates (both channels).
    pub mean_candidates: f64,
    /// Fraction of queries with no answer at all.
    pub no_answer_rate: f64,
    /// Fraction of failed queries: no answer **or** a sub-optimal answer
    /// (measured against the exact oracle) — the paper's Table 3 metric.
    pub fail_rate: f64,
}

/// The raw metrics of one executed query, recorded into a pre-sized slot
/// array by the batch workers and reduced in query order so aggregation
/// is independent of thread count.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct QuerySample {
    pub access: u64,
    pub tune_in: u64,
    pub tune_estimate: u64,
    pub tune_filter: u64,
    pub radius: f64,
    pub candidates: usize,
    pub no_answer: bool,
    pub failed: bool,
}

/// Incremental accumulator for [`BatchStats`].
#[derive(Debug, Clone, Default)]
pub(crate) struct StatsAccumulator {
    n: usize,
    access: f64,
    tune_in: f64,
    tune_estimate: f64,
    tune_filter: f64,
    radius: f64,
    candidates: f64,
    no_answer: usize,
    failed: usize,
}

impl StatsAccumulator {
    /// Records one query's sample.
    pub fn record_sample(&mut self, s: &QuerySample) {
        self.record(
            s.access,
            s.tune_in,
            s.tune_estimate,
            s.tune_filter,
            s.radius,
            s.candidates,
            s.no_answer,
            s.failed,
        );
    }

    #[allow(clippy::too_many_arguments)] // one scalar per recorded metric
    pub fn record(
        &mut self,
        access: u64,
        tune_in: u64,
        tune_estimate: u64,
        tune_filter: u64,
        radius: f64,
        candidates: usize,
        no_answer: bool,
        failed: bool,
    ) {
        self.n += 1;
        self.access += access as f64;
        self.tune_in += tune_in as f64;
        self.tune_estimate += tune_estimate as f64;
        self.tune_filter += tune_filter as f64;
        self.radius += radius;
        self.candidates += candidates as f64;
        self.no_answer += usize::from(no_answer);
        self.failed += usize::from(failed);
    }

    pub fn finish(self) -> BatchStats {
        let n = self.n.max(1) as f64;
        BatchStats {
            queries: self.n,
            mean_access: self.access / n,
            mean_tune_in: self.tune_in / n,
            mean_tune_estimate: self.tune_estimate / n,
            mean_tune_filter: self.tune_filter / n,
            mean_radius: self.radius / n,
            mean_candidates: self.candidates / n,
            no_answer_rate: self.no_answer as f64 / n,
            fail_rate: self.failed as f64 / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_averages() {
        let mut acc = StatsAccumulator::default();
        acc.record(100, 10, 4, 6, 5.0, 3, false, false);
        acc.record(200, 20, 8, 12, 15.0, 5, true, true);
        let stats = acc.finish();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.mean_access, 150.0);
        assert_eq!(stats.mean_tune_in, 15.0);
        assert_eq!(stats.mean_tune_estimate, 6.0);
        assert_eq!(stats.mean_tune_filter, 9.0);
        assert_eq!(stats.mean_radius, 10.0);
        assert_eq!(stats.mean_candidates, 4.0);
        assert_eq!(stats.no_answer_rate, 0.5);
        assert_eq!(stats.fail_rate, 0.5);
    }

    #[test]
    fn record_sample_equals_record() {
        let mut by_sample = StatsAccumulator::default();
        let mut by_args = StatsAccumulator::default();
        for i in 0..10u64 {
            let s = QuerySample {
                access: 100 + i,
                tune_in: 10 + i,
                tune_estimate: 1,
                tune_filter: 2,
                radius: 1.0,
                candidates: 1,
                no_answer: false,
                failed: i == 7,
            };
            by_sample.record_sample(&s);
            by_args.record(100 + i, 10 + i, 1, 2, 1.0, 1, false, i == 7);
        }
        assert_eq!(by_sample.finish(), by_args.finish());
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let stats = StatsAccumulator::default().finish();
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.mean_access, 0.0);
    }
}
