//! The query-batch runner: the paper's methodology (§6) as an engine.
//!
//! For one configuration (datasets, page capacity, algorithm, ANN modes)
//! it executes `N` queries. Per query, a point is drawn uniformly over
//! the evaluation region and **each channel gets an independent random
//! phase** — the paper's "two random numbers are generated to simulate
//! the waiting time to get the two roots". Queries are deterministic in
//! the seed and identical across algorithm configurations, so algorithm
//! comparisons are paired.
//!
//! ## Performance shape
//!
//! All batches are driven through one shared [`QueryEngine`]; work is
//! spread over all CPUs in contiguous chunks, and each worker thread owns
//! one [`QueryScratch`] passed to [`QueryEngine::run_with`], so the
//! per-query hot path performs no buffer allocations after the first
//! query has grown them. Per-query phase randomization rides the engine's
//! `PhaseOverlay` — no channel vector is cloned per query (the former
//! `with_phases` hot-path cost). Per-query
//! metric samples are written into a pre-sized slot array and reduced
//! **in query order**, making every [`BatchStats`] bit-identical for a
//! fixed seed regardless of thread count or scheduling — which is also
//! what lets the `linear-reference` A/B comparison demand exact equality.

use crate::metrics::{QuerySample, StatsAccumulator};
use crate::BatchStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{
    exact_chain_tnn, exact_tnn, AnnMode, CandidateQueue, Query, QueryEngine, QueryScratch,
    TnnConfig,
};
use tnn_geom::{Point, Rect};
use tnn_rtree::RTree;

/// Tolerance when comparing an algorithm's answer against the oracle: an
/// answer farther than this (relatively) counts as failed.
const FAIL_EPS: f64 = 1e-6;

/// One batch to execute.
#[derive(Clone)]
pub struct BatchConfig {
    /// Broadcast parameters (page capacity, interleaving, object size).
    pub params: BroadcastParams,
    /// Query-processing configuration.
    pub tnn: TnnConfig,
    /// Number of queries (the paper uses 1,000).
    pub queries: usize,
    /// Batch seed; queries and phases derive deterministically from it.
    pub seed: u64,
    /// Compare every answer against the exact oracle (needed for fail
    /// rates; costs one in-memory TNN per query).
    pub check_oracle: bool,
}

/// Reads the batch size from `TNN_QUERIES` (default 1,000 — the paper's
/// query count per configuration).
pub fn queries_per_batch() -> usize {
    std::env::var("TNN_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000)
}

fn worker_threads(queries: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(queries.max(1))
}

/// Shared parallel scaffolding of the batch runners: splits `queries`
/// into contiguous chunks across all CPUs, runs `run_one(query_index,
/// slot)` per query, and reduces the samples **in query order** — so
/// every [`BatchStats`] is bit-identical for a fixed seed regardless of
/// thread count or scheduling.
fn run_samples(queries: usize, run_chunk: impl Fn(usize, &mut [QuerySample]) + Sync) -> BatchStats {
    let threads = worker_threads(queries);
    let chunk_len = queries.div_ceil(threads.max(1)).max(1);
    let mut samples = vec![QuerySample::default(); queries];
    std::thread::scope(|scope| {
        for (t, chunk) in samples.chunks_mut(chunk_len).enumerate() {
            let run_chunk = &run_chunk;
            scope.spawn(move || run_chunk(t * chunk_len, chunk));
        }
    });
    let mut acc = StatsAccumulator::default();
    for s in &samples {
        acc.record_sample(s);
    }
    acc.finish()
}

/// Executes one batch of TNN queries over `(s_tree, r_tree)` and
/// aggregates the paper's metrics — the paper's two-channel workload,
/// a thin wrapper over the k-ary [`run_tnn_batch`]. Work is spread over
/// all CPUs; results are bit-identical in the seed regardless of thread
/// count.
pub fn run_batch(
    s_tree: &Arc<RTree>,
    r_tree: &Arc<RTree>,
    region: &Rect,
    cfg: &BatchConfig,
) -> BatchStats {
    run_tnn_batch_impl::<tnn_core::ArrivalHeap>(
        &[Arc::clone(s_tree), Arc::clone(r_tree)],
        region,
        cfg,
    )
}

/// Executes one batch of TNN queries over `k ≥ 2` trees, one broadcast
/// channel per tree — the channel-count axis of the evaluation. The
/// configured algorithm runs the generalized `k`-hop pipeline;
/// `cfg.tnn.ann` must hold one mode per channel (see
/// [`TnnConfig::exact_for`]). With `check_oracle` every answer is
/// verified against the exact chain oracle.
///
/// Parallelized like [`run_batch`]: contiguous chunks across all CPUs
/// with an in-order reduction, bit-identical in the seed regardless of
/// thread count.
pub fn run_tnn_batch(trees: &[Arc<RTree>], region: &Rect, cfg: &BatchConfig) -> BatchStats {
    run_tnn_batch_impl::<tnn_core::ArrivalHeap>(trees, region, cfg)
}

/// [`run_batch`] over the paper-literal pre-optimization hot path:
/// linear-scan candidate queues (O(n) per queue operation, eager purge
/// rescans) and fresh per-query buffer allocations, exactly as the
/// original implementation behaved. Identical workload and (by
/// construction) identical [`BatchStats`]. Only for the A/B benchmark.
#[cfg(feature = "linear-reference")]
pub fn run_batch_linear(
    s_tree: &Arc<RTree>,
    r_tree: &Arc<RTree>,
    region: &Rect,
    cfg: &BatchConfig,
) -> BatchStats {
    run_tnn_batch_impl::<tnn_core::LinearQueue>(
        &[Arc::clone(s_tree), Arc::clone(r_tree)],
        region,
        cfg,
    )
}

/// [`run_tnn_batch`] over the linear-scan reference backend.
#[cfg(feature = "linear-reference")]
pub fn run_tnn_batch_linear(trees: &[Arc<RTree>], region: &Rect, cfg: &BatchConfig) -> BatchStats {
    run_tnn_batch_impl::<tnn_core::LinearQueue>(trees, region, cfg)
}

fn run_tnn_batch_impl<Q: CandidateQueue>(
    trees: &[Arc<RTree>],
    region: &Rect,
    cfg: &BatchConfig,
) -> BatchStats {
    let engine = QueryEngine::<Q>::with_queue_backend(MultiChannelEnv::new(
        trees.to_vec(),
        cfg.params,
        &vec![0; trees.len()],
    ));
    run_samples(cfg.queries, |first, chunk| {
        // The production backend reuses one scratch per worker (zero
        // buffer allocations per query); the linear reference allocates
        // fresh buffers per query like the pre-optimization
        // implementation did. Scratch handling is invisible to results
        // either way.
        let mut scratch = QueryScratch::<Q>::default();
        let mut phases: Vec<u64> = Vec::with_capacity(engine.channels());
        for (j, slot) in chunk.iter_mut().enumerate() {
            if Q::IS_REFERENCE {
                scratch = QueryScratch::<Q>::default();
            }
            *slot = run_one(
                &engine,
                region,
                cfg,
                (first + j) as u64,
                &mut scratch,
                &mut phases,
            );
        }
    })
}

fn run_one<Q: CandidateQueue>(
    engine: &QueryEngine<Q>,
    region: &Rect,
    cfg: &BatchConfig,
    query_index: u64,
    scratch: &mut QueryScratch<Q>,
    phases: &mut Vec<u64>,
) -> QuerySample {
    // Per-query randomness independent of the algorithm configuration, so
    // different algorithms see identical workloads.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ query_index.wrapping_mul(0x9E3779B97F4A7C15));
    let p = Point::new(
        rng.gen_range(region.min.x..=region.max.x),
        rng.gen_range(region.min.y..=region.max.y),
    );
    let env = engine.env();
    // Per-query phases go through the engine's `PhaseOverlay`: nothing is
    // cloned — the old `env.with_phases(&phases)` materialized a fresh
    // channel vector on every query of every batch. One independent
    // random phase per channel, drawn in channel order (so the k = 2
    // case reproduces the paper's "two random numbers" bit-for-bit).
    phases.clear();
    phases.extend(
        env.channels()
            .iter()
            .map(|c| rng.gen_range(0..c.layout().cycle_len().max(1))),
    );
    let query = Query::tnn(p)
        .algorithm(cfg.tnn.algorithm)
        .ann_modes(&cfg.tnn.ann)
        .retrieve_answer_objects(cfg.tnn.retrieve_answer_objects)
        .phases(phases);

    let run = engine
        .run_with(&query, scratch)
        .expect("k >= 2 channels, finite query");
    let no_answer = run.failed();
    let failed = if cfg.check_oracle {
        match run.total_dist {
            None => true,
            Some(dist) => {
                let oracle = if engine.channels() == 2 {
                    exact_tnn(p, env.channel(0).tree(), env.channel(1).tree()).dist
                } else {
                    let trees: Vec<&RTree> = env.channels().iter().map(|c| c.tree()).collect();
                    exact_chain_tnn(p, &trees).1
                };
                dist > oracle * (1.0 + FAIL_EPS) + FAIL_EPS
            }
        }
    } else {
        no_answer
    };
    QuerySample {
        access: run.access_time(),
        tune_in: run.tune_in(),
        tune_estimate: run.tune_in_estimate(),
        tune_filter: run.tune_in_filter(),
        radius: run.search_radius,
        candidates: run.total_candidates(),
        no_answer,
        failed,
    }
}

/// Executes one batch of **chained** TNN queries over `k` trees (the
/// future-work extension); reports the same aggregate metrics (fail rate
/// is always 0 — the chained estimate is exact by construction).
///
/// Parallelized the same way as [`run_batch`]: contiguous chunks across
/// all CPUs with an in-order reduction, so results are bit-identical in
/// the seed regardless of thread count.
pub fn run_chain_batch(
    trees: &[Arc<RTree>],
    region: &Rect,
    params: BroadcastParams,
    ann: AnnMode,
    queries: usize,
    seed: u64,
) -> BatchStats {
    let engine = QueryEngine::new(MultiChannelEnv::new(
        trees.to_vec(),
        params,
        &vec![0; trees.len()],
    ));
    run_samples(queries, |first, chunk| {
        let mut scratch = QueryScratch::default();
        // Reused per worker; the per-query engine overlay copies it into
        // inline storage, so no channel vector is cloned per query.
        let mut phases: Vec<u64> = Vec::with_capacity(engine.channels());
        for (j, slot) in chunk.iter_mut().enumerate() {
            let i = (first + j) as u64;
            let mut rng = StdRng::seed_from_u64(seed ^ i.wrapping_mul(0x9E3779B97F4A7C15));
            let p = Point::new(
                rng.gen_range(region.min.x..=region.max.x),
                rng.gen_range(region.min.y..=region.max.y),
            );
            phases.clear();
            phases.extend(
                engine
                    .env()
                    .channels()
                    .iter()
                    .map(|c| rng.gen_range(0..c.layout().cycle_len().max(1))),
            );
            let query = Query::chain(p).ann(ann).phases(&phases);
            let run = engine
                .run_with(&query, &mut scratch)
                .expect("valid chain environment");
            *slot = QuerySample {
                access: run.access_time(),
                tune_in: run.tune_in(),
                tune_estimate: run.tune_in_estimate(),
                tune_filter: run.tune_in_filter(),
                radius: run.search_radius,
                candidates: 0,
                no_answer: false,
                failed: false,
            };
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn_core::Algorithm;
    use tnn_datasets::uniform_points;
    use tnn_rtree::PackingAlgorithm;

    fn tree(n: usize, seed: u64, params: &BroadcastParams) -> Arc<RTree> {
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let pts = uniform_points(n, &region, seed);
        Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
    }

    #[test]
    fn batch_is_deterministic_across_thread_schedules() {
        let params = BroadcastParams::new(64);
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let s = tree(150, 1, &params);
        let r = tree(120, 2, &params);
        let cfg = BatchConfig {
            params,
            tnn: TnnConfig::exact(Algorithm::DoubleNn),
            queries: 40,
            seed: 99,
            check_oracle: true,
        };
        let a = run_batch(&s, &r, &region, &cfg);
        let b = run_batch(&s, &r, &region, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.queries, 40);
        assert_eq!(a.fail_rate, 0.0, "exact algorithm must never fail");
        assert!(a.mean_access > 0.0);
        assert!(a.mean_tune_in > 0.0);
    }

    #[test]
    fn exact_algorithms_never_fail_in_batches() {
        let params = BroadcastParams::new(64);
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let s = tree(100, 3, &params);
        let r = tree(200, 4, &params);
        for alg in [
            Algorithm::WindowBased,
            Algorithm::DoubleNn,
            Algorithm::HybridNn,
        ] {
            let cfg = BatchConfig {
                params,
                tnn: TnnConfig::exact(alg),
                queries: 25,
                seed: 7,
                check_oracle: true,
            };
            let stats = run_batch(&s, &r, &region, &cfg);
            assert_eq!(stats.fail_rate, 0.0, "{}", alg.name());
        }
    }

    // The heap-vs-linear BatchStats equality gate lives in
    // crates/bench/tests/linear_equivalence.rs, where the
    // `linear-reference` feature is always enabled.

    #[test]
    fn k_channel_tnn_batches_run_and_are_deterministic() {
        let params = BroadcastParams::new(64);
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        for k in [2usize, 3, 4] {
            let trees: Vec<Arc<RTree>> = (0..k)
                .map(|i| tree(60 + 20 * i, 40 + i as u64, &params))
                .collect();
            for alg in [Algorithm::DoubleNn, Algorithm::HybridNn] {
                let cfg = BatchConfig {
                    params,
                    tnn: TnnConfig::exact_for(alg, k),
                    queries: 16,
                    seed: 0xA1,
                    check_oracle: true,
                };
                let a = run_tnn_batch(&trees, &region, &cfg);
                let b = run_tnn_batch(&trees, &region, &cfg);
                assert_eq!(a, b, "{} k={k}", alg.name());
                assert_eq!(a.queries, 16);
                assert_eq!(a.fail_rate, 0.0, "{} k={k}", alg.name());
                assert!(a.mean_tune_in > 0.0);
            }
        }
    }

    #[test]
    fn two_channel_wrapper_equals_k_ary_runner() {
        let params = BroadcastParams::new(64);
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let s = tree(120, 51, &params);
        let r = tree(90, 52, &params);
        let cfg = BatchConfig {
            params,
            tnn: TnnConfig::exact(Algorithm::HybridNn),
            queries: 20,
            seed: 7,
            check_oracle: false,
        };
        let wrapped = run_batch(&s, &r, &region, &cfg);
        let k_ary = run_tnn_batch(&[Arc::clone(&s), Arc::clone(&r)], &region, &cfg);
        assert_eq!(wrapped, k_ary);
    }

    #[test]
    fn chain_batch_runs() {
        let params = BroadcastParams::new(64);
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let trees = vec![
            tree(50, 5, &params),
            tree(60, 6, &params),
            tree(40, 7, &params),
        ];
        let stats = run_chain_batch(&trees, &region, params, AnnMode::Exact, 10, 3);
        assert_eq!(stats.queries, 10);
        assert_eq!(stats.fail_rate, 0.0);
        assert!(stats.mean_tune_in > 0.0);
    }

    #[test]
    fn chain_batch_is_deterministic() {
        let params = BroadcastParams::new(64);
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let trees = vec![tree(80, 8, &params), tree(70, 9, &params)];
        let a = run_chain_batch(&trees, &region, params, AnnMode::Exact, 24, 5);
        let b = run_chain_batch(&trees, &region, params, AnnMode::Exact, 24, 5);
        assert_eq!(a, b);
        assert_eq!(a.queries, 24);
    }

    #[test]
    fn queries_per_batch_env_override() {
        // Can't mutate the environment safely in parallel tests; just
        // check the default path parses.
        let n = queries_per_batch();
        assert!(n > 0);
    }
}
