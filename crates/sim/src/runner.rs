//! The query-batch runner: the paper's methodology (§6) as an engine.
//!
//! For one configuration (datasets, page capacity, algorithm, ANN modes)
//! it executes `N` queries. Per query, a point is drawn uniformly over
//! the evaluation region and **each channel gets an independent random
//! phase** — the paper's "two random numbers are generated to simulate
//! the waiting time to get the two roots". Queries are deterministic in
//! the seed and identical across algorithm configurations, so algorithm
//! comparisons are paired.

use crate::metrics::StatsAccumulator;
use crate::BatchStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{chain_tnn, exact_tnn, run_query, AnnMode, TnnConfig};
use tnn_geom::{Point, Rect};
use tnn_rtree::RTree;

/// Tolerance when comparing an algorithm's answer against the oracle: an
/// answer farther than this (relatively) counts as failed.
const FAIL_EPS: f64 = 1e-6;

/// One batch to execute.
#[derive(Clone)]
pub struct BatchConfig {
    /// Broadcast parameters (page capacity, interleaving, object size).
    pub params: BroadcastParams,
    /// Query-processing configuration.
    pub tnn: TnnConfig,
    /// Number of queries (the paper uses 1,000).
    pub queries: usize,
    /// Batch seed; queries and phases derive deterministically from it.
    pub seed: u64,
    /// Compare every answer against the exact oracle (needed for fail
    /// rates; costs one in-memory TNN per query).
    pub check_oracle: bool,
}

/// Reads the batch size from `TNN_QUERIES` (default 1,000 — the paper's
/// query count per configuration).
pub fn queries_per_batch() -> usize {
    std::env::var("TNN_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000)
}

/// Executes one batch of TNN queries over `(s_tree, r_tree)` and
/// aggregates the paper's metrics. Work is spread over all CPUs; results
/// are deterministic in the seed regardless of thread count.
pub fn run_batch(
    s_tree: &Arc<RTree>,
    r_tree: &Arc<RTree>,
    region: &Rect,
    cfg: &BatchConfig,
) -> BatchStats {
    let base_env = MultiChannelEnv::new(
        vec![Arc::clone(s_tree), Arc::clone(r_tree)],
        cfg.params,
        &[0, 0],
    );
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(cfg.queries.max(1));

    let mut partials: Vec<StatsAccumulator> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let base_env = &base_env;
            let handle = scope.spawn(move |_| {
                let mut acc = StatsAccumulator::default();
                let mut i = t;
                while i < cfg.queries {
                    run_one(base_env, region, cfg, i as u64, &mut acc);
                    i += threads;
                }
                acc
            });
            handles.push(handle);
        }
        for h in handles {
            partials.push(h.join().expect("worker thread panicked"));
        }
    })
    .expect("crossbeam scope");

    let mut total = StatsAccumulator::default();
    for p in &partials {
        total.merge(p);
    }
    total.finish()
}

fn run_one(
    base_env: &MultiChannelEnv,
    region: &Rect,
    cfg: &BatchConfig,
    query_index: u64,
    acc: &mut StatsAccumulator,
) {
    // Per-query randomness independent of the algorithm configuration, so
    // different algorithms see identical workloads.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ query_index.wrapping_mul(0x9E3779B97F4A7C15));
    let p = Point::new(
        rng.gen_range(region.min.x..=region.max.x),
        rng.gen_range(region.min.y..=region.max.y),
    );
    let phases = [
        rng.gen_range(0..base_env.channel(0).layout().cycle_len().max(1)),
        rng.gen_range(0..base_env.channel(1).layout().cycle_len().max(1)),
    ];
    let env = base_env.with_phases(&phases);

    let run = run_query(&env, p, 0, &cfg.tnn).expect("two channels, finite query");
    let no_answer = run.failed();
    let failed = if cfg.check_oracle {
        match &run.answer {
            None => true,
            Some(pair) => {
                let oracle = exact_tnn(p, env.channel(0).tree(), env.channel(1).tree());
                pair.dist > oracle.dist * (1.0 + FAIL_EPS) + FAIL_EPS
            }
        }
    } else {
        no_answer
    };
    acc.record(
        run.access_time(),
        run.tune_in(),
        run.tune_in_estimate(),
        run.tune_in_filter(),
        run.search_radius,
        run.candidates[0] + run.candidates[1],
        no_answer,
        failed,
    );
}

/// Executes one batch of **chained** TNN queries over `k` trees (the
/// future-work extension); reports the same aggregate metrics (fail rate
/// is always 0 — the chained estimate is exact by construction).
pub fn run_chain_batch(
    trees: &[Arc<RTree>],
    region: &Rect,
    params: BroadcastParams,
    ann: AnnMode,
    queries: usize,
    seed: u64,
) -> BatchStats {
    let base_env = MultiChannelEnv::new(trees.to_vec(), params, &vec![0; trees.len()]);
    let mut acc = StatsAccumulator::default();
    for i in 0..queries as u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ i.wrapping_mul(0x9E3779B97F4A7C15));
        let p = Point::new(
            rng.gen_range(region.min.x..=region.max.x),
            rng.gen_range(region.min.y..=region.max.y),
        );
        let phases: Vec<u64> = base_env
            .channels()
            .iter()
            .map(|c| rng.gen_range(0..c.layout().cycle_len().max(1)))
            .collect();
        let env = base_env.with_phases(&phases);
        let run = chain_tnn(&env, p, 0, ann, true).expect("valid chain environment");
        acc.record(
            run.access_time(),
            run.tune_in(),
            run.channels.iter().map(|c| c.estimate_pages).sum(),
            run.channels.iter().map(|c| c.filter_pages).sum(),
            run.search_radius,
            0,
            false,
            false,
        );
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn_core::Algorithm;
    use tnn_datasets::uniform_points;
    use tnn_rtree::PackingAlgorithm;

    fn tree(n: usize, seed: u64, params: &BroadcastParams) -> Arc<RTree> {
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let pts = uniform_points(n, &region, seed);
        Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
    }

    #[test]
    fn batch_is_deterministic_across_thread_schedules() {
        let params = BroadcastParams::new(64);
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let s = tree(150, 1, &params);
        let r = tree(120, 2, &params);
        let cfg = BatchConfig {
            params,
            tnn: TnnConfig::exact(Algorithm::DoubleNn),
            queries: 40,
            seed: 99,
            check_oracle: true,
        };
        let a = run_batch(&s, &r, &region, &cfg);
        let b = run_batch(&s, &r, &region, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.queries, 40);
        assert_eq!(a.fail_rate, 0.0, "exact algorithm must never fail");
        assert!(a.mean_access > 0.0);
        assert!(a.mean_tune_in > 0.0);
    }

    #[test]
    fn exact_algorithms_never_fail_in_batches() {
        let params = BroadcastParams::new(64);
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let s = tree(100, 3, &params);
        let r = tree(200, 4, &params);
        for alg in [Algorithm::WindowBased, Algorithm::DoubleNn, Algorithm::HybridNn] {
            let cfg = BatchConfig {
                params,
                tnn: TnnConfig::exact(alg),
                queries: 25,
                seed: 7,
                check_oracle: true,
            };
            let stats = run_batch(&s, &r, &region, &cfg);
            assert_eq!(stats.fail_rate, 0.0, "{}", alg.name());
        }
    }

    #[test]
    fn chain_batch_runs() {
        let params = BroadcastParams::new(64);
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let trees = vec![tree(50, 5, &params), tree(60, 6, &params), tree(40, 7, &params)];
        let stats = run_chain_batch(&trees, &region, params, AnnMode::Exact, 10, 3);
        assert_eq!(stats.queries, 10);
        assert_eq!(stats.fail_rate, 0.0);
        assert!(stats.mean_tune_in > 0.0);
    }

    #[test]
    fn queries_per_batch_env_override() {
        // Can't mutate the environment safely in parallel tests; just
        // check the default path parses.
        let n = queries_per_batch();
        assert!(n > 0);
    }
}
