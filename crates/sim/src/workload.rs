//! The dataset catalog: every workload of §6, generated deterministically
//! and cached as built R-trees per page capacity.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::sync::Mutex;
use tnn_broadcast::BroadcastParams;
use tnn_datasets as data;
use tnn_geom::Point;
use tnn_rtree::{PackingAlgorithm, RTree};

/// One of the paper's datasets. Uniform density exponents are stored in
/// tenths (`-58` means `10^-5.8`) so specs stay hashable.
///
/// The `S`/`R` variants are independently seeded families, matching the
/// paper's "another set of eight uniform datasets … with the same density
/// range and area, but different points".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetSpec {
    /// First uniform family (used on the S channel), density `10^(e/10)`.
    UnifS(i32),
    /// Second uniform family (used on the R channel).
    UnifR(i32),
    /// First size family (S channel), `n` points.
    SizeS(usize),
    /// Second size family (R channel), `n` points.
    SizeR(usize),
    /// Clustered CITY stand-in (≈5,922 points).
    CityLike,
    /// Clustered POST stand-in (≈123,593 points, scaled to the common
    /// region).
    PostLike,
}

impl DatasetSpec {
    /// The eight density exponents (in tenths) of the UNIF family.
    pub const UNIF_TENTHS: [i32; 8] = [-70, -66, -62, -58, -54, -50, -46, -42];

    /// Generates the dataset's points (deterministic).
    pub fn points(&self) -> Vec<Point> {
        match *self {
            DatasetSpec::UnifS(t) => data::unif(t as f64 / 10.0, 0x5000 + t.unsigned_abs() as u64),
            DatasetSpec::UnifR(t) => data::unif(t as f64 / 10.0, 0x9000 + t.unsigned_abs() as u64),
            DatasetSpec::SizeS(n) => data::size_family(n, 0x1000 + n as u64),
            DatasetSpec::SizeR(n) => data::size_family(n, 0x2000 + n as u64),
            DatasetSpec::CityLike => data::city_like(0xC17),
            DatasetSpec::PostLike => data::post_like(0x9057),
        }
    }

    /// Number of points without generating them (for labels and density
    /// ordering).
    pub fn size(&self) -> usize {
        match *self {
            DatasetSpec::UnifS(t) | DatasetSpec::UnifR(t) => {
                data::unif_size(t as f64 / 10.0, &data::paper_region())
            }
            DatasetSpec::SizeS(n) | DatasetSpec::SizeR(n) => n,
            DatasetSpec::CityLike => 5_922,
            DatasetSpec::PostLike => 123_593,
        }
    }
}

impl fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DatasetSpec::UnifS(t) | DatasetSpec::UnifR(t) => {
                write!(f, "UNIF({:.1})", t as f64 / 10.0)
            }
            DatasetSpec::SizeS(n) | DatasetSpec::SizeR(n) => write!(f, "{n}"),
            DatasetSpec::CityLike => write!(f, "CITY"),
            DatasetSpec::PostLike => write!(f, "POST"),
        }
    }
}

/// A cache of built R-trees keyed by `(dataset, page_capacity)` — tree
/// construction (STR packing of up to 123k points) dominates experiment
/// startup, and most figures reuse datasets across many configurations.
#[derive(Default)]
pub struct Catalog {
    cache: Mutex<HashMap<(DatasetSpec, usize), Arc<RTree>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// std Mutex instead of parking_lot: tree building never panics while
    /// the lock is held, so poisoning cannot propagate; recover
    /// defensively anyway.
    fn guard(&self) -> std::sync::MutexGuard<'_, HashMap<(DatasetSpec, usize), Arc<RTree>>> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The R-tree for `spec` under `params` (built on first use; STR
    /// packing, as in the paper).
    pub fn tree(&self, spec: DatasetSpec, params: &BroadcastParams) -> Arc<RTree> {
        let key = (spec, params.page_capacity);
        if let Some(t) = self.guard().get(&key) {
            return Arc::clone(t);
        }
        // Build outside the lock: different datasets can build in
        // parallel, and a rare duplicate build is harmless.
        let pts = spec.points();
        let tree = Arc::new(
            RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str)
                .expect("catalog datasets are non-empty and finite"),
        );
        self.guard().entry(key).or_insert_with(|| Arc::clone(&tree));
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unif_sizes_match_paper() {
        assert_eq!(DatasetSpec::UnifS(-70).size(), 152);
        assert_eq!(DatasetSpec::UnifR(-42).size(), 95_969);
    }

    #[test]
    fn s_and_r_families_differ() {
        let s = DatasetSpec::UnifS(-62).points();
        let r = DatasetSpec::UnifR(-62).points();
        assert_eq!(s.len(), r.len());
        assert_ne!(s, r);
    }

    #[test]
    fn catalog_caches_trees() {
        let catalog = Catalog::new();
        let params = BroadcastParams::new(64);
        let a = catalog.tree(DatasetSpec::UnifS(-70), &params);
        let b = catalog.tree(DatasetSpec::UnifS(-70), &params);
        assert!(Arc::ptr_eq(&a, &b));
        // Different page capacity → different tree.
        let c = catalog.tree(DatasetSpec::UnifS(-70), &BroadcastParams::new(128));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.num_objects(), 152);
    }

    #[test]
    fn labels() {
        assert_eq!(DatasetSpec::UnifS(-58).to_string(), "UNIF(-5.8)");
        assert_eq!(DatasetSpec::SizeR(10_000).to_string(), "10000");
        assert_eq!(DatasetSpec::CityLike.to_string(), "CITY");
    }
}
