//! Result tables: aligned text for the terminal, CSV for archival.

use std::io::Write;
use std::path::Path;

/// A simple result table: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (stringified by the caller).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }
}

/// Renders a table with aligned columns (markdown-compatible pipes).
pub fn format_table(table: &Table) -> String {
    let mut widths: Vec<usize> = table.header.iter().map(|h| h.len()).collect();
    for row in &table.rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!(" {:width$} |", cell, width = widths[i]));
        }
        line
    };
    let mut out = String::new();
    out.push_str(&format!("## {}\n\n", table.title));
    out.push_str(&fmt_row(&table.header));
    out.push('\n');
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    out.push_str(&sep);
    out.push('\n');
    for row in &table.rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Writes the table as CSV under `dir/<name>.csv` (creating `dir`).
pub fn write_csv(table: &Table, dir: &Path, name: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
    writeln!(f, "{}", table.header.join(","))?;
    for row in &table.rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "10.5".into()]);
        t.push_row(vec!["200".into(), "3".into()]);
        t
    }

    #[test]
    fn formatting_aligns_columns() {
        let s = format_table(&sample());
        assert!(s.contains("## Demo"));
        assert!(s.contains("| x   | value |"));
        assert!(s.contains("| 200 | 3     |"));
        // Header separator present.
        assert!(s.lines().nth(3).unwrap().starts_with("|--"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("tnn_sim_report_test");
        write_csv(&sample(), &dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(content, "x,value\n1,10.5\n200,3\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
