//! Fixture tests for rules R1–R5: each rule has at least one fixture
//! proving it fires and one proving the pragma/allowlist suppresses
//! it, plus hygiene coverage for unused or unexplained exemptions.

use tnn_check::config::{Allowlist, Config, ConservedDecl, LockDecl};
use tnn_check::rules::{check_files, FileUnit, Report};
use tnn_check::unit_from_source;

fn run(config: &Config, files: &[(&str, &str)]) -> Report {
    let units: Vec<FileUnit> = files
        .iter()
        .map(|(path, src)| unit_from_source(path, src))
        .collect();
    check_files(&units, config)
}

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule.as_str()).collect()
}

// ---------------------------------------------------------------- R1

#[test]
fn r1_fires_on_wall_clock_in_prod_code() {
    let config = Config::default();
    let report = run(
        &config,
        &[(
            "crates/x/src/m.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        )],
    );
    assert_eq!(rules_of(&report), ["R1"]);
    assert_eq!(report.findings[0].line, 1);
}

#[test]
fn r1_covers_systemtime_and_sleep() {
    let config = Config::default();
    let report = run(
        &config,
        &[(
            "crates/x/src/m.rs",
            "fn f() { SystemTime::now(); thread::sleep(d); }",
        )],
    );
    assert_eq!(rules_of(&report), ["R1", "R1"]);
}

#[test]
fn r1_skips_tests_and_test_files() {
    let config = Config::default();
    let report = run(
        &config,
        &[
            (
                "crates/x/src/m.rs",
                "#[cfg(test)] mod t { fn f() { Instant::now(); } }",
            ),
            ("crates/x/tests/it.rs", "fn f() { Instant::now(); }"),
        ],
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn r1_allowlist_prefix_suppresses() {
    let config = Config {
        r1_allow: Allowlist::parse("crates/x/src/  this module owns the clock"),
        ..Config::default()
    };
    let report = run(
        &config,
        &[("crates/x/src/m.rs", "fn f() { Instant::now(); }")],
    );
    assert!(report.findings.is_empty());
    assert!(report.warnings.is_empty(), "used entry must not warn");
}

#[test]
fn r1_pragma_suppresses() {
    let config = Config::default();
    let report = run(
        &config,
        &[(
            "crates/x/src/m.rs",
            "fn f() {\n    // check:allow(R1, startup banner timestamp only)\n    Instant::now();\n}",
        )],
    );
    assert!(report.findings.is_empty());
    assert!(report.warnings.is_empty());
}

// ---------------------------------------------------------------- R2

fn r2_config() -> Config {
    Config {
        r2_scopes: vec!["crates/serve/src/".to_string()],
        ..Config::default()
    }
}

#[test]
fn r2_fires_on_unwrap_expect_panic() {
    let report = run(
        &r2_config(),
        &[(
            "crates/serve/src/server.rs",
            "fn f() { a.unwrap(); b.expect(\"msg\"); panic!(\"no\"); }",
        )],
    );
    assert_eq!(rules_of(&report), ["R2", "R2", "R2"]);
}

#[test]
fn r2_is_scoped_to_declared_crates() {
    let report = run(
        &r2_config(),
        &[("crates/geom/src/a.rs", "fn f() { a.unwrap(); }")],
    );
    assert!(report.findings.is_empty());
}

#[test]
fn r2_skips_cfg_test_code() {
    let report = run(
        &r2_config(),
        &[(
            "crates/serve/src/server.rs",
            "#[cfg(test)] mod t { #[test] fn f() { a.unwrap(); } }",
        )],
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn r2_pragma_on_previous_line_suppresses() {
    let report = run(
        &r2_config(),
        &[(
            "crates/serve/src/server.rs",
            "fn f() {\n    // check:allow(R2, guarded by the is_empty check above)\n    a.unwrap();\n}",
        )],
    );
    assert!(report.findings.is_empty());
    assert!(report.warnings.is_empty());
}

#[test]
fn r2_allowlist_site_key_suppresses() {
    let config = Config {
        r2_allow: Allowlist::parse("crates/serve/src/server.rs:1  construction-time only"),
        ..r2_config()
    };
    let report = run(
        &config,
        &[("crates/serve/src/server.rs", "fn f() { a.unwrap(); }")],
    );
    assert!(report.findings.is_empty());
    assert!(report.warnings.is_empty());
}

#[test]
fn r2_ignores_unwrap_or_else() {
    let report = run(
        &r2_config(),
        &[(
            "crates/serve/src/server.rs",
            "fn f() { m.lock().unwrap_or_else(|e| e.into_inner()); }",
        )],
    );
    let r2: Vec<_> = report.findings.iter().filter(|f| f.rule == "R2").collect();
    assert!(r2.is_empty(), "{r2:?}");
}

// ---------------------------------------------------------------- R3

fn r3_config() -> Config {
    Config {
        locks: vec![
            LockDecl {
                name: "outer".into(),
                fields: vec!["outer_lock".into()],
                files: vec![],
                rank: 0,
            },
            LockDecl {
                name: "inner".into(),
                fields: vec!["inner_lock".into()],
                files: vec![],
                rank: 1,
            },
        ],
        ..Config::default()
    }
}

#[test]
fn r3_fires_on_undeclared_lock() {
    let report = run(
        &r3_config(),
        &[("crates/x/src/m.rs", "fn f() { self.mystery.lock(); }")],
    );
    assert_eq!(rules_of(&report), ["R3"]);
    assert!(report.findings[0].message.contains("mystery"));
}

#[test]
fn r3_fires_on_inverted_nesting() {
    let src = "
        fn f(&self) {
            let b = self.inner_lock.lock();
            let a = self.outer_lock.lock();
        }
    ";
    let report = run(&r3_config(), &[("crates/x/src/m.rs", src)]);
    assert_eq!(rules_of(&report), ["R3"]);
    assert!(report.findings[0].message.contains("outer"));
}

#[test]
fn r3_accepts_declared_order() {
    let src = "
        fn f(&self) {
            let a = self.outer_lock.lock();
            let b = self.inner_lock.lock();
        }
    ";
    let report = run(&r3_config(), &[("crates/x/src/m.rs", src)]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn r3_sibling_blocks_do_not_nest() {
    // Each block drops its guard before the next opens: no inversion.
    let src = "
        fn f(&self) {
            { let b = self.inner_lock.lock(); }
            { let a = self.outer_lock.lock(); }
        }
    ";
    let report = run(&r3_config(), &[("crates/x/src/m.rs", src)]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn r3_separate_functions_do_not_nest() {
    let src = "
        fn f(&self) { let b = self.inner_lock.lock(); }
        fn g(&self) { let a = self.outer_lock.lock(); }
    ";
    let report = run(&r3_config(), &[("crates/x/src/m.rs", src)]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn r3_resolves_method_call_receivers() {
    let config = Config {
        locks: vec![LockDecl {
            name: "stripe".into(),
            fields: vec!["shard".into()],
            files: vec![],
            rank: 0,
        }],
        ..Config::default()
    };
    let report = run(
        &config,
        &[(
            "crates/x/src/m.rs",
            "fn f(&self) { self.shard(&key).lock(); }",
        )],
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn r3_ignores_io_write_on_undeclared_receivers() {
    // `.write()`/`.read()` only count when the receiver is a declared
    // lock — io writers must not trip the rule.
    let report = run(
        &r3_config(),
        &[("crates/x/src/m.rs", "fn f() { some_file.write(); }")],
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn r3_file_scoping_distinguishes_same_field_name() {
    let config = Config {
        locks: vec![LockDecl {
            name: "serve.state".into(),
            fields: vec!["state".into()],
            files: vec!["crates/serve/".into()],
            rank: 0,
        }],
        ..Config::default()
    };
    // Same field name outside the declared file prefix: undeclared.
    let report = run(
        &config,
        &[
            (
                "crates/serve/src/server.rs",
                "fn f(&self) { self.state.lock(); }",
            ),
            (
                "crates/other/src/o.rs",
                "fn f(&self) { self.state.lock(); }",
            ),
        ],
    );
    assert_eq!(rules_of(&report), ["R3"]);
    assert_eq!(report.findings[0].path, "crates/other/src/o.rs");
}

#[test]
fn r3_allowlist_suppresses() {
    let config = Config {
        r3_allow: Allowlist::parse(
            "crates/x/src/m.rs:1  transitional lock pending hierarchy entry",
        ),
        ..r3_config()
    };
    let report = run(
        &config,
        &[("crates/x/src/m.rs", "fn f() { self.mystery.lock(); }")],
    );
    assert!(report.findings.is_empty());
    assert!(report.warnings.is_empty());
}

// ---------------------------------------------------------------- R4

const R4_SRC: &str = "
    pub struct Stats {
        pub hits: u64,
        pub misses: u64,
        pub label: String,
    }
    impl Stats {
        pub fn conserved(&self) -> bool {
            self.hits <= self.hits + self.misses
        }
        pub fn merge(&mut self, other: &Stats) {
            self.hits += other.hits;
        }
    }
";

fn r4_config() -> Config {
    Config {
        conserved: vec![ConservedDecl {
            strukt: "Stats".into(),
            file: "crates/x/src/stats.rs".into(),
            functions: vec!["conserved".into(), "merge".into()],
        }],
        ..Config::default()
    }
}

#[test]
fn r4_fires_on_field_missing_from_accounting() {
    let report = run(&r4_config(), &[("crates/x/src/stats.rs", R4_SRC)]);
    // `misses` is in conserved but not merge; `label` is not numeric.
    assert_eq!(rules_of(&report), ["R4"]);
    assert_eq!(report.findings[0].allow_key, "Stats.misses@merge");
}

#[test]
fn r4_allowlist_suppresses() {
    let config = Config {
        r4_allow: Allowlist::parse(
            "Stats.misses@merge  gauge not a counter; re-sampled after merge",
        ),
        ..r4_config()
    };
    let report = run(&config, &[("crates/x/src/stats.rs", R4_SRC)]);
    assert!(report.findings.is_empty());
    assert!(report.warnings.is_empty());
}

#[test]
fn r4_fires_when_declared_function_is_missing() {
    let config = Config {
        conserved: vec![ConservedDecl {
            strukt: "Stats".into(),
            file: "crates/x/src/stats.rs".into(),
            functions: vec!["fold".into()],
        }],
        ..Config::default()
    };
    let report = run(&config, &[("crates/x/src/stats.rs", R4_SRC)]);
    assert_eq!(rules_of(&report), ["R4"]);
    assert!(report.findings[0].message.contains("fold"));
}

#[test]
fn r4_resolves_owner_qualified_functions() {
    let src = "
        pub struct CacheStats { pub hits: u64 }
        pub struct Cache;
        impl Cache {
            pub fn stats(&self) -> CacheStats { CacheStats { hits: self.hits } }
        }
    ";
    let config = Config {
        conserved: vec![ConservedDecl {
            strukt: "CacheStats".into(),
            file: "crates/x/src/cache.rs".into(),
            functions: vec!["Cache::stats".into()],
        }],
        ..Config::default()
    };
    let report = run(&config, &[("crates/x/src/cache.rs", src)]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ---------------------------------------------------------------- R5

#[test]
fn r5_fires_on_crate_root_without_forbid() {
    let config = Config::default();
    let report = run(&config, &[("crates/x/src/lib.rs", "pub fn f() {}")]);
    assert_eq!(rules_of(&report), ["R5"]);
}

#[test]
fn r5_accepts_forbid_and_skips_non_roots() {
    let config = Config::default();
    let report = run(
        &config,
        &[
            (
                "crates/x/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {}",
            ),
            ("crates/x/src/helper.rs", "pub fn g() {}"),
        ],
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn r5_checks_bin_roots_and_allowlists_by_prefix() {
    let config = Config {
        r5_allow: Allowlist::parse("crates/legacy/  ffi crate pending safe rewrite"),
        ..Config::default()
    };
    let report = run(
        &config,
        &[
            ("crates/x/src/bin/tool.rs", "fn main() {}"),
            ("crates/legacy/src/lib.rs", "pub fn f() {}"),
        ],
    );
    assert_eq!(rules_of(&report), ["R5"]);
    assert_eq!(report.findings[0].path, "crates/x/src/bin/tool.rs");
    assert!(report.warnings.is_empty());
}

// ----------------------------------------------------------- hygiene

#[test]
fn unused_pragma_warns() {
    let config = Config::default();
    let report = run(
        &config,
        &[(
            "crates/x/src/m.rs",
            "#![forbid(unsafe_code)]\n// check:allow(R2, stale excuse)\npub fn f() {}",
        )],
    );
    assert!(report.findings.is_empty());
    assert_eq!(report.warnings.len(), 1);
    assert!(report.warnings[0].message.contains("suppresses nothing"));
}

#[test]
fn pragma_without_reason_warns() {
    let report = run(
        &r2_config(),
        &[(
            "crates/serve/src/server.rs",
            "fn f() {\n    // check:allow(R2)\n    a.unwrap();\n}",
        )],
    );
    assert!(report.findings.is_empty(), "pragma still suppresses");
    assert_eq!(report.warnings.len(), 1);
    assert!(report.warnings[0].message.contains("no reason"));
}

#[test]
fn unused_and_todo_allowlist_entries_warn() {
    let config = Config {
        r2_allow: Allowlist::parse("crates/serve/src/gone.rs:9  TODO: justify"),
        ..r2_config()
    };
    let report = run(&config, &[("crates/serve/src/server.rs", "fn f() {}")]);
    assert!(report.findings.is_empty());
    // One warning for unused, one for the TODO reason.
    assert_eq!(report.warnings.len(), 2, "{:?}", report.warnings);
    assert!(report
        .warnings
        .iter()
        .any(|w| w.message.contains("still says TODO")));
}

#[test]
fn doc_comments_mentioning_pragmas_are_not_pragmas() {
    let config = Config::default();
    let report = run(
        &config,
        &[(
            "crates/x/src/helper.rs",
            "/// Suppress with `// check:allow(R2, reason)` pragmas.\npub fn f() {}",
        )],
    );
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
}
