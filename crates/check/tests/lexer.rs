//! Fixture tests for the hand-rolled lexer and the scope/annotation
//! pass: the tricky token shapes (raw strings, nested block comments),
//! the `#[cfg(test)]` boundaries the rules rely on, and a property
//! test that lexing is total over arbitrary byte soup.

use proptest::prelude::*;
use tnn_check::lexer::{lex, TokenKind};
use tnn_check::scope::annotate;

/// The identifier tokens of `src`, in order.
fn idents(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter_map(|t| match t.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        })
        .collect()
}

#[test]
fn strings_hide_their_contents() {
    // `.unwrap()` inside a string literal must not look like a call.
    let toks = idents(r#"let msg = "please .unwrap() me"; x.not_unwrap();"#);
    assert!(!toks.iter().any(|t| t == "unwrap"), "{toks:?}");
    assert!(toks.iter().any(|t| t == "not_unwrap"));
}

#[test]
fn raw_strings_with_hashes() {
    // The quote inside `r#"…"…"#` is literal text, and the `.lock()`
    // after the raw string must still tokenize.
    let src = r##"let s = r#"quote " inside .unwrap()"#; m.lock();"##;
    let toks = idents(src);
    assert!(!toks.iter().any(|t| t == "unwrap"), "{toks:?}");
    assert!(toks.iter().any(|t| t == "lock"));
}

#[test]
fn byte_and_cstring_literals() {
    let toks = idents(r##"let a = b"panic!"; let b = br#"panic!"#; let c = b'!';"##);
    assert!(!toks.iter().any(|t| t == "panic"), "{toks:?}");
}

#[test]
fn raw_identifiers_are_identifiers() {
    let toks = idents("let r#type = 1; r#fn();");
    // `r#ident` keeps the `r` prefix as an ident and the tail ident.
    assert!(toks.iter().any(|t| t == "type"));
}

#[test]
fn nested_block_comments_close_correctly() {
    let src = "/* outer /* inner .unwrap() */ still comment */ x.lock()";
    let toks = idents(src);
    assert!(!toks.iter().any(|t| t == "unwrap"), "{toks:?}");
    assert!(toks.iter().any(|t| t == "lock"));
}

#[test]
fn line_comments_preserve_text_for_pragmas() {
    let toks = lex("foo(); // check:allow(R2, a reason)");
    let comment = toks
        .iter()
        .find_map(|t| match &t.kind {
            TokenKind::Comment(text) => Some(text.clone()),
            _ => None,
        })
        .unwrap();
    assert!(comment.contains("check:allow(R2, a reason)"));
}

#[test]
fn lifetimes_are_not_char_literals() {
    // `'a` must not swallow `, T>` as a char literal body.
    let toks = idents("fn f<'a, T>(x: &'a T) -> &'a T { x }");
    assert!(toks.iter().any(|t| t == "T"));
    // And a real char literal containing a quote-worthy char still closes.
    let toks = idents(r"let c = 'x'; let d = '\''; y.lock();");
    assert!(toks.iter().any(|t| t == "lock"));
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    let src = "let a = \"two\nline string\";\nb.lock();";
    let toks = lex(src);
    let lock = toks.iter().find(|t| t.ident() == Some("lock")).unwrap();
    assert_eq!(lock.line, 3);
}

#[test]
fn cfg_test_scope_covers_the_module_body() {
    let src = "
        fn prod() { a.unwrap(); }
        #[cfg(test)]
        mod tests {
            fn helper() { b.unwrap(); }
            #[test]
            fn case() { c.unwrap(); }
        }
        fn prod2() { d.unwrap(); }
    ";
    let ann = annotate(lex(src));
    for (tok, in_test) in ann.tokens.iter().zip(&ann.in_test) {
        match tok.ident() {
            Some("a") | Some("d") => assert!(!in_test, "{tok:?} wrongly in test scope"),
            Some("b") | Some("c") => assert!(in_test, "{tok:?} missed test scope"),
            _ => {}
        }
    }
}

#[test]
fn test_attribute_arms_only_the_next_item() {
    let src = "
        #[test]
        fn case() { x.unwrap(); }
        fn prod() { y.unwrap(); }
    ";
    let ann = annotate(lex(src));
    for (tok, in_test) in ann.tokens.iter().zip(&ann.in_test) {
        match tok.ident() {
            Some("x") => assert!(in_test),
            Some("y") => assert!(!in_test, "#[test] leaked past its item"),
            _ => {}
        }
    }
}

#[test]
fn cfg_not_test_is_not_test_scope() {
    let src = "#[cfg(not(test))] mod prod { fn f() { x.unwrap(); } }";
    let ann = annotate(lex(src));
    for (tok, in_test) in ann.tokens.iter().zip(&ann.in_test) {
        if tok.ident() == Some("x") {
            assert!(!in_test, "cfg(not(test)) misread as test scope");
        }
    }
}

#[test]
fn fn_and_impl_owners_are_tracked() {
    let src = "
        impl<K: Eq, V> Cache<K, V> {
            fn probe(&self) { hit(); }
        }
        impl Display for Wrapper {
            fn fmt(&self) { go(); }
        }
        fn free() { run(); }
    ";
    let ann = annotate(lex(src));
    let by_name = |name: &str| ann.fns.iter().find(|f| f.name == name).unwrap();
    assert_eq!(by_name("probe").owner.as_deref(), Some("Cache"));
    assert_eq!(by_name("fmt").owner.as_deref(), Some("Wrapper"));
    assert_eq!(by_name("free").owner, None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Lexing is total: any byte soup (lossily decoded) produces a
    /// token stream without panicking, and annotation survives it too.
    #[test]
    fn lex_never_panics(bytes in prop::collection::vec(0u8..=255u8, 0..200)) {
        let src = String::from_utf8_lossy(&bytes);
        let tokens = lex(&src);
        let _ = annotate(tokens);
    }

    /// Rust-ish soup: the interesting delimiters at high density, to
    /// drive the string/comment/char state machine harder than uniform
    /// bytes would.
    #[test]
    fn lex_never_panics_on_delimiter_soup(parts in prop::collection::vec(0usize..12, 0..80)) {
        const ATOMS: [&str; 12] = [
            "\"", "'", "r#\"", "#", "/*", "*/", "//", "\n", "\\", "b\"", "ident", "{",
        ];
        let src: String = parts.iter().map(|&i| ATOMS[i]).collect();
        let tokens = lex(&src);
        let _ = annotate(tokens);
    }
}
