//! The annotation pass over a lexed token stream: which tokens sit in
//! `#[cfg(test)]` / `#[test]` scope, which function (and `impl` block)
//! encloses each token, and which `// check:allow(RULE, reason)`
//! pragmas the file declares.
//!
//! The pass is a single linear walk tracking brace structure. It is
//! deliberately approximate where full parsing would be required (e.g.
//! an `impl` header containing a function-pointer generic would confuse
//! the owner-type capture) — the linter's job is to catch the 99% case
//! cheaply and loudly, with pragmas as the escape hatch for the rest.

use crate::lexer::{Token, TokenKind};

/// One function item discovered in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnInfo {
    /// The identifier after `fn`.
    pub name: String,
    /// The `impl` block's self type, when the function sits in one
    /// (`impl Foo { fn bar … }` → `Some("Foo")`; trait impls record the
    /// implementing type, i.e. the ident after `for`).
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
}

/// One `check:allow` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// The rule id inside the parens, e.g. `R2`.
    pub rule: String,
    /// The line the pragma comment starts on.
    pub line: u32,
    /// The justification after the comma (may be empty — the rules
    /// treat an empty reason as unexplained).
    pub reason: String,
}

/// Sentinel for "token is outside every function body".
pub const NO_FN: usize = usize::MAX;

/// A token stream plus everything the rules need to know about each
/// token's surroundings.
#[derive(Debug)]
pub struct Annotated {
    pub tokens: Vec<Token>,
    /// Per token: inside a `#[cfg(test)]` or `#[test]` item body.
    pub in_test: Vec<bool>,
    /// Per token: index into [`Annotated::fns`], or [`NO_FN`].
    pub fn_id: Vec<usize>,
    pub fns: Vec<FnInfo>,
    pub pragmas: Vec<Pragma>,
}

struct Scope {
    test: bool,
    fn_id: usize,
    owner: Option<String>,
}

/// Runs the annotation pass.
pub fn annotate(tokens: Vec<Token>) -> Annotated {
    let mut in_test = vec![false; tokens.len()];
    let mut fn_id = vec![NO_FN; tokens.len()];
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut pragmas = Vec::new();

    let mut stack: Vec<Scope> = Vec::new();
    // Attributes arm the *next* item: `#[cfg(test)]`/`#[test]` arm test
    // scope, `fn name` arms a function body, `impl … {` arms an owner.
    // Arms are consumed by the next `{` (the item body) and cleared by
    // a `;` outside parentheses (a body-less item).
    let mut armed_test = false;
    let mut armed_fn: Option<FnInfo> = None;
    let mut armed_owner: Option<String> = None;
    let mut paren_depth = 0usize;

    let mut i = 0;
    while i < tokens.len() {
        let cur_test = stack.last().is_some_and(|s| s.test);
        let cur_fn = stack.last().map_or(NO_FN, |s| s.fn_id);
        in_test[i] = cur_test;
        fn_id[i] = cur_fn;

        match &tokens[i].kind {
            TokenKind::Comment(text) => {
                if let Some(pragma) = parse_pragma(text, tokens[i].line) {
                    pragmas.push(pragma);
                }
            }
            TokenKind::Punct('#') => {
                // `#[attr…]`: scan the bracketed tokens; `#![…]` (inner
                // attributes) arm nothing.
                let inner = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
                let open = i + 1 + usize::from(inner);
                if tokens.get(open).is_some_and(|t| t.is_punct('[')) {
                    let close = matching(&tokens, open, '[', ']');
                    if !inner && attr_is_test(&tokens[open + 1..close]) {
                        armed_test = true;
                    }
                    // Annotate and skip the attribute body wholesale so
                    // `#[cfg(test)]` never reads as an item ident.
                    for j in i..close.min(tokens.len()) {
                        in_test[j] = cur_test;
                        fn_id[j] = cur_fn;
                    }
                    i = close; // the `]` itself is handled below
                }
            }
            TokenKind::Punct('(') => paren_depth += 1,
            TokenKind::Punct(')') => paren_depth = paren_depth.saturating_sub(1),
            TokenKind::Punct(';') if paren_depth == 0 => {
                armed_test = false;
                armed_fn = None;
                armed_owner = None;
            }
            TokenKind::Punct('{') => {
                let owner = armed_owner
                    .take()
                    .or_else(|| stack.last().and_then(|s| s.owner.clone()));
                let id = match armed_fn.take() {
                    Some(mut info) => {
                        info.owner = owner.clone();
                        fns.push(info);
                        fns.len() - 1
                    }
                    None => cur_fn,
                };
                stack.push(Scope {
                    test: cur_test || std::mem::take(&mut armed_test),
                    fn_id: id,
                    owner,
                });
            }
            TokenKind::Punct('}') => {
                stack.pop();
            }
            TokenKind::Ident(word) if word == "fn" && paren_depth == 0 => {
                if let Some(TokenKind::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) {
                    armed_fn = Some(FnInfo {
                        name: name.clone(),
                        owner: None,
                        line: tokens[i].line,
                    });
                }
            }
            TokenKind::Ident(word) if word == "impl" && paren_depth == 0 => {
                armed_owner = impl_owner(&tokens[i + 1..]);
            }
            _ => {}
        }
        i += 1;
    }

    Annotated {
        tokens,
        in_test,
        fn_id,
        fns,
        pragmas,
    }
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold `open_c`), or `tokens.len()` when unbalanced.
fn matching(tokens: &[Token], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct(open_c) {
            depth += 1;
        } else if tok.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len()
}

/// `true` for `#[test]` and `#[cfg(test)]`-style attribute bodies:
/// either the body is exactly the ident `test`, or it contains the
/// contiguous run `cfg ( test` / `cfg ( any ( test`. `cfg(not(test))`
/// does not match.
fn attr_is_test(body: &[Token]) -> bool {
    let idents_and_puncts: Vec<&TokenKind> = body.iter().map(|t| &t.kind).collect();
    if let [TokenKind::Ident(only)] = idents_and_puncts.as_slice() {
        return only == "test";
    }
    for w in body.windows(3) {
        let cfg_open = w[0].ident() == Some("cfg") && w[1].is_punct('(');
        let any_open = w[0].ident() == Some("any") && w[1].is_punct('(');
        if (cfg_open || any_open) && w[2].ident() == Some("test") {
            return true;
        }
    }
    false
}

/// The self type of an `impl` header whose tokens follow the `impl`
/// keyword: skips one balanced `<…>` generics run, then takes the next
/// identifier — unless a `for` appears before the body `{`, in which
/// case the identifier after `for` (the implementing type) wins.
fn impl_owner(rest: &[Token]) -> Option<String> {
    let mut i = 0;
    // Generic parameter list directly after `impl`.
    if rest.first().is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while i < rest.len() {
            if rest[i].is_punct('<') {
                depth += 1;
            } else if rest[i].is_punct('>') {
                depth -= 1;
                if depth <= 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let mut first_ident = None;
    while i < rest.len() && !rest[i].is_punct('{') && !rest[i].is_punct(';') {
        match rest[i].ident() {
            Some("for") => {
                return rest[i + 1..]
                    .iter()
                    .find_map(|t| t.ident())
                    .map(str::to_string);
            }
            Some(word) if first_ident.is_none() && word != "dyn" => {
                first_ident = Some(word.to_string());
            }
            _ => {}
        }
        i += 1;
    }
    first_ident
}

/// Parses `check:allow(RULE, reason…)` out of a comment's text. The
/// directive must open the comment (only comment markers and
/// whitespace before it), so prose *mentioning* the syntax — like this
/// doc comment — is not a pragma.
fn parse_pragma(text: &str, line: u32) -> Option<Pragma> {
    let head = text.trim_start_matches(['/', '*', '!', ' ', '\t']);
    let body = head.strip_prefix("check:allow(")?;
    let body = &body[..body.find(')')?];
    let (rule, reason) = match body.split_once(',') {
        Some((rule, reason)) => (rule.trim(), reason.trim()),
        None => (body.trim(), ""),
    };
    Some(Pragma {
        rule: rule.to_string(),
        line,
        reason: reason.to_string(),
    })
}
