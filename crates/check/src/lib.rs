//! `tnn-check` — the workspace invariant linter.
//!
//! The repo's load-bearing guarantees (bit-identical fault replay,
//! fail-closed serving, conserved stats accounting) are enforced
//! dynamically by equivalence gates; this crate enforces them
//! *statically*, so a violation is caught at the PR that introduces it
//! rather than at the test that happens to exercise it. Five rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1   | no wall-clock reads (`Instant::now`, `SystemTime::now`, `thread::sleep`) outside approved timing modules |
//! | R2   | no `.unwrap()` / `.expect(` / `panic!` in non-test serving code |
//! | R3   | every `.lock()` names a declared lock; nested acquisitions respect the docs/locks.toml order |
//! | R4   | every numeric stats field appears in its `conserved()`/`merge` accounting |
//! | R5   | every crate root carries `#![forbid(unsafe_code)]` |
//!
//! Deliberately dependency-free: [`lexer`] hand-rolls a total Rust
//! lexer (no `syn`), [`scope`] annotates test-cfg/function/impl scope,
//! [`config`] parses the TOML subset the config files use, and
//! [`rules`] runs R1–R5 over the annotated streams. See
//! `docs/ANALYSIS.md` for the rule catalog and escape hatches.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod scope;

use std::path::Path;

use rules::FileUnit;

/// Lexes + annotates one source string into a checkable unit.
/// `path` must be repo-relative with forward slashes.
pub fn unit_from_source(path: &str, src: &str) -> FileUnit {
    let is_test_file = path
        .split('/')
        .any(|part| part == "tests" || part == "benches");
    FileUnit {
        path: path.to_string(),
        annotated: scope::annotate(lexer::lex(src)),
        is_test_file,
    }
}

/// Walks `root`'s lintable source (`src/` and `crates/`), returning an
/// annotated unit per `.rs` file. `target/` and hidden directories are
/// skipped. Read failures abort — a file the linter cannot see is a
/// file it cannot vouch for.
pub fn collect_units(root: &Path) -> Result<Vec<FileUnit>, String> {
    let mut paths = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut units = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} escaped the root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        units.push(unit_from_source(&rel, &src));
    }
    Ok(units)
}

fn walk(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
