//! The rule implementations (R1–R5) plus allowlist/pragma hygiene.
//!
//! Every rule reports [`Finding`]s; a finding is suppressed by a
//! `// check:allow(RULE, reason)` pragma on the same line or the line
//! above, or by an entry in the rule's `check/rN.allow` file. Pragmas
//! and allowlist entries that suppress nothing, or carry no reason,
//! become *warnings* — fatal only under `--deny-warnings` (the CI
//! mode), so local bootstrapping with `--fix-allowlist` stays usable.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::scope::Annotated;

/// One rule violation (or, in [`Report::warnings`], a hygiene issue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// `R1`..`R5`, or `hygiene` for warnings.
    pub rule: String,
    /// Repo-relative path (forward slashes).
    pub path: String,
    pub line: u32,
    pub message: String,
    /// The key `--fix-allowlist` would append to the rule's allowlist
    /// to suppress this finding.
    pub allow_key: String,
}

impl Finding {
    pub fn render(&self) -> String {
        format!(
            "{} {}:{} — {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// One lexed + annotated source file.
#[derive(Debug)]
pub struct FileUnit {
    /// Repo-relative path with forward slashes.
    pub path: String,
    pub annotated: Annotated,
    /// Lives under a `tests/` or `benches/` directory: integration
    /// tests get the same exemptions as `#[cfg(test)]` scope.
    pub is_test_file: bool,
}

/// Everything one run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Rule violations — always fatal.
    pub findings: Vec<Finding>,
    /// Hygiene issues — fatal under `--deny-warnings`.
    pub warnings: Vec<Finding>,
}

/// Mutable bookkeeping shared by the rules: which pragmas and
/// allowlist entries earned their keep this run.
struct Usage {
    /// `pragma_used[unit][pragma_idx]`.
    pragma_used: Vec<Vec<bool>>,
    /// Allowlist keys that suppressed at least one finding, per rule
    /// (index 0 = R1 … 4 = R5).
    allow_used: [BTreeSet<String>; 5],
}

/// Index into [`Usage::allow_used`] for a rule id.
fn rule_slot(rule: &str) -> usize {
    match rule {
        "R1" => 0,
        "R2" => 1,
        "R3" => 2,
        "R4" => 3,
        _ => 4,
    }
}

impl Usage {
    fn mark_allow(&mut self, rule: &str, key: &str) {
        self.allow_used[rule_slot(rule)].insert(key.to_string());
    }
}

/// Runs every rule over `units` under `config`.
pub fn check_files(units: &[FileUnit], config: &Config) -> Report {
    let mut report = Report::default();
    let mut usage = Usage {
        pragma_used: units
            .iter()
            .map(|u| vec![false; u.annotated.pragmas.len()])
            .collect(),
        allow_used: Default::default(),
    };

    for (idx, unit) in units.iter().enumerate() {
        r1_determinism(unit, idx, config, &mut usage, &mut report);
        r2_fail_closed(unit, idx, config, &mut usage, &mut report);
        r3_lock_order(unit, idx, config, &mut usage, &mut report);
        r5_forbid_unsafe(unit, config, &mut usage, &mut report);
    }
    r4_conservation(units, config, &mut usage, &mut report);
    hygiene(units, config, &usage, &mut report);
    report
}

// ---------------------------------------------------------------- R1

/// R1 determinism: `Instant::now`, `SystemTime::now`, and
/// `thread::sleep` are forbidden in non-test code outside the approved
/// module list (`check/r1.allow`, path-prefix keyed). Wall-clock reads
/// in decision paths break the replay guarantee that every fault/serve
/// decision is a pure function of `(seed, channel, seq, attempt)`.
fn r1_determinism(
    unit: &FileUnit,
    unit_idx: usize,
    config: &Config,
    usage: &mut Usage,
    report: &mut Report,
) {
    if unit.is_test_file {
        return;
    }
    let ann = &unit.annotated;
    let toks = &ann.tokens;
    for i in 0..toks.len() {
        if ann.in_test[i] {
            continue;
        }
        // `Instant :: now` / `SystemTime :: now` / `thread :: sleep`.
        let called = |head: &str, tail: &str| -> bool {
            toks[i].ident() == Some(head)
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).and_then(|t| t.ident()) == Some(tail)
        };
        let what = if called("Instant", "now") {
            "Instant::now"
        } else if called("SystemTime", "now") {
            "SystemTime::now"
        } else if called("thread", "sleep") {
            "thread::sleep"
        } else {
            continue;
        };
        let line = toks[i].line;
        // Suppression: pragma, then path-prefix allowlist.
        if pragma_or_prefix(unit, unit_idx, "R1", line, config, usage) {
            continue;
        }
        report.findings.push(Finding {
            rule: "R1".into(),
            path: unit.path.clone(),
            line,
            message: format!(
                "{what} in non-test code: wall-clock reads break deterministic replay \
                 (approve the module in check/r1.allow or remove the call)"
            ),
            allow_key: unit.path.clone(),
        });
    }
}

/// Pragma on the finding's line (or the line above), else a path-prefix
/// allowlist entry for the rule.
fn pragma_or_prefix(
    unit: &FileUnit,
    unit_idx: usize,
    rule: &str,
    line: u32,
    config: &Config,
    usage: &mut Usage,
) -> bool {
    for (i, p) in unit.annotated.pragmas.iter().enumerate() {
        if p.rule == rule && (p.line == line || p.line + 1 == line) {
            usage.pragma_used[unit_idx][i] = true;
            return true;
        }
    }
    let allow = match rule {
        "R1" => &config.r1_allow,
        _ => &config.r5_allow,
    };
    if let Some(entry) = allow.lookup_prefix(&unit.path) {
        let key = entry.key.clone();
        usage.mark_allow(rule, &key);
        return true;
    }
    false
}

// ---------------------------------------------------------------- R2

/// R2 fail-closed: `.unwrap()` / `.expect(` / `panic!` are forbidden in
/// non-test code of the serving crates (`[r2] scopes` in
/// check/config.toml). A worker that panics takes its queue slot and
/// its in-flight jobs with it; errors must propagate as `TnnError`.
fn r2_fail_closed(
    unit: &FileUnit,
    unit_idx: usize,
    config: &Config,
    usage: &mut Usage,
    report: &mut Report,
) {
    if !config.r2_scopes.iter().any(|p| unit.path.starts_with(p)) {
        return;
    }
    let ann = &unit.annotated;
    let toks = &ann.tokens;
    for i in 0..toks.len() {
        if ann.in_test[i] {
            continue;
        }
        let what = if toks[i].is_punct('.') && toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            match toks.get(i + 1).and_then(|t| t.ident()) {
                Some("unwrap") => ".unwrap()",
                Some("expect") => ".expect(",
                _ => continue,
            }
        } else if toks[i].ident() == Some("panic")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            "panic!"
        } else {
            continue;
        };
        let line = toks[i].line;
        let key = format!("{}:{}", unit.path, line);
        if suppress_site(unit, unit_idx, "R2", line, &config.r2_allow, &key, usage) {
            continue;
        }
        report.findings.push(Finding {
            rule: "R2".into(),
            path: unit.path.clone(),
            line,
            message: format!(
                "{what} in non-test serving code: propagate a TnnError instead, or \
                 justify with `// check:allow(R2, reason)`"
            ),
            allow_key: key,
        });
    }
}

/// Pragma, else an exact-key allowlist entry.
fn suppress_site(
    unit: &FileUnit,
    unit_idx: usize,
    rule: &str,
    line: u32,
    allow: &crate::config::Allowlist,
    key: &str,
    usage: &mut Usage,
) -> bool {
    for (i, p) in unit.annotated.pragmas.iter().enumerate() {
        if p.rule == rule && (p.line == line || p.line + 1 == line) {
            usage.pragma_used[unit_idx][i] = true;
            return true;
        }
    }
    if allow.lookup(key).is_some() {
        usage.mark_allow(rule, key);
        return true;
    }
    false
}

// ---------------------------------------------------------------- R3

/// One lock acquisition observed while scanning a file.
struct Acquisition {
    /// Token indices of the `{` braces open at the acquisition site —
    /// a guard is (lexically) still held at a later site iff its scope
    /// path is a prefix of the later site's path.
    scope_path: Vec<usize>,
    fn_id: usize,
    rank: usize,
    name: String,
    line: u32,
}

/// R3 lock order: every `.lock()` receiver must name a lock declared in
/// `docs/locks.toml`, and while one guard is lexically held, further
/// acquisitions must move *inward* (higher rank) through the declared
/// hierarchy. `.read()`/`.write()` receivers are checked only when they
/// name a declared lock (so `io::Write::write` stays quiet).
fn r3_lock_order(
    unit: &FileUnit,
    unit_idx: usize,
    config: &Config,
    usage: &mut Usage,
    report: &mut Report,
) {
    if unit.is_test_file || config.locks.is_empty() {
        return;
    }
    let ann = &unit.annotated;
    let toks = &ann.tokens;
    let mut scope_path: Vec<usize> = Vec::new();
    let mut held: Vec<Acquisition> = Vec::new();

    for i in 0..toks.len() {
        if toks[i].is_punct('{') {
            scope_path.push(i);
            continue;
        }
        if toks[i].is_punct('}') {
            scope_path.pop();
            continue;
        }
        if ann.in_test[i] || !toks[i].is_punct('.') {
            continue;
        }
        // `.lock()` / `.read()` / `.write()` — zero-argument calls only.
        let method = match toks.get(i + 1).and_then(|t| t.ident()) {
            Some(m @ ("lock" | "read" | "write")) => m,
            _ => continue,
        };
        if !(toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')')))
        {
            continue;
        }
        let line = toks[i].line;
        let key = format!("{}:{}", unit.path, line);
        let receiver = receiver_of(toks, i);
        let decl = receiver
            .as_deref()
            .and_then(|r| config.lock_for(r, &unit.path));
        let Some(decl) = decl else {
            if method == "lock"
                && !suppress_site(unit, unit_idx, "R3", line, &config.r3_allow, &key, usage)
            {
                let recv = receiver.as_deref().unwrap_or("<expression>");
                report.findings.push(Finding {
                    rule: "R3".into(),
                    path: unit.path.clone(),
                    line,
                    message: format!(
                        "`.lock()` on `{recv}` names no lock declared in docs/locks.toml — \
                         declare it in the hierarchy (or allowlist the site)"
                    ),
                    allow_key: key,
                });
            }
            continue;
        };
        let (rank, name) = (decl.rank, decl.name.clone());
        let fn_id = ann.fn_id[i];
        for prior in &held {
            if prior.fn_id != fn_id
                || scope_path.len() < prior.scope_path.len()
                || scope_path[..prior.scope_path.len()] != prior.scope_path[..]
            {
                continue; // different function, or the prior guard's block closed
            }
            if prior.rank > rank
                && !suppress_site(unit, unit_idx, "R3", line, &config.r3_allow, &key, usage)
            {
                report.findings.push(Finding {
                    rule: "R3".into(),
                    path: unit.path.clone(),
                    line,
                    message: format!(
                        "acquires `{name}` while `{}` (acquired line {}) is still held — \
                         docs/locks.toml orders `{name}` outside `{}`, so this nesting \
                         can deadlock against the declared order",
                        prior.name, prior.line, prior.name
                    ),
                    allow_key: key.clone(),
                });
            }
        }
        held.push(Acquisition {
            scope_path: scope_path.clone(),
            fn_id,
            rank,
            name,
            line,
        });
    }
}

/// The field/variable identifier a method-call chain hangs off, walking
/// back from the `.` at `dot`: skips balanced `(...)`/`[...]` groups
/// (so `self.shard(&key).lock()` resolves to `shard`), returns the
/// first identifier found.
fn receiver_of(toks: &[crate::lexer::Token], dot: usize) -> Option<String> {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            crate::lexer::TokenKind::Ident(name) => return Some(name.clone()),
            crate::lexer::TokenKind::Punct(c @ (')' | ']')) => {
                let open = if *c == ')' { '(' } else { '[' };
                let mut depth = 1u32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if toks[j].is_punct(*c) {
                        depth += 1;
                    } else if toks[j].is_punct(open) {
                        depth -= 1;
                    }
                }
            }
            crate::lexer::TokenKind::Punct('.') => {}
            _ => return None,
        }
    }
    None
}

// ---------------------------------------------------------------- R4

/// R4 conservation: every numeric field of a declared stats struct must
/// be mentioned in each declared accounting function (`conserved`,
/// `merge`, …). A counter the conservation law never folds is a counter
/// the equivalence gates silently stop checking.
fn r4_conservation(units: &[FileUnit], config: &Config, usage: &mut Usage, report: &mut Report) {
    for decl in &config.conserved {
        let Some(unit) = units.iter().find(|u| u.path == decl.file) else {
            report.findings.push(Finding {
                rule: "R4".into(),
                path: decl.file.clone(),
                line: 0,
                message: format!(
                    "[[conserved]] declares `{}` in this file, but the file was not \
                     found in the walk",
                    decl.strukt
                ),
                allow_key: format!("{}@missing", decl.strukt),
            });
            continue;
        };
        let Some(fields) = numeric_fields(&unit.annotated, &decl.strukt) else {
            report.findings.push(Finding {
                rule: "R4".into(),
                path: decl.file.clone(),
                line: 0,
                message: format!("struct `{}` not found in file", decl.strukt),
                allow_key: format!("{}@missing", decl.strukt),
            });
            continue;
        };
        for spec in &decl.functions {
            let (owner, fn_name) = match spec.split_once("::") {
                Some((owner, name)) => (owner.to_string(), name),
                None => (decl.strukt.clone(), spec.as_str()),
            };
            let ann = &unit.annotated;
            let Some(target) = ann
                .fns
                .iter()
                .position(|f| f.name == fn_name && f.owner.as_deref() == Some(&owner))
            else {
                report.findings.push(Finding {
                    rule: "R4".into(),
                    path: decl.file.clone(),
                    line: 0,
                    message: format!(
                        "[[conserved]] names `{owner}::{fn_name}`, but no such function \
                         exists in the file"
                    ),
                    allow_key: format!("{}@{spec}", decl.strukt),
                });
                continue;
            };
            let body: BTreeSet<&str> = ann
                .tokens
                .iter()
                .zip(&ann.fn_id)
                .filter(|(_, id)| **id == target)
                .filter_map(|(t, _)| t.ident())
                .collect();
            for (field, field_line) in &fields {
                if body.contains(field.as_str()) {
                    continue;
                }
                let key = format!("{}.{field}@{spec}", decl.strukt);
                if config.r4_allow.lookup(&key).is_some() {
                    usage.mark_allow("R4", &key);
                    continue;
                }
                report.findings.push(Finding {
                    rule: "R4".into(),
                    path: decl.file.clone(),
                    line: *field_line,
                    message: format!(
                        "numeric field `{}.{field}` is never mentioned in `{spec}` — \
                         fold it into the accounting or allowlist `{key}` with a reason",
                        decl.strukt
                    ),
                    allow_key: key,
                });
            }
        }
    }
}

/// The numeric-typed fields of `struct name` in an annotated file:
/// `(field, declaration line)` pairs, or `None` when the struct is
/// absent.
fn numeric_fields(ann: &Annotated, name: &str) -> Option<Vec<(String, u32)>> {
    const NUMERIC: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        "f32", "f64",
    ];
    let toks = &ann.tokens;
    let start = (0..toks.len()).find(|&i| {
        toks[i].ident() == Some("struct") && toks.get(i + 1).and_then(|t| t.ident()) == Some(name)
    })?;
    let open = (start..toks.len()).find(|&i| toks[i].is_punct('{'))?;
    let mut fields = Vec::new();
    let mut depth = 0u32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && toks[i].is_punct(':')
            && toks
                .get(i + 1)
                .and_then(|t| t.ident())
                .is_some_and(|t| NUMERIC.contains(&t))
        {
            // `name : numeric_type` — the ident before the colon is the
            // field (skipping nothing: `pub` sits two back).
            if let Some(field) = i.checked_sub(1).and_then(|j| toks[j].ident()) {
                fields.push((field.to_string(), toks[i - 1].line));
            }
        }
        i += 1;
    }
    Some(fields)
}

// ---------------------------------------------------------------- R5

/// R5: every crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`)
/// must carry `#![forbid(unsafe_code)]` — `deny` can be overridden by
/// a stray `#[allow]`, `forbid` cannot.
fn r5_forbid_unsafe(unit: &FileUnit, config: &Config, usage: &mut Usage, report: &mut Report) {
    let is_root = unit.path.ends_with("src/lib.rs")
        || unit.path.ends_with("src/main.rs")
        || unit.path.contains("/src/bin/");
    if !is_root {
        return;
    }
    let toks = &unit.annotated.tokens;
    let has_forbid = (0..toks.len()).any(|i| {
        toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).and_then(|t| t.ident()) == Some("forbid")
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).and_then(|t| t.ident()) == Some("unsafe_code")
    });
    if has_forbid {
        return;
    }
    if let Some(entry) = config.r5_allow.lookup_prefix(&unit.path) {
        let key = entry.key.clone();
        usage.mark_allow("R5", &key);
        return;
    }
    report.findings.push(Finding {
        rule: "R5".into(),
        path: unit.path.clone(),
        line: 1,
        message: "crate root lacks `#![forbid(unsafe_code)]`".into(),
        allow_key: unit.path.clone(),
    });
}

// ----------------------------------------------------------- hygiene

/// Post-pass: pragmas and allowlist entries must (a) suppress something
/// and (b) carry a reason. Violations are warnings — fatal only under
/// `--deny-warnings`, so `--fix-allowlist` bootstrap output (reasons
/// stamped `TODO`) is locally runnable but cannot land in CI.
fn hygiene(units: &[FileUnit], config: &Config, usage: &Usage, report: &mut Report) {
    for (u, unit) in units.iter().enumerate() {
        for (i, p) in unit.annotated.pragmas.iter().enumerate() {
            if !usage.pragma_used[u][i] {
                report.warnings.push(Finding {
                    rule: "hygiene".into(),
                    path: unit.path.clone(),
                    line: p.line,
                    message: format!(
                        "check:allow({}) pragma suppresses nothing — remove it",
                        p.rule
                    ),
                    allow_key: String::new(),
                });
            } else if p.reason.is_empty() || p.reason.starts_with("TODO") {
                let what = if p.reason.is_empty() {
                    "carries no reason"
                } else {
                    "still says TODO"
                };
                report.warnings.push(Finding {
                    rule: "hygiene".into(),
                    path: unit.path.clone(),
                    line: p.line,
                    message: format!(
                        "check:allow({}) pragma {what} — every exemption must say why",
                        p.rule
                    ),
                    allow_key: String::new(),
                });
            }
        }
    }
    let lists = [
        ("R1", "check/r1.allow", &config.r1_allow),
        ("R2", "check/r2.allow", &config.r2_allow),
        ("R3", "check/r3.allow", &config.r3_allow),
        ("R4", "check/r4.allow", &config.r4_allow),
        ("R5", "check/r5.allow", &config.r5_allow),
    ];
    for (rule, file, allow) in lists {
        for entry in &allow.entries {
            if !usage.allow_used[rule_slot(rule)].contains(&entry.key) {
                report.warnings.push(Finding {
                    rule: "hygiene".into(),
                    path: file.into(),
                    line: entry.line,
                    message: format!("unused {rule} allowlist entry `{}` — remove it", entry.key),
                    allow_key: String::new(),
                });
            }
            if entry.reason.is_empty() || entry.reason.starts_with("TODO") {
                let what = if entry.reason.is_empty() {
                    "carries no reason"
                } else {
                    "still says TODO"
                };
                report.warnings.push(Finding {
                    rule: "hygiene".into(),
                    path: file.into(),
                    line: entry.line,
                    message: format!(
                        "{rule} allowlist entry `{}` {what} — every exemption must say why",
                        entry.key
                    ),
                    allow_key: String::new(),
                });
            }
        }
    }
}
