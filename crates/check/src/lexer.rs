//! A small, total Rust lexer: comments and literals are recognized (so
//! rule patterns can never match inside them), everything else is
//! reduced to identifiers and single-character punctuation.
//!
//! The lexer is deliberately forgiving — it must produce *some* token
//! stream for any input, including unterminated literals and non-Rust
//! bytes, because the linter may run over source that does not compile
//! yet (and the property tests feed it arbitrary strings). It never
//! panics and always terminates: every loop consumes at least one
//! character.

/// One lexical token with the 1-based line its first character sits on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// What a token is. String/char/number contents are irrelevant to every
/// rule, so literals carry no text; comments do (pragmas live there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `Instant`, …).
    Ident(String),
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A string, raw string, byte string, char, or number literal —
    /// contents stripped.
    Literal,
    /// A line or block comment, text preserved for pragma parsing
    /// (`// check:allow(R2, reason)`).
    Comment(String),
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    rest: &'a str,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.rest.chars().next()
    }

    fn peek2(&self) -> Option<char> {
        self.rest.chars().nth(1)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.rest.chars().next()?;
        self.rest = &self.rest[c.len_utf8()..];
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consumes characters while `pred` holds, returning the slice.
    fn take_while(&mut self, pred: impl Fn(char) -> bool) -> &'a str {
        let start = self.rest;
        let mut len = 0;
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            len += c.len_utf8();
            self.bump();
        }
        &start[..len]
    }
}

/// Lexes `src` into tokens. Total: never panics, consumes all input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { rest: src, line: 1 };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                let text = cur.take_while(|c| c != '\n').to_string();
                out.push(Token {
                    kind: TokenKind::Comment(text),
                    line,
                });
            }
            '/' if cur.peek2() == Some('*') => {
                out.push(Token {
                    kind: TokenKind::Comment(block_comment(&mut cur)),
                    line,
                });
            }
            '"' => {
                cur.bump();
                string_body(&mut cur, 0);
                out.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            '\'' => {
                lifetime_or_char(&mut cur, &mut out, line);
            }
            c if c.is_ascii_digit() => {
                number(&mut cur);
                out.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            c if is_ident_start(c) => {
                let word = cur.take_while(is_ident_continue);
                // A quote directly after `r`/`b`/`c` combinations means
                // the "identifier" was a literal prefix: r"", r#"",
                // b"", br#"", c"", cr#"", b''.
                let raw_ok = matches!(word, "r" | "br" | "cr" | "b" | "c");
                match cur.peek() {
                    Some('"') if raw_ok => {
                        cur.bump();
                        string_body(&mut cur, 0);
                        out.push(Token {
                            kind: TokenKind::Literal,
                            line,
                        });
                    }
                    Some('#') if matches!(word, "r" | "br" | "cr") => {
                        if raw_string(&mut cur) {
                            out.push(Token {
                                kind: TokenKind::Literal,
                                line,
                            });
                        } else {
                            // `r#ident` (raw identifier) or stray `#`:
                            // emit what we saw and continue.
                            out.push(Token {
                                kind: TokenKind::Ident(word.to_string()),
                                line,
                            });
                        }
                    }
                    Some('\'') if word == "b" => {
                        cur.bump();
                        char_body(&mut cur);
                        out.push(Token {
                            kind: TokenKind::Literal,
                            line,
                        });
                    }
                    _ => out.push(Token {
                        kind: TokenKind::Ident(word.to_string()),
                        line,
                    }),
                }
            }
            c => {
                cur.bump();
                out.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
            }
        }
    }
    out
}

/// Consumes a (possibly nested) block comment, `/*` already peeked.
fn block_comment(cur: &mut Cursor) -> String {
    let start = cur.rest;
    let mut len = 0;
    let mut depth = 0u32;
    loop {
        match (cur.peek(), cur.peek2()) {
            (Some('/'), Some('*')) => {
                depth += 1;
                len += 2;
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth = depth.saturating_sub(1);
                len += 2;
                cur.bump();
                cur.bump();
                if depth == 0 {
                    break;
                }
            }
            (Some(c), _) => {
                len += c.len_utf8();
                cur.bump();
            }
            (None, _) => break, // unterminated: comment runs to EOF
        }
    }
    start[..len].to_string()
}

/// Consumes a string body after the opening quote; `hashes` raw-string
/// hash marks must follow the closing quote (`0` for plain strings,
/// where backslash escapes apply instead).
fn string_body(cur: &mut Cursor, hashes: usize) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' if hashes == 0 => {
                cur.bump(); // the escaped character, whatever it is
            }
            '"' => {
                if hashes == 0 {
                    return;
                }
                // Count trailing #s; fewer than `hashes` means the
                // quote was literal text.
                let mut seen = 0;
                while seen < hashes && cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
            _ => {}
        }
    }
    // Unterminated: string runs to EOF.
}

/// Attempts `#…#"…"#…#` after a raw prefix (`r`, `br`, `cr`), with the
/// leading `#` still unconsumed. Returns `false` (consuming only what a
/// raw identifier would) when no quote follows the hashes.
fn raw_string(cur: &mut Cursor) -> bool {
    let hashes = cur.take_while(|c| c == '#').len();
    if cur.peek() == Some('"') {
        cur.bump();
        string_body(cur, hashes);
        true
    } else {
        false
    }
}

/// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal),
/// with the `'` still unconsumed.
fn lifetime_or_char(cur: &mut Cursor, out: &mut Vec<Token>, line: u32) {
    cur.bump(); // the quote
    match cur.peek() {
        // `'x` where `x` starts an identifier: lifetime unless the char
        // after the identifier-run's first char closes a char literal.
        Some(c) if is_ident_start(c) => {
            let closes = {
                let mut chars = cur.rest.chars();
                chars.next();
                chars.next() == Some('\'')
            };
            if closes {
                // 'x' — a one-character char literal.
                cur.bump();
                cur.bump();
                out.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            } else {
                cur.take_while(is_ident_continue);
                out.push(Token {
                    kind: TokenKind::Literal, // lifetimes matter to no rule
                    line,
                });
            }
        }
        Some(_) => {
            char_body(cur);
            out.push(Token {
                kind: TokenKind::Literal,
                line,
            });
        }
        None => out.push(Token {
            kind: TokenKind::Punct('\''),
            line,
        }),
    }
}

/// Consumes a char-literal body after the opening quote (escapes
/// honored; unterminated literals stop at a newline or EOF so a stray
/// quote cannot swallow the rest of the file).
fn char_body(cur: &mut Cursor) {
    while let Some(c) = cur.peek() {
        match c {
            '\\' => {
                cur.bump();
                cur.bump();
            }
            '\'' => {
                cur.bump();
                return;
            }
            '\n' => return,
            _ => {
                cur.bump();
            }
        }
    }
}

/// Consumes a number literal: digits, `_`, type suffixes, hex/oct/bin
/// letters, and a decimal point or exponent sign only when digits
/// follow (so `0..10` and `1.min(x)` tokenize as expected).
fn number(cur: &mut Cursor) {
    cur.take_while(|c| c.is_ascii_alphanumeric() || c == '_');
    while cur.peek() == Some('.') {
        let after = cur.peek2();
        if after.is_some_and(|c| c.is_ascii_digit()) {
            cur.bump();
            cur.take_while(|c| c.is_ascii_alphanumeric() || c == '_');
        } else {
            break;
        }
    }
    // `1e-5` tokenizes as Literal `-` Literal — the split changes
    // nothing for any rule, so signed exponents are not special-cased.
}
