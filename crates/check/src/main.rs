//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p tnn-check                      # findings fatal, warnings advisory
//! cargo run -p tnn-check -- --deny-warnings   # CI mode: warnings fatal too
//! cargo run -p tnn-check -- --fix-allowlist   # append TODO entries for findings
//! cargo run -p tnn-check -- --root /path      # lint a different checkout
//! ```
//!
//! Exit code 0 = clean, 1 = findings (or warnings under
//! `--deny-warnings`), 2 = usage/config error.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tnn_check::config::Config;
use tnn_check::{collect_units, rules};

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut fix_allowlist = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--fix-allowlist" => fix_allowlist = true,
            "--root" => match args.next() {
                Some(path) => root_arg = Some(PathBuf::from(path)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "tnn-check [--deny-warnings] [--fix-allowlist] [--root PATH]\n\
                     Lints the workspace against the invariants in docs/ANALYSIS.md."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg.map_or_else(find_root, Ok) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let config = match Config::load(&root) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let units = match collect_units(&root) {
        Ok(units) => units,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = rules::check_files(&units, &config);
    for finding in &report.findings {
        println!("{}", finding.render());
    }
    for warning in &report.warnings {
        println!("warning: {}", warning.render());
    }

    if fix_allowlist && !report.findings.is_empty() {
        if let Err(e) = append_allowlist(&root, &report.findings) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }

    let checked = units.len();
    let fatal = report.findings.len()
        + if deny_warnings {
            report.warnings.len()
        } else {
            0
        };
    println!(
        "tnn-check: {checked} files, {} finding(s), {} warning(s){}",
        report.findings.len(),
        report.warnings.len(),
        if fix_allowlist && !report.findings.is_empty() {
            " — allowlists updated, reasons stamped TODO (replace them before CI)"
        } else {
            ""
        }
    );
    if fatal > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Ascends from the current directory to the checkout holding
/// `check/config.toml`.
fn find_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir = start.as_path();
    loop {
        if dir.join("check/config.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no check/config.toml found above {} — run from the repo, or pass --root",
                    start.display()
                ));
            }
        }
    }
}

/// Appends one `key  TODO: justify` line per distinct finding key to
/// the finding's rule allowlist, keeping existing content.
fn append_allowlist(root: &Path, findings: &[rules::Finding]) -> Result<(), String> {
    let mut by_rule: BTreeMap<&str, Vec<&rules::Finding>> = BTreeMap::new();
    for finding in findings {
        by_rule.entry(&finding.rule).or_default().push(finding);
    }
    for (rule, group) in by_rule {
        let rel = format!("check/{}.allow", rule.to_lowercase());
        let path = root.join(&rel);
        let mut text = std::fs::read_to_string(&path).unwrap_or_default();
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        let mut seen: std::collections::BTreeSet<String> = text
            .lines()
            .filter_map(|l| l.split_whitespace().next())
            .map(str::to_string)
            .collect();
        let keys: Vec<String> = group
            .iter()
            .filter(|f| seen.insert(f.allow_key.clone()))
            .map(|f| f.allow_key.clone())
            .collect();
        for key in &keys {
            text.push_str(key);
            text.push_str("  TODO: justify\n");
        }
        if !keys.is_empty() {
            std::fs::write(&path, text).map_err(|e| format!("cannot write {rel}: {e}"))?;
            println!("wrote {} entr(y/ies) to {rel}", keys.len());
        }
    }
    Ok(())
}
