//! Configuration loading: a TOML-subset parser for `check/config.toml`
//! and `docs/locks.toml`, plus the flat `key  reason` allowlist format
//! shared by every rule.
//!
//! The subset covers exactly what the two config files use — `[section]`
//! tables, `[[section]]` array-of-tables, `key = "string"`, and
//! `key = ["list", "of", "strings"]` — and rejects nothing it does not
//! understand (unknown keys are preserved so rules can look them up).

use std::collections::BTreeMap;
use std::path::Path;

/// One table from a TOML-subset document: string and string-list
/// values keyed by bare identifier.
#[derive(Debug, Default, Clone)]
pub struct Table {
    pub strings: BTreeMap<String, String>,
    pub lists: BTreeMap<String, Vec<String>>,
}

impl Table {
    /// The string value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.strings.get(key).map(String::as_str)
    }

    /// The list value for `key`, or an empty slice.
    pub fn list(&self, key: &str) -> &[String] {
        self.lists.get(key).map_or(&[], Vec::as_slice)
    }
}

/// A parsed TOML-subset document: named tables plus array-of-tables.
#[derive(Debug, Default)]
pub struct Document {
    pub tables: BTreeMap<String, Table>,
    pub arrays: BTreeMap<String, Vec<Table>>,
}

impl Document {
    /// The single table `name`, or an empty one.
    pub fn table(&self, name: &str) -> Table {
        self.tables.get(name).cloned().unwrap_or_default()
    }

    /// All `[[name]]` entries, in file order.
    pub fn array(&self, name: &str) -> &[Table] {
        self.arrays.get(name).map_or(&[], Vec::as_slice)
    }
}

/// Parses the TOML subset. Lines it cannot read become errors — config
/// typos must not silently disable a rule.
pub fn parse_toml(src: &str, origin: &str) -> Result<Document, String> {
    let mut doc = Document::default();
    // Borrow-checker-friendly current-table handle: the table under
    // construction lives here and is committed on the next header/EOF.
    let mut current: Option<(String, bool, Table)> = None;

    fn commit(doc: &mut Document, current: &mut Option<(String, bool, Table)>) {
        if let Some((name, is_array, table)) = current.take() {
            if is_array {
                doc.arrays.entry(name).or_default().push(table);
            } else {
                doc.tables.insert(name, table);
            }
        }
    }

    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let err = |msg: &str| format!("{origin}:{}: {msg}: `{raw}`", idx + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            commit(&mut doc, &mut current);
            current = Some((header.trim().to_string(), true, Table::default()));
        } else if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            commit(&mut doc, &mut current);
            current = Some((header.trim().to_string(), false, Table::default()));
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim().to_string();
            let value = value.trim();
            let table = match &mut current {
                Some((_, _, table)) => table,
                None => return Err(err("key outside any [section]")),
            };
            if let Some(list) = value.strip_prefix('[') {
                let list = list.strip_suffix(']').ok_or_else(|| err("unclosed list"))?;
                let mut items = Vec::new();
                for item in list.split(',') {
                    let item = item.trim();
                    if item.is_empty() {
                        continue; // trailing comma
                    }
                    items.push(unquote(item).ok_or_else(|| err("unquoted list item"))?);
                }
                table.lists.insert(key, items);
            } else {
                let value = unquote(value).ok_or_else(|| err("unquoted value"))?;
                table.strings.insert(key, value);
            }
        } else {
            return Err(err("unrecognized line"));
        }
    }
    commit(&mut doc, &mut current);
    Ok(doc)
}

fn unquote(s: &str) -> Option<String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
}

/// One allowlist entry: a rule-specific key plus the human reason the
/// exemption exists.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub key: String,
    pub reason: String,
    pub line: u32,
}

/// A rule's allowlist file: `key  whitespace  reason` per line, `#`
/// comments and blanks ignored.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    pub fn parse(src: &str) -> Allowlist {
        let mut entries = Vec::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, reason) = match line.split_once(char::is_whitespace) {
                Some((key, reason)) => (key, reason.trim()),
                None => (line, ""),
            };
            entries.push(AllowEntry {
                key: key.to_string(),
                reason: reason.to_string(),
                line: (idx + 1) as u32,
            });
        }
        Allowlist { entries }
    }

    /// The entry matching `key` exactly, if any.
    pub fn lookup(&self, key: &str) -> Option<&AllowEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// The entry whose key is a path prefix of `path`, if any.
    pub fn lookup_prefix(&self, path: &str) -> Option<&AllowEntry> {
        self.entries.iter().find(|e| path.starts_with(&e.key))
    }
}

/// One declared lock: its hierarchy name, the field/receiver
/// identifiers that acquire it, and the file-path prefixes where those
/// identifiers mean *this* lock (empty = anywhere).
#[derive(Debug, Clone)]
pub struct LockDecl {
    pub name: String,
    pub fields: Vec<String>,
    pub files: Vec<String>,
    /// Position in the declared order: lower = outermost (acquired
    /// first).
    pub rank: usize,
}

/// The full linter configuration, assembled from `check/config.toml`,
/// `docs/locks.toml`, and the per-rule allowlists.
#[derive(Debug, Default)]
pub struct Config {
    /// R1: path prefixes where wall-clock/sleep calls are approved.
    pub r1_allow: Allowlist,
    /// R2: pragma-site keys `path:line` (written by --fix-allowlist).
    pub r2_allow: Allowlist,
    /// R3: lock-site keys `path:line`.
    pub r3_allow: Allowlist,
    /// R4: field keys `Struct.field@function`.
    pub r4_allow: Allowlist,
    /// R5: path prefixes of crates exempt from forbid(unsafe_code).
    pub r5_allow: Allowlist,
    /// R2 scope: path prefixes of crates whose non-test code must be
    /// panic-free.
    pub r2_scopes: Vec<String>,
    /// R3: declared locks, outermost first.
    pub locks: Vec<LockDecl>,
    /// R4: conservation declarations.
    pub conserved: Vec<ConservedDecl>,
}

/// One `[[conserved]]` declaration: a stats struct in a file whose
/// numeric fields must all be mentioned in each named function body.
#[derive(Debug, Clone)]
pub struct ConservedDecl {
    /// The struct name, e.g. `ServeStats`.
    pub strukt: String,
    /// The file (repo-relative) declaring the struct.
    pub file: String,
    /// Function names (optionally `Type::name`) whose bodies must
    /// mention every numeric field.
    pub functions: Vec<String>,
}

impl Config {
    /// Loads everything under `root` (the repo checkout). Missing
    /// allowlist files are treated as empty; a missing or malformed
    /// config/locks file is an error.
    pub fn load(root: &Path) -> Result<Config, String> {
        let read = |rel: &str| -> Result<String, String> {
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))
        };
        let read_opt = |rel: &str| std::fs::read_to_string(root.join(rel)).unwrap_or_default();

        let main = parse_toml(&read("check/config.toml")?, "check/config.toml")?;
        let locks_doc = parse_toml(&read("docs/locks.toml")?, "docs/locks.toml")?;

        let mut locks = Vec::new();
        for (rank, table) in locks_doc.array("lock").iter().enumerate() {
            let name = table
                .get("name")
                .ok_or_else(|| format!("docs/locks.toml: [[lock]] #{} missing name", rank + 1))?
                .to_string();
            locks.push(LockDecl {
                name,
                fields: table.list("fields").to_vec(),
                files: table.list("files").to_vec(),
                rank,
            });
        }

        let mut conserved = Vec::new();
        for (idx, table) in main.array("conserved").iter().enumerate() {
            let strukt = table
                .get("struct")
                .ok_or_else(|| {
                    format!(
                        "check/config.toml: [[conserved]] #{} missing struct",
                        idx + 1
                    )
                })?
                .to_string();
            let file = table
                .get("file")
                .ok_or_else(|| {
                    format!("check/config.toml: [[conserved]] #{} missing file", idx + 1)
                })?
                .to_string();
            conserved.push(ConservedDecl {
                strukt,
                file,
                functions: table.list("functions").to_vec(),
            });
        }

        Ok(Config {
            r1_allow: Allowlist::parse(&read_opt("check/r1.allow")),
            r2_allow: Allowlist::parse(&read_opt("check/r2.allow")),
            r3_allow: Allowlist::parse(&read_opt("check/r3.allow")),
            r4_allow: Allowlist::parse(&read_opt("check/r4.allow")),
            r5_allow: Allowlist::parse(&read_opt("check/r5.allow")),
            r2_scopes: main.table("r2").list("scopes").to_vec(),
            locks,
            conserved,
        })
    }

    /// The declared lock a `.lock()` receiver identifier names in
    /// `path`, honoring each declaration's file scoping.
    pub fn lock_for(&self, field: &str, path: &str) -> Option<&LockDecl> {
        self.locks.iter().find(|lock| {
            lock.fields.iter().any(|f| f == field)
                && (lock.files.is_empty() || lock.files.iter().any(|p| path.starts_with(p)))
        })
    }
}
