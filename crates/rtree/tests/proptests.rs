//! Property-based tests: structural invariants and query correctness of
//! the packed R-tree under every packing algorithm.

use proptest::prelude::*;
use tnn_geom::{Circle, Point, Rect};
use tnn_rtree::{PackingAlgorithm, RTree, RTreeParams};

fn points_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
        1..max,
    )
}

fn algo_strategy() -> impl Strategy<Value = PackingAlgorithm> {
    prop::sample::select(PackingAlgorithm::ALL.to_vec())
}

fn params_strategy() -> impl Strategy<Value = RTreeParams> {
    prop::sample::select(vec![
        RTreeParams::for_page_capacity(64),
        RTreeParams::for_page_capacity(128),
        RTreeParams::for_page_capacity(256),
        RTreeParams::new(2, 2),
        RTreeParams::new(4, 3),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every build satisfies all structural invariants.
    #[test]
    fn build_is_always_valid(
        pts in points_strategy(400),
        algo in algo_strategy(),
        params in params_strategy(),
    ) {
        let tree = RTree::build(&pts, params, algo).unwrap();
        tree.validate().unwrap();
        prop_assert_eq!(tree.num_objects(), pts.len());
    }

    /// The NN from the tree equals the brute-force NN distance.
    #[test]
    fn nn_matches_brute_force(
        pts in points_strategy(300),
        algo in algo_strategy(),
        qx in -1500.0f64..1500.0,
        qy in -1500.0f64..1500.0,
    ) {
        let q = Point::new(qx, qy);
        let tree = RTree::build(&pts, RTreeParams::default(), algo).unwrap();
        let nn = tree.nearest_neighbor(q).unwrap();
        let brute = pts.iter().map(|p| q.dist(*p)).fold(f64::INFINITY, f64::min);
        prop_assert!((nn.dist - brute).abs() < 1e-9);
    }

    /// k-NN distances equal the sorted brute-force prefix.
    #[test]
    fn knn_matches_brute_force(
        pts in points_strategy(200),
        algo in algo_strategy(),
        k in 1usize..20,
        qx in -1200.0f64..1200.0,
        qy in -1200.0f64..1200.0,
    ) {
        let q = Point::new(qx, qy);
        let tree = RTree::build(&pts, RTreeParams::default(), algo).unwrap();
        let got: Vec<f64> = tree.k_nearest(q, k).into_iter().map(|r| r.dist).collect();
        let mut brute: Vec<f64> = pts.iter().map(|p| q.dist(*p)).collect();
        brute.sort_by(f64::total_cmp);
        brute.truncate(k);
        prop_assert_eq!(got.len(), brute.len());
        for (g, b) in got.iter().zip(brute.iter()) {
            prop_assert!((g - b).abs() < 1e-9);
        }
    }

    /// Circular range queries return exactly the contained points.
    #[test]
    fn range_circle_matches_filter(
        pts in points_strategy(300),
        algo in algo_strategy(),
        cx in -1200.0f64..1200.0,
        cy in -1200.0f64..1200.0,
        rad in 0.0f64..800.0,
    ) {
        let c = Circle::new(Point::new(cx, cy), rad);
        let tree = RTree::build(&pts, RTreeParams::default(), algo).unwrap();
        let got = tree.range_circle(&c).hits.len();
        let expect = pts.iter().filter(|p| c.contains(**p)).count();
        prop_assert_eq!(got, expect);
    }

    /// Rectangular range queries return exactly the contained points.
    #[test]
    fn range_rect_matches_filter(
        pts in points_strategy(300),
        algo in algo_strategy(),
        a in (-1200.0f64..1200.0, -1200.0f64..1200.0),
        b in (-1200.0f64..1200.0, -1200.0f64..1200.0),
    ) {
        let w = Rect::new(Point::new(a.0, a.1), Point::new(b.0, b.1));
        let tree = RTree::build(&pts, RTreeParams::default(), algo).unwrap();
        let got = tree.range_rect(&w).hits.len();
        let expect = pts.iter().filter(|p| w.contains(**p)).count();
        prop_assert_eq!(got, expect);
    }

    /// Incremental browsing yields every object exactly once, in
    /// non-decreasing distance order.
    #[test]
    fn nn_iter_total_order(
        pts in points_strategy(150),
        algo in algo_strategy(),
        qx in -1200.0f64..1200.0,
        qy in -1200.0f64..1200.0,
    ) {
        let q = Point::new(qx, qy);
        let tree = RTree::build(&pts, RTreeParams::default(), algo).unwrap();
        let seq: Vec<(f64, u32)> = tree.nn_iter(q).map(|(_, o, d)| (d, o.0)).collect();
        prop_assert_eq!(seq.len(), pts.len());
        for w in seq.windows(2) {
            prop_assert!(w[0].0 <= w[1].0 + 1e-12);
        }
        let mut ids: Vec<u32> = seq.iter().map(|&(_, o)| o).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), pts.len());
    }

    /// Leaf-order object enumeration is a permutation of the input.
    #[test]
    fn leaf_order_is_permutation(
        pts in points_strategy(250),
        algo in algo_strategy(),
    ) {
        let tree = RTree::build(&pts, RTreeParams::default(), algo).unwrap();
        let mut ids: Vec<u32> = tree.objects_in_leaf_order().map(|(_, o)| o.0).collect();
        ids.sort_unstable();
        let expect: Vec<u32> = (0..pts.len() as u32).collect();
        prop_assert_eq!(ids, expect);
    }
}
