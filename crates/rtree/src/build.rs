//! Bulk-loading (packing) of R-trees: STR, Hilbert-sort and Nearest-X.
//!
//! All three algorithms work level by level: points are ordered and cut
//! into leaf-capacity groups, then the resulting nodes are ordered and cut
//! into fanout groups, until a single root remains. The finished tree is
//! renumbered into **depth-first preorder**, the order in which nodes are
//! placed into a broadcast index segment.

use crate::{
    ChildEntry, Entries, LeafEntry, Node, NodeId, ObjectId, RTree, RTreeError, RTreeParams,
};
use serde::{Deserialize, Serialize};
use tnn_geom::{Point, Rect};

/// The packing (bulk-loading) algorithm used to build a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PackingAlgorithm {
    /// Sort-Tile-Recursive [Leutenegger, Lopez, Edgington, ICDE'97]: sort
    /// by x, slice into √P vertical slabs, sort each slab by y, tile. The
    /// paper's choice ("we use STR packing algorithm to build the R-tree
    /// in order to achieve the best performance").
    #[default]
    Str,
    /// Sort by the Hilbert value of the point [Kamel & Faloutsos,
    /// CIKM'93].
    HilbertSort,
    /// Sort by x-coordinate only [Roussopoulos & Leifker, SIGMOD'85].
    NearestX,
}

impl PackingAlgorithm {
    /// All supported algorithms, for sweeps and ablations.
    pub const ALL: [PackingAlgorithm; 3] = [
        PackingAlgorithm::Str,
        PackingAlgorithm::HilbertSort,
        PackingAlgorithm::NearestX,
    ];

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            PackingAlgorithm::Str => "STR",
            PackingAlgorithm::HilbertSort => "Hilbert",
            PackingAlgorithm::NearestX => "NearestX",
        }
    }
}

/// An item being packed at some level: its representative center, its MBR
/// and its payload (a point or an already-built subtree).
struct PackItem<T> {
    center: Point,
    mbr: Rect,
    payload: T,
}

/// Orders `items` in place according to the packing algorithm and returns
/// groups of at most `capacity` items each.
fn pack_level<T>(
    mut items: Vec<PackItem<T>>,
    capacity: usize,
    algo: PackingAlgorithm,
    region: &Rect,
) -> Vec<Vec<PackItem<T>>> {
    debug_assert!(capacity >= 1);
    match algo {
        PackingAlgorithm::NearestX => {
            items.sort_by(|a, b| {
                a.center
                    .x
                    .total_cmp(&b.center.x)
                    .then(a.center.y.total_cmp(&b.center.y))
            });
            chunk(items, capacity)
        }
        PackingAlgorithm::HilbertSort => {
            items.sort_by_key(|it| hilbert_key(it.center, region));
            chunk(items, capacity)
        }
        PackingAlgorithm::Str => {
            let n = items.len();
            let pages = n.div_ceil(capacity);
            let slabs = (pages as f64).sqrt().ceil() as usize;
            let slab_size = slabs * capacity;
            items.sort_by(|a, b| {
                a.center
                    .x
                    .total_cmp(&b.center.x)
                    .then(a.center.y.total_cmp(&b.center.y))
            });
            let mut groups = Vec::with_capacity(pages);
            let mut rest = items;
            while !rest.is_empty() {
                let take = slab_size.min(rest.len());
                let mut slab: Vec<PackItem<T>> = rest.drain(..take).collect();
                slab.sort_by(|a, b| {
                    a.center
                        .y
                        .total_cmp(&b.center.y)
                        .then(a.center.x.total_cmp(&b.center.x))
                });
                groups.extend(chunk(slab, capacity));
            }
            groups
        }
    }
}

fn chunk<T>(items: Vec<PackItem<T>>, capacity: usize) -> Vec<Vec<PackItem<T>>> {
    let mut groups = Vec::with_capacity(items.len().div_ceil(capacity));
    let mut current = Vec::with_capacity(capacity);
    for item in items {
        current.push(item);
        if current.len() == capacity {
            groups.push(std::mem::replace(
                &mut current,
                Vec::with_capacity(capacity),
            ));
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// Order of the discrete Hilbert curve used for Hilbert-sort packing.
const HILBERT_ORDER: u32 = 16;

/// Hilbert rank of a point within `region`, on a `2^16 × 2^16` grid.
fn hilbert_key(p: Point, region: &Rect) -> u64 {
    let side = 1u32 << HILBERT_ORDER;
    let fx = if region.width() > 0.0 {
        (p.x - region.min.x) / region.width()
    } else {
        0.0
    };
    let fy = if region.height() > 0.0 {
        (p.y - region.min.y) / region.height()
    } else {
        0.0
    };
    let x = ((fx * (side - 1) as f64).round() as u32).min(side - 1);
    let y = ((fy * (side - 1) as f64).round() as u32).min(side - 1);
    hilbert_d(x, y, HILBERT_ORDER)
}

/// Distance along the Hilbert curve of order `order` for cell `(x, y)`
/// (classic iterative xy→d conversion).
fn hilbert_d(mut x: u32, mut y: u32, order: u32) -> u64 {
    let side: u32 = 1 << order;
    let mut d: u64 = 0;
    let mut s: u32 = side / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant so the sub-curve is in canonical orientation.
        if ry == 0 {
            if rx == 1 {
                x = side - 1 - x;
                y = side - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Bulk-loads an R-tree from `(point, object)` pairs.
///
/// Returns [`RTreeError::EmptyDataset`] for empty input,
/// [`RTreeError::InvalidParams`] for capacities below 2/1, and
/// [`RTreeError::NonFinitePoint`] when a coordinate is NaN or infinite.
pub(crate) fn build_tree(
    points: &[(Point, ObjectId)],
    params: RTreeParams,
    algo: PackingAlgorithm,
) -> Result<RTree, RTreeError> {
    if points.is_empty() {
        return Err(RTreeError::EmptyDataset);
    }
    if !params.is_valid() {
        return Err(RTreeError::InvalidParams {
            fanout: params.fanout,
            leaf_capacity: params.leaf_capacity,
        });
    }
    if let Some(idx) = points.iter().position(|(p, _)| !p.is_finite()) {
        return Err(RTreeError::NonFinitePoint { index: idx });
    }

    let region = Rect::bounding(&points.iter().map(|(p, _)| *p).collect::<Vec<_>>())
        .expect("non-empty input");

    // Temporary tree under construction, nodes in build order; renumbered
    // into preorder at the end.
    let mut arena: Vec<Node> = Vec::new();

    // Level 0: pack the points into leaves.
    let leaf_items: Vec<PackItem<LeafEntry>> = points
        .iter()
        .map(|&(point, object)| PackItem {
            center: point,
            mbr: Rect::point(point),
            payload: LeafEntry { point, object },
        })
        .collect();

    let mut current: Vec<PackItem<usize>> =
        pack_level(leaf_items, params.leaf_capacity, algo, &region)
            .into_iter()
            .map(|group| {
                let mbr = group
                    .iter()
                    .map(|it| it.mbr)
                    .reduce(|a, b| a.union(&b))
                    .expect("non-empty group");
                let idx = arena.len();
                arena.push(Node {
                    mbr,
                    level: 0,
                    entries: Entries::Leaf(group.into_iter().map(|it| it.payload).collect()),
                });
                PackItem {
                    center: mbr.center(),
                    mbr,
                    payload: idx,
                }
            })
            .collect();

    // Upper levels: pack node handles until a single root remains.
    let mut level = 1u32;
    while current.len() > 1 {
        current = pack_level(current, params.fanout, algo, &region)
            .into_iter()
            .map(|group| {
                let mbr = group
                    .iter()
                    .map(|it| it.mbr)
                    .reduce(|a, b| a.union(&b))
                    .expect("non-empty group");
                let children = group
                    .iter()
                    .map(|it| ChildEntry {
                        mbr: it.mbr,
                        // Build-order index; rewritten during renumbering.
                        child: NodeId(it.payload as u32),
                    })
                    .collect();
                let idx = arena.len();
                arena.push(Node {
                    mbr,
                    level,
                    entries: Entries::Internal(children),
                });
                PackItem {
                    center: mbr.center(),
                    mbr,
                    payload: idx,
                }
            })
            .collect();
        level += 1;
    }

    let root_build_idx = current[0].payload;
    let height = arena[root_build_idx].level + 1;
    let nodes = renumber_preorder(arena, root_build_idx);

    Ok(RTree::from_parts(nodes, points.len(), height, params, algo))
}

/// Rewrites the build-order arena into preorder: the root becomes node 0
/// and every node's id equals its DFS preorder rank (children visited in
/// entry order).
fn renumber_preorder(arena: Vec<Node>, root: usize) -> Vec<Node> {
    let n = arena.len();
    let mut order = Vec::with_capacity(n); // preorder list of build indices
    let mut new_id = vec![u32::MAX; n]; // build index -> preorder id
    let mut stack = vec![root];
    while let Some(idx) = stack.pop() {
        new_id[idx] = order.len() as u32;
        order.push(idx);
        if let Entries::Internal(children) = &arena[idx].entries {
            // Push in reverse so the first child is processed first.
            for child in children.iter().rev() {
                stack.push(child.child.index());
            }
        }
    }
    debug_assert_eq!(order.len(), n, "all nodes reachable from the root");

    let mut slots: Vec<Option<Node>> = arena.into_iter().map(Some).collect();
    let mut out = Vec::with_capacity(n);
    for &build_idx in &order {
        let mut node = slots[build_idx].take().expect("each node moved once");
        if let Entries::Internal(children) = &mut node.entries {
            for child in children {
                child.child = NodeId(new_id[child.child.index()]);
            }
        }
        out.push(node);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<(Point, ObjectId)> {
        // Deterministic pseudo-grid with a twist so orderings differ.
        (0..n)
            .map(|i| {
                let x = (i * 37 % 101) as f64;
                let y = (i * 61 % 97) as f64;
                (Point::new(x, y), ObjectId(i as u32))
            })
            .collect()
    }

    #[test]
    fn empty_dataset_errors() {
        let err = build_tree(&[], RTreeParams::default(), PackingAlgorithm::Str).unwrap_err();
        assert_eq!(err, RTreeError::EmptyDataset);
    }

    #[test]
    fn invalid_params_error() {
        let err = build_tree(&pts(10), RTreeParams::new(1, 6), PackingAlgorithm::Str).unwrap_err();
        assert!(matches!(err, RTreeError::InvalidParams { .. }));
    }

    #[test]
    fn non_finite_point_errors() {
        let mut input = pts(5);
        input[3].0 = Point::new(f64::NAN, 1.0);
        let err = build_tree(&input, RTreeParams::default(), PackingAlgorithm::Str).unwrap_err();
        assert_eq!(err, RTreeError::NonFinitePoint { index: 3 });
    }

    #[test]
    fn single_point_tree() {
        let tree = build_tree(&pts(1), RTreeParams::default(), PackingAlgorithm::Str).unwrap();
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.num_nodes(), 1);
        assert!(tree.node(NodeId::ROOT).is_leaf());
        tree.validate().unwrap();
    }

    #[test]
    fn all_algorithms_build_valid_trees() {
        for algo in PackingAlgorithm::ALL {
            for n in [1usize, 2, 6, 7, 19, 100, 1000] {
                let tree = build_tree(&pts(n), RTreeParams::default(), algo).unwrap();
                tree.validate()
                    .unwrap_or_else(|e| panic!("{} n={n}: {e}", algo.name()));
                assert_eq!(tree.num_objects(), n);
            }
        }
    }

    #[test]
    fn preorder_ids_parent_before_children() {
        let tree = build_tree(&pts(500), RTreeParams::default(), PackingAlgorithm::Str).unwrap();
        for (i, node) in tree.nodes().iter().enumerate() {
            if let Some(children) = node.children() {
                for (k, c) in children.iter().enumerate() {
                    assert!(c.child.index() > i, "child id must exceed parent id");
                    if k == 0 {
                        // First child immediately follows the parent in preorder.
                        assert_eq!(c.child.index(), i + 1);
                    }
                }
            }
        }
    }

    #[test]
    fn height_matches_paper_for_100k_points() {
        // ~100k points with 64-byte pages (fanout 3, leaf 6) → height 10.
        let n = 95_969; // the paper's densest uniform dataset
        let tree = build_tree(
            &pts(n),
            RTreeParams::for_page_capacity(64),
            PackingAlgorithm::Str,
        )
        .unwrap();
        assert_eq!(tree.height(), 10);
    }

    #[test]
    fn str_produces_full_leaves_except_tail() {
        let tree = build_tree(&pts(100), RTreeParams::default(), PackingAlgorithm::Str).unwrap();
        let leaf_sizes: Vec<usize> = tree
            .nodes()
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.len())
            .collect();
        // 100 points, capacity 6 → 17 leaves, at most one underfull per slab tail.
        assert_eq!(leaf_sizes.iter().sum::<usize>(), 100);
        assert!(leaf_sizes.iter().all(|&s| (1..=6).contains(&s)));
    }

    #[test]
    fn hilbert_d_is_bijective_on_small_grid() {
        let order = 4;
        let side = 1u32 << order;
        let mut seen = std::collections::HashSet::new();
        for x in 0..side {
            for y in 0..side {
                let d = hilbert_d(x, y, order);
                assert!(d < (side as u64 * side as u64));
                assert!(seen.insert(d), "duplicate hilbert rank {d}");
            }
        }
    }

    #[test]
    fn hilbert_adjacent_cells_are_close() {
        // Successive ranks along the curve are adjacent cells: check the
        // first few ranks of the order-2 curve against the classic shape.
        assert_eq!(hilbert_d(0, 0, 2), 0);
        // The order-2 curve visits 16 cells; rank of the last cell:
        assert_eq!(hilbert_d(3, 0, 2), 15);
    }

    #[test]
    fn duplicate_points_are_retained() {
        let input: Vec<(Point, ObjectId)> = (0..20)
            .map(|i| (Point::new(1.0, 1.0), ObjectId(i)))
            .collect();
        let tree = build_tree(&input, RTreeParams::default(), PackingAlgorithm::Str).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.num_objects(), 20);
        let total: usize = tree
            .nodes()
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.len())
            .sum();
        assert_eq!(total, 20);
    }
}
