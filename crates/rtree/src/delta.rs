//! Incremental updates over the packed tree: a log-structured delta
//! overlay merged at query time.
//!
//! The packed R-tree is immutable by construction (preorder node ids
//! *are* broadcast page offsets, so a targeted node split would
//! renumber every page after it). Mutability therefore comes as an
//! overlay: a [`DeltaOverlay`] wraps a base snapshot and absorbs
//! `insert`/`delete` ops into side tables, answering queries by merging
//! the base tree's stream with the pending edits. When the channel's
//! next broadcast cycle is cut, [`DeltaOverlay::materialize`] folds the
//! live set into a fresh packed tree.
//!
//! **Canonical materialization.** `materialize` always bulk-loads over
//! the live set sorted by [`ObjectId`], and bulk-loading is
//! deterministic in its input order — so any two edit schedules with
//! the same net effect materialize into *byte-identical* trees, and a
//! materialized overlay is byte-identical to a tree rebuilt from
//! scratch over the same live set. That identity is what the
//! `mutation_equivalence` gate in `tnn-bench` leans on.
//!
//! **Degenerate transitions** are first-class: deleting the last live
//! object materializes [`RTree::empty`] (downstream layers reject it
//! gracefully as an empty channel instead of panicking), and inserting
//! into an overlay over an empty base produces a valid, queryable tree.

use crate::{NnResult, ObjectId, RTree, RTreeError, RangeResult};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use tnn_geom::{Circle, Point};

/// A mutable edit log over an immutable base [`RTree`] snapshot.
///
/// The overlay tracks three sets: the base's own objects (frozen at
/// construction), pending inserts (which *shadow* a base object of the
/// same id — an upsert), and shadowed base ids (deleted or
/// overwritten). Queries merge the base tree with the pending inserts;
/// [`DeltaOverlay::materialize`] produces the equivalent packed tree.
///
/// ```
/// use std::sync::Arc;
/// use tnn_geom::Point;
/// use tnn_rtree::{DeltaOverlay, ObjectId, PackingAlgorithm, RTree, RTreeParams};
///
/// let pts: Vec<Point> = (0..20).map(|i| Point::new(i as f64, 0.0)).collect();
/// let base = Arc::new(
///     RTree::build(&pts, RTreeParams::default(), PackingAlgorithm::Str).unwrap(),
/// );
/// let mut delta = DeltaOverlay::new(base);
/// delta.delete(ObjectId(0));
/// delta.insert(ObjectId(99), Point::new(-1.0, 0.0)).unwrap();
/// let nn = delta.nearest_neighbor(Point::new(-0.4, 0.0)).unwrap();
/// assert_eq!(nn.object, ObjectId(99));
/// let rebuilt = delta.materialize().unwrap();
/// assert_eq!(rebuilt.num_objects(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaOverlay {
    base: Arc<RTree>,
    /// Point of every base object, frozen at construction; the id set
    /// decides membership and the points feed [`DeltaOverlay::get`].
    base_points: BTreeMap<ObjectId, Point>,
    /// Pending inserts/overwrites, keyed by id (BTree: iteration order
    /// is id order, which keeps every merged answer deterministic).
    inserts: BTreeMap<ObjectId, Point>,
    /// Base ids whose packed copy is suppressed — deleted outright or
    /// shadowed by an overwrite in `inserts`.
    shadowed: BTreeSet<ObjectId>,
}

impl DeltaOverlay {
    /// Starts an empty overlay over a base snapshot.
    pub fn new(base: Arc<RTree>) -> Self {
        let base_points = base.objects_in_leaf_order().map(|(p, o)| (o, p)).collect();
        DeltaOverlay {
            base,
            base_points,
            inserts: BTreeMap::new(),
            shadowed: BTreeSet::new(),
        }
    }

    /// The frozen base snapshot the overlay edits against.
    pub fn base(&self) -> &RTree {
        &self.base
    }

    /// Inserts (or overwrites) the object `id` at `point`. Rejects
    /// non-finite coordinates up front — the same contract as
    /// [`RTree::build`] — so a later [`DeltaOverlay::materialize`]
    /// cannot fail on data the overlay accepted.
    pub fn insert(&mut self, id: ObjectId, point: Point) -> Result<(), RTreeError> {
        if !point.is_finite() {
            return Err(RTreeError::NonFinitePoint { index: 0 });
        }
        if self.base_points.contains_key(&id) {
            self.shadowed.insert(id);
        }
        self.inserts.insert(id, point);
        Ok(())
    }

    /// Deletes the object `id`; returns `true` when it was live. Deleting
    /// the last live object is legal — the overlay becomes empty and
    /// [`DeltaOverlay::materialize`] yields [`RTree::empty`].
    pub fn delete(&mut self, id: ObjectId) -> bool {
        if self.inserts.remove(&id).is_some() {
            // An overwrite of a base object already shadowed it; a pure
            // overlay insert just disappears.
            return true;
        }
        if self.base_points.contains_key(&id) {
            return self.shadowed.insert(id);
        }
        false
    }

    /// `true` when object `id` is live in the merged view.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.inserts.contains_key(&id)
            || (self.base_points.contains_key(&id) && !self.shadowed.contains(&id))
    }

    /// The live position of object `id`, if any.
    pub fn get(&self, id: ObjectId) -> Option<Point> {
        if let Some(&p) = self.inserts.get(&id) {
            return Some(p);
        }
        if self.shadowed.contains(&id) {
            return None;
        }
        self.base_points.get(&id).copied()
    }

    /// Number of live objects in the merged view.
    pub fn len(&self) -> usize {
        self.base_points.len() - self.shadowed.len() + self.inserts.len()
    }

    /// `true` when no object is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the overlay holds pending edits (so a materialized
    /// tree would differ from the base snapshot).
    pub fn is_dirty(&self) -> bool {
        !self.inserts.is_empty() || !self.shadowed.is_empty()
    }

    /// The merged live set in **canonical order** (ascending id) — the
    /// exact input [`DeltaOverlay::materialize`] bulk-loads over.
    pub fn live_points(&self) -> Vec<(Point, ObjectId)> {
        let mut out: Vec<(Point, ObjectId)> = Vec::with_capacity(self.len());
        out.extend(
            self.base_points
                .iter()
                .filter(|(id, _)| !self.shadowed.contains(id))
                .map(|(&id, &p)| (p, id)),
        );
        out.extend(self.inserts.iter().map(|(&id, &p)| (p, id)));
        // Both sources iterate in id order; a single sort by id merges
        // them into the canonical order (ids are unique across the two
        // sets by construction).
        out.sort_unstable_by_key(|&(_, id)| id.0);
        out
    }

    /// Folds the overlay into a fresh packed tree over the live set in
    /// canonical (ascending-id) order, with the base's parameters and
    /// packing algorithm. An empty live set yields [`RTree::empty`]
    /// rather than an error — delete-to-empty is a legal transition.
    pub fn materialize(&self) -> Result<RTree, RTreeError> {
        let live = self.live_points();
        if live.is_empty() {
            return Ok(RTree::empty(self.base.params()));
        }
        RTree::build_with_ids(&live, self.base.params(), self.base.packing())
    }

    /// Merged nearest neighbor: the closest live object to `query`,
    /// ties broken by ascending id. `None` when the merged view is
    /// empty. `nodes_visited` counts base-tree pages only (overlay
    /// inserts live in memory, not on air).
    pub fn nearest_neighbor(&self, query: Point) -> Option<NnResult> {
        self.k_nearest(query, 1).into_iter().next()
    }

    /// Merged k-NN: the `k` closest live objects ordered by
    /// `(distance, id)`. Shorter when fewer than `k` objects are live.
    pub fn k_nearest(&self, query: Point, k: usize) -> Vec<NnResult> {
        if k == 0 {
            return Vec::new();
        }
        // Pull the first k *live* base candidates off the incremental
        // stream (it yields in non-decreasing distance, so the first k
        // survivors dominate every later base object) and merge them
        // with the full insert log.
        let mut candidates: Vec<(f64, ObjectId, Point)> = Vec::with_capacity(k);
        let mut it = self.base.nn_iter(query);
        let mut visited = 0usize;
        for (point, object, dist) in it.by_ref() {
            if self.shadowed.contains(&object) {
                continue;
            }
            candidates.push((dist, object, point));
            if candidates.len() == k {
                break;
            }
        }
        visited += it.nodes_visited();
        candidates.extend(self.inserts.iter().map(|(&id, &p)| (query.dist(p), id, p)));
        candidates.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1 .0.cmp(&b.1 .0)));
        candidates.truncate(k);
        candidates
            .into_iter()
            .map(|(dist, object, point)| NnResult {
                point,
                object,
                dist,
                nodes_visited: visited,
            })
            .collect()
    }

    /// Merged circular range query: base hits (minus shadowed ids, in
    /// base leaf order) followed by in-range overlay inserts in id
    /// order.
    pub fn range_circle(&self, circle: &Circle) -> RangeResult {
        let mut result = self.base.range_circle(circle);
        result.hits.retain(|(_, id)| !self.shadowed.contains(id));
        result.hits.extend(
            self.inserts
                .iter()
                .filter(|(_, &p)| circle.contains(p))
                .map(|(&id, &p)| (p, id)),
        );
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PackingAlgorithm, RTreeParams};

    fn base_tree(n: usize) -> Arc<RTree> {
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i * 13 % 47) as f64, (i * 29 % 53) as f64))
            .collect();
        Arc::new(RTree::build(&pts, RTreeParams::default(), PackingAlgorithm::Str).unwrap())
    }

    /// Brute-force k-NN over the merged view, the oracle for the merged
    /// query paths.
    fn brute_knn(delta: &DeltaOverlay, q: Point, k: usize) -> Vec<(f64, ObjectId)> {
        let mut all: Vec<(f64, ObjectId)> = delta
            .live_points()
            .iter()
            .map(|&(p, id)| (q.dist(p), id))
            .collect();
        all.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1 .0.cmp(&b.1 .0)));
        all.truncate(k);
        all
    }

    #[test]
    fn fresh_overlay_matches_base() {
        let base = base_tree(100);
        let delta = DeltaOverlay::new(Arc::clone(&base));
        assert_eq!(delta.len(), 100);
        assert!(!delta.is_dirty());
        let q = Point::new(11.5, 20.5);
        assert_eq!(
            delta.nearest_neighbor(q).map(|r| (r.object, r.dist)),
            base.nearest_neighbor(q).map(|r| (r.object, r.dist)),
        );
    }

    #[test]
    fn merged_knn_matches_brute_force_after_edits() {
        let mut delta = DeltaOverlay::new(base_tree(120));
        for i in 0..40u32 {
            delta.delete(ObjectId(i * 3));
        }
        for i in 0..25u32 {
            delta
                .insert(
                    ObjectId(1000 + i),
                    Point::new((i * 7 % 50) as f64 + 0.5, (i * 11 % 50) as f64 + 0.25),
                )
                .unwrap();
        }
        for (qx, qy) in [(0.0, 0.0), (23.0, 17.0), (46.0, 52.0), (-5.0, 60.0)] {
            let q = Point::new(qx, qy);
            for k in [1usize, 4, 16, 200] {
                let got: Vec<(f64, ObjectId)> = delta
                    .k_nearest(q, k)
                    .into_iter()
                    .map(|r| (r.dist, r.object))
                    .collect();
                assert_eq!(got, brute_knn(&delta, q, k), "q={q:?}, k={k}");
            }
        }
    }

    #[test]
    fn upsert_moves_an_object() {
        let mut delta = DeltaOverlay::new(base_tree(30));
        let id = ObjectId(5);
        let before = delta.get(id).unwrap();
        let moved = Point::new(before.x + 500.0, before.y);
        delta.insert(id, moved).unwrap();
        assert_eq!(delta.get(id), Some(moved));
        assert_eq!(delta.len(), 30);
        let nn = delta
            .nearest_neighbor(Point::new(moved.x + 0.1, moved.y))
            .unwrap();
        assert_eq!(nn.object, id);
        // Materialized, the object exists exactly once at its new spot.
        let tree = delta.materialize().unwrap();
        assert_eq!(tree.num_objects(), 30);
        let found: Vec<Point> = tree
            .objects_in_leaf_order()
            .filter(|&(_, o)| o == id)
            .map(|(p, _)| p)
            .collect();
        assert_eq!(found, vec![moved]);
    }

    #[test]
    fn delete_returns_liveness_and_is_idempotent() {
        let mut delta = DeltaOverlay::new(base_tree(10));
        assert!(delta.delete(ObjectId(3)));
        assert!(!delta.delete(ObjectId(3)), "second delete is a no-op");
        assert!(!delta.delete(ObjectId(999)), "unknown id is a no-op");
        delta.insert(ObjectId(999), Point::new(1.0, 1.0)).unwrap();
        assert!(delta.delete(ObjectId(999)), "overlay insert is deletable");
        assert_eq!(delta.len(), 9);
    }

    #[test]
    fn delete_to_empty_materializes_the_empty_tree() {
        let base = base_tree(7);
        let mut delta = DeltaOverlay::new(Arc::clone(&base));
        for i in 0..7u32 {
            assert!(delta.delete(ObjectId(i)));
        }
        assert!(delta.is_empty());
        assert!(delta.nearest_neighbor(Point::new(0.0, 0.0)).is_none());
        let tree = delta.materialize().unwrap();
        assert_eq!(tree.num_objects(), 0);
        tree.validate().unwrap();
        assert_eq!(tree.params(), base.params());
    }

    #[test]
    fn insert_into_empty_base_builds_a_queryable_tree() {
        let base = Arc::new(RTree::empty(RTreeParams::default()));
        let mut delta = DeltaOverlay::new(base);
        assert!(delta.is_empty());
        delta.insert(ObjectId(7), Point::new(3.0, 4.0)).unwrap();
        let nn = delta.nearest_neighbor(Point::new(0.0, 0.0)).unwrap();
        assert_eq!((nn.object, nn.dist), (ObjectId(7), 5.0));
        let tree = delta.materialize().unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.num_objects(), 1);
        assert_eq!(
            tree.nearest_neighbor(Point::new(0.0, 0.0)).unwrap().object,
            ObjectId(7)
        );
    }

    #[test]
    fn non_finite_insert_is_rejected() {
        let mut delta = DeltaOverlay::new(base_tree(5));
        assert_eq!(
            delta.insert(ObjectId(50), Point::new(f64::NAN, 0.0)),
            Err(RTreeError::NonFinitePoint { index: 0 })
        );
        assert_eq!(delta.len(), 5, "rejected insert leaves the overlay intact");
    }

    #[test]
    fn materialize_is_canonical_across_edit_orders() {
        // Two schedules with the same net effect → byte-identical trees.
        let base = base_tree(60);
        let mut a = DeltaOverlay::new(Arc::clone(&base));
        let mut b = DeltaOverlay::new(Arc::clone(&base));
        // Schedule A: delete then insert.
        a.delete(ObjectId(10));
        a.delete(ObjectId(20));
        a.insert(ObjectId(100), Point::new(7.0, 7.0)).unwrap();
        // Schedule B: interleaved, with a transient object and an
        // overwrite that settles to the same live set.
        b.insert(ObjectId(500), Point::new(1.0, 2.0)).unwrap();
        b.insert(ObjectId(100), Point::new(0.0, 0.0)).unwrap();
        b.delete(ObjectId(20));
        b.insert(ObjectId(100), Point::new(7.0, 7.0)).unwrap();
        b.delete(ObjectId(500));
        b.delete(ObjectId(10));
        let ta = a.materialize().unwrap();
        let tb = b.materialize().unwrap();
        assert_eq!(format!("{ta:?}"), format!("{tb:?}"));
        // ... and identical to a from-scratch build over the live set.
        let scratch =
            RTree::build_with_ids(&a.live_points(), base.params(), base.packing()).unwrap();
        assert_eq!(format!("{ta:?}"), format!("{scratch:?}"));
    }

    #[test]
    fn merged_range_circle_matches_materialized_tree() {
        let mut delta = DeltaOverlay::new(base_tree(80));
        for i in 0..20u32 {
            delta.delete(ObjectId(i * 4 + 1));
        }
        for i in 0..10u32 {
            delta
                .insert(ObjectId(2000 + i), Point::new((i * 9 % 40) as f64, 12.0))
                .unwrap();
        }
        let tree = delta.materialize().unwrap();
        for (cx, cy, r) in [(10.0, 10.0, 8.0), (25.0, 30.0, 20.0), (0.0, 0.0, 100.0)] {
            let circle = Circle::new(Point::new(cx, cy), r);
            let mut got: Vec<(u32, i64, i64)> = delta
                .range_circle(&circle)
                .hits
                .iter()
                .map(|&(p, id)| (id.0, p.x as i64, p.y as i64))
                .collect();
            let mut want: Vec<(u32, i64, i64)> = tree
                .range_circle(&circle)
                .hits
                .iter()
                .map(|&(p, id)| (id.0, p.x as i64, p.y as i64))
                .collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "circle=({cx},{cy},{r})");
        }
    }
}
