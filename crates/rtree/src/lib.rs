//! # tnn-rtree
//!
//! A packed (bulk-loaded), immutable R-tree over 2-D points, built for the
//! wireless-broadcast reproduction of the EDBT 2008 TNN paper.
//!
//! Characteristics tailored to air indexing:
//!
//! * **Packing algorithms** ([`PackingAlgorithm`]): STR [Leutenegger et
//!   al., ICDE'97] — the paper's choice — plus Hilbert-sort [Kamel &
//!   Faloutsos, CIKM'93] and Nearest-X [Roussopoulos & Leifker,
//!   SIGMOD'85] for ablations.
//! * **Page-derived node capacities** ([`RTreeParams::for_page_capacity`]):
//!   fanout and leaf capacity follow the paper's byte budget (Table 2:
//!   2-byte pointers, 4-byte coordinates), so a 64-byte page yields fanout
//!   3 and a ~100k-point tree of height 10, matching §4.2.4.
//! * **Preorder node numbering**: node ids equal the depth-first preorder
//!   rank, which is exactly the page offset of the node inside a broadcast
//!   index segment; parent ids always precede child ids.
//! * **In-memory queries** for ground truth and baselines: best-first NN,
//!   k-NN, incremental distance browsing, and circular/rectangular range
//!   queries, all reporting visit statistics.
//!
//! The packed tree itself is immutable: broadcast programs are recomputed
//! per cycle from a static snapshot, as in the paper ("the locations of
//! the points in all the datasets are known a priori, and no insertion
//! and deletion are involved"). Churning datasets are handled one level
//! up by [`DeltaOverlay`], a log-structured edit log merged at query
//! time and folded into a fresh packed snapshot per cycle via canonical
//! materialization.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod build;
mod delta;
mod error;
mod node;
mod params;
mod query;
mod tree;

pub use build::PackingAlgorithm;
pub use delta::DeltaOverlay;
pub use error::RTreeError;
pub use node::{ChildEntry, Entries, LeafEntry, Node, NodeId, ObjectId};
pub use params::RTreeParams;
pub use query::{NnIter, NnResult, RangeResult};
pub use tree::RTree;
