//! Node-capacity parameters derived from broadcast page budgets.

use serde::{Deserialize, Serialize};

/// Byte cost of one index pointer on air (paper Table 2).
pub const INDEX_POINTER_BYTES: usize = 2;
/// Byte cost of one coordinate on air (paper Table 2).
pub const COORDINATE_BYTES: usize = 4;
/// Byte cost of an MBR (four coordinates).
pub const MBR_BYTES: usize = 4 * COORDINATE_BYTES;
/// Byte cost of a point (two coordinates).
pub const POINT_BYTES: usize = 2 * COORDINATE_BYTES;
/// Byte cost of an internal-node entry: child MBR + arrival pointer.
pub const INTERNAL_ENTRY_BYTES: usize = MBR_BYTES + INDEX_POINTER_BYTES;
/// Byte cost of a leaf entry: point + data-page pointer.
pub const LEAF_ENTRY_BYTES: usize = POINT_BYTES + INDEX_POINTER_BYTES;

/// Maximum entry counts for R-tree nodes.
///
/// In the broadcast setting one packed node occupies exactly one page, so
/// the capacities follow from the page size and the byte costs of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RTreeParams {
    /// Maximum number of children of an internal node.
    pub fanout: usize,
    /// Maximum number of points in a leaf node.
    pub leaf_capacity: usize,
}

impl RTreeParams {
    /// Explicit capacities (mostly for tests and ablations).
    pub const fn new(fanout: usize, leaf_capacity: usize) -> Self {
        RTreeParams {
            fanout,
            leaf_capacity,
        }
    }

    /// Capacities for a broadcast page of `page_capacity` bytes, following
    /// the paper's sizes: an internal entry costs 18 B (16 B MBR + 2 B
    /// arrival pointer), a leaf entry 10 B (8 B point + 2 B data pointer).
    ///
    /// A 64-byte page gives fanout 3 and leaf capacity 6; with ~100,000
    /// points this yields a tree of height 10 — the configuration the
    /// paper reports in §4.2.4 (`H = 10`, `M = 3`).
    pub const fn for_page_capacity(page_capacity: usize) -> Self {
        let fanout = page_capacity / INTERNAL_ENTRY_BYTES;
        let leaf_capacity = page_capacity / LEAF_ENTRY_BYTES;
        RTreeParams {
            fanout,
            leaf_capacity,
        }
    }

    /// `true` when both capacities allow branching.
    pub const fn is_valid(&self) -> bool {
        self.fanout >= 2 && self.leaf_capacity >= 1
    }
}

impl Default for RTreeParams {
    /// Defaults to the paper's smallest page (64 bytes): fanout 3, leaf
    /// capacity 6.
    fn default() -> Self {
        RTreeParams::for_page_capacity(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_capacities_match_paper() {
        let p64 = RTreeParams::for_page_capacity(64);
        assert_eq!(p64.fanout, 3);
        assert_eq!(p64.leaf_capacity, 6);

        let p128 = RTreeParams::for_page_capacity(128);
        assert_eq!(p128.fanout, 7);
        assert_eq!(p128.leaf_capacity, 12);

        let p256 = RTreeParams::for_page_capacity(256);
        assert_eq!(p256.fanout, 14);
        assert_eq!(p256.leaf_capacity, 25);

        let p512 = RTreeParams::for_page_capacity(512);
        assert_eq!(p512.fanout, 28);
        assert_eq!(p512.leaf_capacity, 51);
    }

    #[test]
    fn default_is_64_byte_page() {
        assert_eq!(RTreeParams::default(), RTreeParams::for_page_capacity(64));
    }

    #[test]
    fn validity() {
        assert!(RTreeParams::new(2, 1).is_valid());
        assert!(!RTreeParams::new(1, 6).is_valid());
        assert!(!RTreeParams::new(3, 0).is_valid());
    }
}
