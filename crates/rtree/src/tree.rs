//! The packed R-tree container and its structural invariants.

use crate::{build, Entries, Node, NodeId, ObjectId, PackingAlgorithm, RTreeError, RTreeParams};
use serde::{Deserialize, Serialize};
use tnn_geom::{Point, Rect};

/// An immutable, bulk-loaded R-tree over 2-D points.
///
/// Nodes are stored in **depth-first preorder**: `nodes[0]` is the root and
/// a node's id is its preorder rank, which doubles as the node's page
/// offset inside a broadcast index segment (see `tnn-broadcast`).
///
/// ```
/// use tnn_geom::Point;
/// use tnn_rtree::{RTree, RTreeParams, PackingAlgorithm};
///
/// let pts: Vec<Point> = (0..100)
///     .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
///     .collect();
/// let tree = RTree::build(&pts, RTreeParams::for_page_capacity(64),
///                         PackingAlgorithm::Str).unwrap();
/// let nn = tree.nearest_neighbor(Point::new(4.2, 4.9)).unwrap();
/// assert_eq!(nn.point, Point::new(4.0, 5.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RTree {
    nodes: Vec<Node>,
    num_objects: usize,
    height: u32,
    params: RTreeParams,
    packing: PackingAlgorithm,
}

impl RTree {
    /// Bulk-loads a tree from bare points; object ids are assigned from the
    /// slice order (`points[i]` gets `ObjectId(i)`).
    pub fn build(
        points: &[Point],
        params: RTreeParams,
        algo: PackingAlgorithm,
    ) -> Result<Self, RTreeError> {
        let pairs: Vec<(Point, ObjectId)> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, ObjectId(i as u32)))
            .collect();
        build::build_tree(&pairs, params, algo)
    }

    /// Bulk-loads a tree from explicit `(point, object)` pairs.
    pub fn build_with_ids(
        points: &[(Point, ObjectId)],
        params: RTreeParams,
        algo: PackingAlgorithm,
    ) -> Result<Self, RTreeError> {
        build::build_tree(points, params, algo)
    }

    /// A tree over the **empty dataset**: a single entry-less leaf root
    /// with a degenerate bounding rectangle.
    ///
    /// [`RTree::build`] deliberately rejects empty input
    /// ([`RTreeError::EmptyDataset`]) because a packed tree cannot index
    /// nothing — this constructor exists so a broadcast channel whose
    /// dataset is (still) empty can be *represented* and rejected
    /// gracefully downstream (`TnnError::EmptyChannel`) instead of being
    /// unconstructible. Queries against an empty tree find nothing:
    /// [`RTree::nearest_neighbor`] returns `None` and range queries see
    /// an empty leaf.
    pub fn empty(params: RTreeParams) -> Self {
        let root = Node {
            mbr: Rect::from_coords(0.0, 0.0, 0.0, 0.0),
            level: 0,
            entries: Entries::Leaf(Vec::new()),
        };
        RTree::from_parts(vec![root], 0, 1, params, PackingAlgorithm::Str)
    }

    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        num_objects: usize,
        height: u32,
        params: RTreeParams,
        packing: PackingAlgorithm,
    ) -> Self {
        RTree {
            nodes,
            num_objects,
            height,
            params,
            packing,
        }
    }

    /// The node with the given id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes in preorder.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes (== pages in a broadcast index segment).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of indexed objects.
    #[inline]
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Tree height in levels (a single leaf-root tree has height 1). The
    /// paper's `Rtree_height` in the dynamic-α formula (eq. 4).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Node-capacity parameters the tree was built with.
    #[inline]
    pub fn params(&self) -> RTreeParams {
        self.params
    }

    /// Packing algorithm the tree was built with.
    #[inline]
    pub fn packing(&self) -> PackingAlgorithm {
        self.packing
    }

    /// MBR of the whole dataset.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        self.node(NodeId::ROOT).mbr
    }

    /// MBR of the root node — identical to [`RTree::bounding_rect`],
    /// under the name the sharding layer speaks (the root MBR is the
    /// shard's spatial extent when a tree *is* one shard's dataset).
    #[inline]
    pub fn root_mbr(&self) -> Rect {
        self.bounding_rect()
    }

    /// The tree's **top-level spatial partition**: one
    /// `(mbr, objects)` group per root child, in root-entry order — the
    /// packing algorithm's own coarsest split of the dataset, exposed so
    /// a sharding layer can partition along the tree's natural seams
    /// without reaching into node internals.
    ///
    /// A leaf root (small or empty tree) yields a single group holding
    /// every object (none for [`RTree::empty`] trees). Each group's
    /// objects are exactly the points of the child's subtree, read off
    /// the preorder layout in one contiguous slice scan (a child subtree
    /// occupies the id range from the child to its next sibling), in
    /// leaf preorder. Every object appears in exactly one group; group
    /// MBRs may overlap (they are R-tree MBRs, not a tiling).
    pub fn top_level_partitions(&self) -> Vec<(Rect, Vec<(Point, ObjectId)>)> {
        let root = self.node(NodeId::ROOT);
        let Some(children) = root.children() else {
            // Leaf root: the whole (possibly empty) dataset is one group.
            if self.num_objects == 0 {
                return Vec::new();
            }
            let objects = root
                .points()
                .expect("leaf root has points")
                .iter()
                .map(|e| (e.point, e.object))
                .collect();
            return vec![(root.mbr, objects)];
        };
        let mut ends: Vec<usize> = children.iter().skip(1).map(|c| c.child.index()).collect();
        ends.push(self.nodes.len());
        children
            .iter()
            .zip(ends)
            .map(|(c, end)| {
                let objects = self.nodes[c.child.index()..end]
                    .iter()
                    .filter_map(Node::points)
                    .flatten()
                    .map(|e| (e.point, e.object))
                    .collect();
                (c.mbr, objects)
            })
            .collect()
    }

    /// Depth of a node below the root (`root = 0`), the paper's
    /// `Node_depth` in the dynamic-α formula (eq. 4).
    #[inline]
    pub fn depth_of(&self, id: NodeId) -> u32 {
        self.height - 1 - self.node(id).level
    }

    /// A deterministic 64-bit fingerprint of the tree's **content and
    /// shape**: build parameters, packing algorithm, and every
    /// `(point, object)` pair in leaf preorder. Two trees carry the same
    /// fingerprint exactly when they index the same data the same way,
    /// so downstream caches can use it as environment identity (see
    /// `QueryKey` in `tnn-core`).
    ///
    /// FNV-1a over the raw bit patterns — hand-rolled rather than
    /// `DefaultHasher` because the std hasher's algorithm is
    /// unspecified and may change between releases, while this value is
    /// compared across processes and persisted in benchmark artifacts.
    pub fn content_fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.num_objects as u64);
        mix(self.params.fanout as u64);
        mix(self.params.leaf_capacity as u64);
        mix(match self.packing {
            PackingAlgorithm::Str => 1,
            PackingAlgorithm::HilbertSort => 2,
            PackingAlgorithm::NearestX => 3,
        });
        for (p, o) in self.objects_in_leaf_order() {
            mix(p.x.to_bits());
            mix(p.y.to_bits());
            mix(u64::from(o.0));
        }
        h
    }

    /// Iterates over all `(point, object)` pairs in leaf preorder — the
    /// order in which objects are placed into the broadcast data segment.
    pub fn objects_in_leaf_order(&self) -> impl Iterator<Item = (Point, ObjectId)> + '_ {
        self.nodes
            .iter()
            .filter_map(|n| n.points())
            .flatten()
            .map(|e| (e.point, e.object))
    }

    /// Checks every structural invariant of the packed tree; used by tests
    /// and by debug assertions in downstream crates. Cheap relative to a
    /// build (single pass).
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("tree has no nodes".into());
        }
        let root = &self.nodes[0];
        if root.level + 1 != self.height {
            return Err(format!(
                "root level {} inconsistent with height {}",
                root.level, self.height
            ));
        }
        let mut object_count = 0usize;
        let mut seen_children = vec![false; self.nodes.len()];
        seen_children[0] = true;
        for (i, node) in self.nodes.iter().enumerate() {
            // The only legal empty node is the lone leaf root of an
            // [`RTree::empty`] tree.
            if node.is_empty() && !(self.num_objects == 0 && self.nodes.len() == 1) {
                return Err(format!("node n{i} is empty"));
            }
            match &node.entries {
                Entries::Internal(children) => {
                    if children.len() > self.params.fanout {
                        return Err(format!(
                            "node n{i} has {} children, fanout {}",
                            children.len(),
                            self.params.fanout
                        ));
                    }
                    let mut expected_first = i + 1;
                    for c in children {
                        let ci = c.child.index();
                        if ci >= self.nodes.len() {
                            return Err(format!("node n{i} references missing child {ci}"));
                        }
                        if seen_children[ci] {
                            return Err(format!("node n{ci} has two parents"));
                        }
                        seen_children[ci] = true;
                        let child = &self.nodes[ci];
                        if child.level + 1 != node.level {
                            return Err(format!(
                                "child n{ci} level {} under parent level {}",
                                child.level, node.level
                            ));
                        }
                        if c.mbr != child.mbr {
                            return Err(format!("entry MBR for n{ci} differs from the node MBR"));
                        }
                        if !node.mbr.contains_rect(&c.mbr) {
                            return Err(format!("parent n{i} MBR does not contain child n{ci}"));
                        }
                        // Preorder property: the child subtree occupies a
                        // contiguous id range starting at the child id.
                        if ci < expected_first {
                            return Err(format!(
                                "child n{ci} violates preorder (expected ≥ {expected_first})"
                            ));
                        }
                        expected_first = ci + 1;
                    }
                }
                Entries::Leaf(points) => {
                    if node.level != 0 {
                        return Err(format!("leaf n{i} has level {}", node.level));
                    }
                    if points.len() > self.params.leaf_capacity {
                        return Err(format!(
                            "leaf n{i} has {} points, capacity {}",
                            points.len(),
                            self.params.leaf_capacity
                        ));
                    }
                    for e in points {
                        if !node.mbr.contains(e.point) {
                            return Err(format!("leaf n{i} MBR does not contain {:?}", e.point));
                        }
                    }
                    object_count += points.len();
                }
            }
        }
        if let Some(orphan) = seen_children.iter().position(|&s| !s) {
            return Err(format!("node n{orphan} is unreachable"));
        }
        if object_count != self.num_objects {
            return Err(format!(
                "tree holds {object_count} objects, expected {}",
                self.num_objects
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree(n: usize) -> RTree {
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i * 13 % 47) as f64, (i * 29 % 53) as f64))
            .collect();
        RTree::build(&pts, RTreeParams::default(), PackingAlgorithm::Str).unwrap()
    }

    #[test]
    fn validate_accepts_fresh_trees() {
        for n in [1, 5, 6, 7, 50, 333] {
            sample_tree(n).validate().unwrap();
        }
    }

    #[test]
    fn depth_of_is_complement_of_level() {
        let tree = sample_tree(333);
        assert_eq!(tree.depth_of(NodeId::ROOT), 0);
        for (i, node) in tree.nodes().iter().enumerate() {
            assert_eq!(
                tree.depth_of(NodeId(i as u32)),
                tree.height() - 1 - node.level
            );
        }
    }

    #[test]
    fn objects_in_leaf_order_covers_everything() {
        let tree = sample_tree(100);
        let objs: Vec<ObjectId> = tree.objects_in_leaf_order().map(|(_, o)| o).collect();
        assert_eq!(objs.len(), 100);
        let mut sorted: Vec<u32> = objs.iter().map(|o| o.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn bounding_rect_covers_all_points() {
        let tree = sample_tree(200);
        let bb = tree.bounding_rect();
        for (p, _) in tree.objects_in_leaf_order() {
            assert!(bb.contains(p));
        }
    }

    #[test]
    fn validate_detects_corruption() {
        let mut tree = sample_tree(100);
        // Corrupt a leaf MBR.
        let leaf_idx = tree
            .nodes
            .iter()
            .position(|n| n.is_leaf())
            .expect("has a leaf");
        tree.nodes[leaf_idx].mbr = Rect::from_coords(1e6, 1e6, 1e6 + 1.0, 1e6 + 1.0);
        assert!(tree.validate().is_err());
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
            .collect();
        let tree = RTree::build(
            &pts,
            RTreeParams::for_page_capacity(64),
            PackingAlgorithm::Str,
        )
        .unwrap();
        let nn = tree.nearest_neighbor(Point::new(4.2, 4.9)).unwrap();
        assert_eq!(nn.point, Point::new(4.0, 5.0));
    }

    #[test]
    fn root_mbr_is_the_bounding_rect() {
        let tree = sample_tree(123);
        assert_eq!(tree.root_mbr(), tree.bounding_rect());
    }

    #[test]
    fn top_level_partitions_cover_every_object_exactly_once() {
        for n in [1, 5, 7, 50, 333, 1000] {
            let tree = sample_tree(n);
            let parts = tree.top_level_partitions();
            match tree.node(NodeId::ROOT).children() {
                Some(children) => assert_eq!(parts.len(), children.len()),
                None => assert_eq!(parts.len(), 1),
            }
            let mut seen: Vec<u32> = Vec::new();
            for (mbr, objects) in &parts {
                assert!(!objects.is_empty(), "n={n}: empty top-level group");
                for &(p, o) in objects {
                    assert!(mbr.contains(p), "n={n}: {p:?} outside its group MBR");
                    seen.push(o.0);
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..n as u32).collect::<Vec<u32>>(), "n={n}");
        }
    }

    #[test]
    fn top_level_partitions_preserve_explicit_object_ids() {
        let pairs: Vec<(Point, ObjectId)> = (0..200)
            .map(|i| {
                (
                    Point::new((i * 13 % 47) as f64, (i * 29 % 53) as f64),
                    ObjectId(1000 + i),
                )
            })
            .collect();
        let tree =
            RTree::build_with_ids(&pairs, RTreeParams::default(), PackingAlgorithm::Str).unwrap();
        let mut seen: Vec<u32> = tree
            .top_level_partitions()
            .iter()
            .flat_map(|(_, objs)| objs.iter().map(|&(_, o)| o.0))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (1000..1200).collect::<Vec<u32>>());
    }

    #[test]
    fn top_level_partitions_of_empty_tree_are_empty() {
        let tree = RTree::empty(RTreeParams::for_page_capacity(64));
        assert!(tree.top_level_partitions().is_empty());
    }

    #[test]
    fn top_level_partition_groups_rebuild_into_equivalent_subtrees() {
        // Sharding contract: a tree rebuilt from one group indexes
        // exactly that group's objects under the group MBR.
        let tree = sample_tree(500);
        for (mbr, objects) in tree.top_level_partitions() {
            let shard = RTree::build_with_ids(&objects, tree.params(), tree.packing()).unwrap();
            assert_eq!(shard.num_objects(), objects.len());
            assert!(mbr.contains_rect(&shard.root_mbr()));
        }
    }

    #[test]
    fn content_fingerprint_separates_data_params_and_packing() {
        let tree = sample_tree(100);
        assert_eq!(
            tree.content_fingerprint(),
            sample_tree(100).content_fingerprint(),
            "same build → same fingerprint"
        );
        assert_ne!(
            tree.content_fingerprint(),
            sample_tree(101).content_fingerprint()
        );
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i * 13 % 47) as f64, (i * 29 % 53) as f64))
            .collect();
        let other_params = RTree::build(
            &pts,
            RTreeParams::for_page_capacity(128),
            PackingAlgorithm::Str,
        )
        .unwrap();
        assert_ne!(
            tree.content_fingerprint(),
            other_params.content_fingerprint()
        );
        let other_packing =
            RTree::build(&pts, RTreeParams::default(), PackingAlgorithm::HilbertSort).unwrap();
        assert_ne!(
            tree.content_fingerprint(),
            other_packing.content_fingerprint()
        );
        // One moved point changes the fingerprint.
        let mut moved = pts.clone();
        moved[42] = Point::new(moved[42].x + 0.5, moved[42].y);
        let moved_tree =
            RTree::build(&moved, RTreeParams::default(), PackingAlgorithm::Str).unwrap();
        assert_ne!(tree.content_fingerprint(), moved_tree.content_fingerprint());
    }

    #[test]
    fn empty_tree_is_valid_and_finds_nothing() {
        let tree = RTree::empty(RTreeParams::for_page_capacity(64));
        tree.validate().expect("empty singleton tree is legal");
        assert_eq!(tree.num_objects(), 0);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.height(), 1);
        assert!(tree.nearest_neighbor(Point::new(1.0, 2.0)).is_none());
        assert_eq!(tree.objects_in_leaf_order().count(), 0);
        // `build` keeps rejecting empty input — `empty` is the only way
        // to represent a dataset-less channel.
        assert_eq!(
            RTree::build(
                &[],
                RTreeParams::for_page_capacity(64),
                PackingAlgorithm::Str
            )
            .unwrap_err(),
            RTreeError::EmptyDataset
        );
    }
}
