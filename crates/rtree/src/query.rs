//! In-memory spatial queries on the packed R-tree: best-first nearest
//! neighbor, k-NN, incremental distance browsing, and range queries.
//!
//! These run over resident memory with random access (the disk-based model
//! the paper contrasts against) and serve three purposes in the
//! reproduction: ground truth for correctness tests, the exact-TNN oracle
//! in `tnn-core`, and the Best-First-on-broadcast ablation of §2.2.

use crate::{NodeId, ObjectId, RTree};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tnn_geom::{Circle, Point, Rect};

/// Result of a nearest-neighbor query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnResult {
    /// Location of the nearest object.
    pub point: Point,
    /// The nearest object.
    pub object: ObjectId,
    /// Distance from the query point.
    pub dist: f64,
    /// Number of R-tree nodes visited (pages that a disk-based search
    /// would have read).
    pub nodes_visited: usize,
}

/// Result of a range query.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeResult {
    /// All `(point, object)` pairs inside the range, in visit order.
    pub hits: Vec<(Point, ObjectId)>,
    /// Number of R-tree nodes visited.
    pub nodes_visited: usize,
}

/// Max-heap entry ordered by *ascending* distance (reversed comparisons).
#[derive(Debug)]
struct HeapEntry<T> {
    dist: f64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest distance.
        other.dist.total_cmp(&self.dist)
    }
}

/// An item on the incremental-search frontier.
#[derive(Debug, Clone, Copy)]
enum Frontier {
    Node(NodeId),
    Object(Point, ObjectId),
}

/// Incremental nearest-neighbor iterator (distance browsing, Hjaltason &
/// Samet \[6\]): yields `(point, object, dist)` in non-decreasing distance
/// from the query point.
pub struct NnIter<'a> {
    tree: &'a RTree,
    query: Point,
    heap: BinaryHeap<HeapEntry<Frontier>>,
    nodes_visited: usize,
}

impl<'a> NnIter<'a> {
    fn new(tree: &'a RTree, query: Point) -> Self {
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: tree.bounding_rect().min_dist(query),
            item: Frontier::Node(NodeId::ROOT),
        });
        NnIter {
            tree,
            query,
            heap,
            nodes_visited: 0,
        }
    }

    /// Number of R-tree nodes expanded so far.
    pub fn nodes_visited(&self) -> usize {
        self.nodes_visited
    }
}

impl Iterator for NnIter<'_> {
    type Item = (Point, ObjectId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(HeapEntry { dist, item }) = self.heap.pop() {
            match item {
                Frontier::Object(p, o) => return Some((p, o, dist)),
                Frontier::Node(id) => {
                    self.nodes_visited += 1;
                    let node = self.tree.node(id);
                    if let Some(children) = node.children() {
                        for c in children {
                            self.heap.push(HeapEntry {
                                dist: c.mbr.min_dist(self.query),
                                item: Frontier::Node(c.child),
                            });
                        }
                    } else if let Some(points) = node.points() {
                        for e in points {
                            self.heap.push(HeapEntry {
                                dist: self.query.dist(e.point),
                                item: Frontier::Object(e.point, e.object),
                            });
                        }
                    }
                }
            }
        }
        None
    }
}

impl RTree {
    /// Best-first exact nearest-neighbor search [Hjaltason & Samet,
    /// TODS'99]. Returns `None` only for a tree with zero objects (which
    /// cannot be constructed).
    pub fn nearest_neighbor(&self, query: Point) -> Option<NnResult> {
        let mut it = self.nn_iter(query);
        let (point, object, dist) = it.next()?;
        Some(NnResult {
            point,
            object,
            dist,
            nodes_visited: it.nodes_visited(),
        })
    }

    /// The `k` nearest objects in ascending distance order (fewer if the
    /// dataset is smaller).
    pub fn k_nearest(&self, query: Point, k: usize) -> Vec<NnResult> {
        let mut it = self.nn_iter(query);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match it.next() {
                Some((point, object, dist)) => {
                    let nodes_visited = it.nodes_visited();
                    out.push(NnResult {
                        point,
                        object,
                        dist,
                        nodes_visited,
                    });
                }
                None => break,
            }
        }
        out
    }

    /// Incremental distance browsing: an iterator yielding objects in
    /// non-decreasing distance from `query`.
    pub fn nn_iter(&self, query: Point) -> NnIter<'_> {
        NnIter::new(self, query)
    }

    /// All objects within the circle (boundary inclusive) — the paper's
    /// window query over `circle(p, d)` search ranges.
    pub fn range_circle(&self, circle: &Circle) -> RangeResult {
        let mut hits = Vec::new();
        let mut visited = 0usize;
        let mut stack = vec![NodeId::ROOT];
        let r2 = circle.radius * circle.radius;
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            visited += 1;
            if let Some(children) = node.children() {
                for c in children {
                    if c.mbr.min_dist_sq(circle.center) <= r2 {
                        stack.push(c.child);
                    }
                }
            } else if let Some(points) = node.points() {
                for e in points {
                    if circle.center.dist_sq(e.point) <= r2 {
                        hits.push((e.point, e.object));
                    }
                }
            }
        }
        RangeResult {
            hits,
            nodes_visited: visited,
        }
    }

    /// All objects within the rectangle (boundary inclusive).
    pub fn range_rect(&self, window: &Rect) -> RangeResult {
        let mut hits = Vec::new();
        let mut visited = 0usize;
        let mut stack = vec![NodeId::ROOT];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            visited += 1;
            if let Some(children) = node.children() {
                for c in children {
                    if c.mbr.intersects(window) {
                        stack.push(c.child);
                    }
                }
            } else if let Some(points) = node.points() {
                for e in points {
                    if window.contains(e.point) {
                        hits.push((e.point, e.object));
                    }
                }
            }
        }
        RangeResult {
            hits,
            nodes_visited: visited,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PackingAlgorithm, RTreeParams};

    fn grid_tree() -> RTree {
        // 20×20 integer grid.
        let pts: Vec<Point> = (0..400)
            .map(|i| Point::new((i % 20) as f64, (i / 20) as f64))
            .collect();
        RTree::build(&pts, RTreeParams::default(), PackingAlgorithm::Str).unwrap()
    }

    fn brute_nn(pts: &[Point], q: Point) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, &p) in pts.iter().enumerate() {
            let d = q.dist(p);
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }

    #[test]
    fn nearest_neighbor_matches_brute_force() {
        let pts: Vec<Point> = (0..500)
            .map(|i| Point::new((i * 37 % 101) as f64, (i * 61 % 97) as f64))
            .collect();
        let tree = RTree::build(&pts, RTreeParams::default(), PackingAlgorithm::Str).unwrap();
        for q in [
            Point::new(0.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(-10.0, 200.0),
            Point::new(33.3, 47.7),
        ] {
            let nn = tree.nearest_neighbor(q).unwrap();
            let (_, bd) = brute_nn(&pts, q);
            assert!((nn.dist - bd).abs() < 1e-12, "query {q:?}");
        }
    }

    #[test]
    fn k_nearest_is_sorted_and_correct() {
        let tree = grid_tree();
        let q = Point::new(9.4, 9.6);
        let knn = tree.k_nearest(q, 5);
        assert_eq!(knn.len(), 5);
        for w in knn.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert_eq!(knn[0].point, Point::new(9.0, 10.0));
    }

    #[test]
    fn k_nearest_with_k_exceeding_dataset() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let tree = RTree::build(&pts, RTreeParams::default(), PackingAlgorithm::Str).unwrap();
        let knn = tree.k_nearest(Point::ORIGIN, 10);
        assert_eq!(knn.len(), 2);
    }

    #[test]
    fn nn_iter_yields_nondecreasing_distances() {
        let tree = grid_tree();
        let q = Point::new(3.2, 17.9);
        let dists: Vec<f64> = tree.nn_iter(q).map(|(_, _, d)| d).collect();
        assert_eq!(dists.len(), 400);
        for w in dists.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn range_circle_matches_filter() {
        let tree = grid_tree();
        let c = Circle::new(Point::new(10.0, 10.0), 3.0);
        let got = tree.range_circle(&c);
        let expect: usize = (0..400)
            .filter(|&i| {
                let p = Point::new((i % 20) as f64, (i / 20) as f64);
                c.contains(p)
            })
            .count();
        assert_eq!(got.hits.len(), expect);
        assert!(got.hits.iter().all(|&(p, _)| c.contains(p)));
        assert!(got.nodes_visited >= 1);
    }

    #[test]
    fn range_circle_zero_radius_on_point() {
        let tree = grid_tree();
        let c = Circle::new(Point::new(5.0, 5.0), 0.0);
        let got = tree.range_circle(&c);
        assert_eq!(got.hits.len(), 1);
        assert_eq!(got.hits[0].0, Point::new(5.0, 5.0));
    }

    #[test]
    fn range_rect_matches_filter() {
        let tree = grid_tree();
        let w = Rect::from_coords(2.5, 3.0, 7.0, 5.5);
        let got = tree.range_rect(&w);
        let expect: usize = (0..400)
            .filter(|&i| {
                let p = Point::new((i % 20) as f64, (i / 20) as f64);
                w.contains(p)
            })
            .count();
        assert_eq!(got.hits.len(), expect);
    }

    #[test]
    fn range_query_outside_region_is_empty() {
        let tree = grid_tree();
        let c = Circle::new(Point::new(1000.0, 1000.0), 5.0);
        assert!(tree.range_circle(&c).hits.is_empty());
        // Only the root is inspected.
        assert_eq!(tree.range_circle(&c).nodes_visited, 1);
    }

    #[test]
    fn best_first_visits_fewer_nodes_than_full_scan() {
        let tree = grid_tree();
        let nn = tree.nearest_neighbor(Point::new(10.1, 10.1)).unwrap();
        assert!(nn.nodes_visited < tree.num_nodes() / 2);
    }

    #[test]
    fn nn_on_duplicate_points() {
        let pts = vec![Point::new(1.0, 1.0); 30];
        let tree = RTree::build(&pts, RTreeParams::default(), PackingAlgorithm::Str).unwrap();
        let nn = tree.nearest_neighbor(Point::new(0.0, 0.0)).unwrap();
        assert!((nn.dist - 2.0f64.sqrt()).abs() < 1e-12);
        let all = tree.nn_iter(Point::ORIGIN).count();
        assert_eq!(all, 30);
    }
}
