//! R-tree node representation: preorder-numbered nodes holding either
//! child MBR entries or point entries.

use serde::{Deserialize, Serialize};
use std::fmt;
use tnn_geom::{Point, Rect};

/// Identifier of an R-tree node.
///
/// Node ids equal the **depth-first preorder rank** of the node, which the
/// broadcast layer uses directly as the node's page offset inside an index
/// segment. The root is always `NodeId(0)`, and every parent's id precedes
/// all of its descendants' ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root node id.
    pub const ROOT: NodeId = NodeId(0);

    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a data object (its rank in the original dataset order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// An internal-node entry: the child's MBR plus its id (on air, the id is
/// the child's arrival pointer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChildEntry {
    /// MBR of the child subtree.
    pub mbr: Rect,
    /// Preorder id of the child node.
    pub child: NodeId,
}

/// A leaf entry: a data point plus the id of the object it locates (on
/// air, the id resolves to the object's data-page pointer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeafEntry {
    /// Location of the object.
    pub point: Point,
    /// The object this entry points at.
    pub object: ObjectId,
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Entries {
    /// Internal node: child entries in packing order.
    Internal(Vec<ChildEntry>),
    /// Leaf node: point entries in packing order.
    Leaf(Vec<LeafEntry>),
}

/// One R-tree node. In the broadcast model a node occupies exactly one
/// page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Minimal bounding rectangle of everything below this node.
    pub mbr: Rect,
    /// Level above the leaves: leaves have level 0, the root has
    /// `height − 1`.
    pub level: u32,
    /// Child or point entries.
    pub entries: Entries,
}

impl Node {
    /// `true` for leaf nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self.entries, Entries::Leaf(_))
    }

    /// Number of entries (children or points).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.entries {
            Entries::Internal(cs) => cs.len(),
            Entries::Leaf(ps) => ps.len(),
        }
    }

    /// `true` when the node has no entries (never the case in a packed
    /// tree; kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Child entries, or `None` for leaves.
    #[inline]
    pub fn children(&self) -> Option<&[ChildEntry]> {
        match &self.entries {
            Entries::Internal(cs) => Some(cs),
            Entries::Leaf(_) => None,
        }
    }

    /// Leaf entries, or `None` for internal nodes.
    #[inline]
    pub fn points(&self) -> Option<&[LeafEntry]> {
        match &self.entries {
            Entries::Internal(_) => None,
            Entries::Leaf(ps) => Some(ps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_accessors() {
        let leaf = Node {
            mbr: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            level: 0,
            entries: Entries::Leaf(vec![LeafEntry {
                point: Point::new(0.5, 0.5),
                object: ObjectId(3),
            }]),
        };
        assert!(leaf.is_leaf());
        assert_eq!(leaf.len(), 1);
        assert!(!leaf.is_empty());
        assert!(leaf.children().is_none());
        assert_eq!(leaf.points().unwrap()[0].object, ObjectId(3));

        let inner = Node {
            mbr: Rect::from_coords(0.0, 0.0, 2.0, 2.0),
            level: 1,
            entries: Entries::Internal(vec![ChildEntry {
                mbr: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
                child: NodeId(1),
            }]),
        };
        assert!(!inner.is_leaf());
        assert_eq!(inner.children().unwrap().len(), 1);
        assert!(inner.points().is_none());
    }

    #[test]
    fn id_display_and_index() {
        assert_eq!(NodeId(5).to_string(), "n5");
        assert_eq!(ObjectId(9).to_string(), "o9");
        assert_eq!(NodeId(5).index(), 5);
        assert_eq!(ObjectId(9).index(), 9);
        assert_eq!(NodeId::ROOT, NodeId(0));
    }
}
