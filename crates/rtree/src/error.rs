//! Error type for R-tree construction.

use std::fmt;

/// Errors arising while bulk-loading an R-tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RTreeError {
    /// The input point set was empty; an R-tree needs at least one point.
    EmptyDataset,
    /// Node capacities must allow at least two entries per node (a fanout
    /// of one would create unbounded chains).
    InvalidParams {
        /// The offending fanout value.
        fanout: usize,
        /// The offending leaf capacity value.
        leaf_capacity: usize,
    },
    /// A point with non-finite coordinates was supplied.
    NonFinitePoint {
        /// Index of the offending point in the input slice.
        index: usize,
    },
}

impl fmt::Display for RTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RTreeError::EmptyDataset => write!(f, "cannot build an R-tree over an empty dataset"),
            RTreeError::InvalidParams {
                fanout,
                leaf_capacity,
            } => write!(
                f,
                "R-tree node capacities must be at least 2 (fanout {fanout}, leaf capacity {leaf_capacity})"
            ),
            RTreeError::NonFinitePoint { index } => {
                write!(f, "point #{index} has non-finite coordinates")
            }
        }
    }
}

impl std::error::Error for RTreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RTreeError::EmptyDataset.to_string().contains("empty"));
        assert!(RTreeError::InvalidParams {
            fanout: 1,
            leaf_capacity: 6
        }
        .to_string()
        .contains("at least 2"));
        assert!(RTreeError::NonFinitePoint { index: 7 }
            .to_string()
            .contains("#7"));
    }
}
