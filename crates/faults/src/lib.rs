//! # tnn-faults
//!
//! Deterministic, seedable fault injection for the broadcast-TNN stack.
//!
//! The paper's setting is wireless multi-channel broadcast, where clients
//! routinely miss packets, lose a channel mid-cycle, or tune in to stale
//! index segments. This crate models those failures — plus server-side
//! ones (engine panics, worker deaths) — as an explicit, reproducible
//! schedule that the serving layer consults, instead of assuming every
//! read succeeds and every thread lives forever:
//!
//! * [`FaultPlan`] — a seedable schedule: per-channel drop rates, arrival
//!   jitter, and periodic outages ([`ChannelFaults`]), engine-panic and
//!   worker-kill injection keyed by job sequence number, budget-capped
//!   ([`FaultPlan::fault_horizon`], [`FaultPlan::max_faults_per_query`]).
//! * [`FaultyChannelView`] — a wrapper over
//!   [`tnn_broadcast::ChannelView`] that surfaces injected tune-in
//!   failures as the recoverable
//!   [`tnn_core::TnnError::ChannelUnavailable`] instead of silently
//!   succeeding.
//! * [`FaultInjector`] / [`FaultStats`] — the shared decision point the
//!   server probes per execution attempt, with exact counts of every
//!   injected fault.
//!
//! **Everything is a pure function of `(seed, job sequence, channel,
//! attempt)`** — never of wall-clock time or thread scheduling — so one
//! `(seed, plan)` pair produces bit-identical [`FaultStats`] across
//! worker counts and runs (gated by
//! `crates/bench/tests/fault_equivalence.rs`; worker-kill injection is
//! the one exception, since a killed worker abandons whatever else rode
//! in its micro-batch). A zero plan ([`FaultPlan::none`]) injects
//! nothing and leaves the pipeline byte-identical to an un-wrapped run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod plan;
mod stats;
mod view;

pub use plan::{ChannelFaults, FaultPlan, TuneIn};
pub use stats::{FaultInjector, FaultStats};
pub use view::FaultyChannelView;
