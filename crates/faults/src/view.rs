//! [`FaultyChannelView`]: a [`ChannelView`] that can fail to tune in.

use crate::plan::{FaultPlan, TuneIn};
use tnn_broadcast::ChannelView;
use tnn_core::TnnError;
use tnn_rtree::{NodeId, ObjectId};

/// A borrowed view of one broadcast channel under a [`FaultPlan`]: the
/// fallible twin of [`ChannelView`].
///
/// Where a plain view's arrival arithmetic always succeeds, a faulty
/// view first consults the plan's tune-in decision for its
/// `(channel, seq, attempt)` context: an injected drop or outage
/// surfaces as the recoverable [`TnnError::ChannelUnavailable`] (with
/// `retry_after` telling the caller how many attempts until the channel
/// clears), and a successful tune-in adds the plan's drawn arrival
/// jitter — the client waited longer, the answer is unchanged. Under a
/// zero plan every method agrees exactly with the wrapped view.
///
/// ```
/// # use std::sync::Arc;
/// # use tnn_broadcast::{BroadcastParams, Channel};
/// # use tnn_geom::Point;
/// # use tnn_rtree::{PackingAlgorithm, RTree};
/// use tnn_core::TnnError;
/// use tnn_faults::{ChannelFaults, FaultPlan, FaultyChannelView};
///
/// # let params = BroadcastParams::new(64);
/// # let pts: Vec<Point> =
/// #     (0..40).map(|i| Point::new((i * 7 % 53) as f64, (i * 11 % 59) as f64)).collect();
/// # let tree = Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap());
/// # let channel = Channel::new(tree, params, 3);
/// let plan = FaultPlan::new(9).channel(0, ChannelFaults::NONE.outage(4, 2));
/// // seq 4 lands on an outage: tune-in fails recoverably…
/// let dark = FaultyChannelView::new(channel.view(), &plan, 0, 4, 0);
/// assert_eq!(
///     dark.try_next_root_arrival(0),
///     Err(TnnError::ChannelUnavailable { channel: 0, retry_after: 2 }),
/// );
/// // …and two attempts later the same job tunes in fine.
/// let clear = FaultyChannelView::new(channel.view(), &plan, 0, 4, 2);
/// assert_eq!(clear.try_next_root_arrival(0), Ok(channel.next_root_arrival(0)));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FaultyChannelView<'a> {
    view: ChannelView<'a>,
    plan: &'a FaultPlan,
    channel: usize,
    seq: u64,
    attempt: u32,
}

impl<'a> FaultyChannelView<'a> {
    /// Wraps `view` as channel `channel` of `plan`, for attempt
    /// `attempt` of the job with sequence number `seq`.
    pub fn new(
        view: ChannelView<'a>,
        plan: &'a FaultPlan,
        channel: usize,
        seq: u64,
        attempt: u32,
    ) -> Self {
        FaultyChannelView {
            view,
            plan,
            channel,
            seq,
            attempt,
        }
    }

    /// The wrapped (infallible) view.
    #[inline]
    pub fn inner(&self) -> ChannelView<'a> {
        self.view
    }

    /// The channel index this view injects faults for.
    #[inline]
    pub fn channel_index(&self) -> usize {
        self.channel
    }

    /// The plan's tune-in decision for this view's context. Pure: the
    /// same view context always classifies the same way.
    #[inline]
    pub fn decision(&self) -> TuneIn {
        self.plan.tune_in(self.channel, self.seq, self.attempt)
    }

    /// The fault this view injects, if any: `ChannelUnavailable` with
    /// `retry_after = 1` for a transient drop (an immediate retry
    /// redraws) or the remaining outage width for a dark channel, plus
    /// the jitter a successful tune-in pays.
    #[inline]
    fn gate(&self) -> Result<u64, TnnError> {
        match self.decision() {
            TuneIn::Ok { jitter } => Ok(jitter),
            TuneIn::Dropped => Err(TnnError::ChannelUnavailable {
                channel: self.channel,
                retry_after: 1,
            }),
            TuneIn::Outage { retry_after } => Err(TnnError::ChannelUnavailable {
                channel: self.channel,
                retry_after,
            }),
        }
    }

    /// Fallible [`ChannelView::next_node_arrival`]: the injected jitter
    /// delays the observed arrival; a drop or outage fails recoverably.
    pub fn try_next_node_arrival(&self, node: NodeId, now: u64) -> Result<u64, TnnError> {
        let jitter = self.gate()?;
        Ok(self.view.next_node_arrival(node, now) + jitter)
    }

    /// Fallible [`ChannelView::next_root_arrival`].
    pub fn try_next_root_arrival(&self, now: u64) -> Result<u64, TnnError> {
        self.try_next_node_arrival(NodeId::ROOT, now)
    }

    /// Fallible [`ChannelView::retrieve_object`]: jitter delays the
    /// download start; a drop or outage fails recoverably.
    pub fn try_retrieve_object(&self, object: ObjectId, now: u64) -> Result<(u64, u64), TnnError> {
        let jitter = self.gate()?;
        Ok(self.view.retrieve_object(object, now + jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChannelFaults;
    use std::sync::Arc;
    use tnn_broadcast::{BroadcastParams, Channel};
    use tnn_geom::Point;
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn channel(phase: u64) -> Channel {
        let params = BroadcastParams::new(64);
        let pts: Vec<Point> = (0..48)
            .map(|i| Point::new((i * 7 % 113) as f64, (i * 13 % 127) as f64))
            .collect();
        let tree = RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        Channel::new(Arc::new(tree), params, phase)
    }

    #[test]
    fn zero_plan_view_agrees_with_wrapped_view() {
        let ch = channel(17);
        let plan = FaultPlan::none();
        let object = ch.tree().objects_in_leaf_order().next().unwrap().1;
        for seq in [0u64, 5, 99] {
            let faulty = FaultyChannelView::new(ch.view(), &plan, 0, seq, 0);
            for now in [0u64, 9, 500, 44_444] {
                assert_eq!(
                    faulty.try_next_root_arrival(now),
                    Ok(ch.next_root_arrival(now))
                );
                assert_eq!(
                    faulty.try_next_node_arrival(NodeId(1), now),
                    Ok(ch.next_node_arrival(NodeId(1), now))
                );
                assert_eq!(
                    faulty.try_retrieve_object(object, now),
                    Ok(ch.retrieve_object(object, now))
                );
            }
        }
    }

    #[test]
    fn outage_surfaces_channel_unavailable_with_countdown() {
        let ch = channel(0);
        let plan = FaultPlan::new(1).channel(3, ChannelFaults::NONE.outage(8, 2));
        let dark = FaultyChannelView::new(ch.view(), &plan, 3, 8, 0);
        assert_eq!(
            dark.try_next_root_arrival(0),
            Err(TnnError::ChannelUnavailable {
                channel: 3,
                retry_after: 2
            })
        );
        assert_eq!(dark.channel_index(), 3);
        let clear = FaultyChannelView::new(ch.view(), &plan, 3, 8, 2);
        assert_eq!(clear.try_next_root_arrival(0), Ok(ch.next_root_arrival(0)));
    }

    #[test]
    fn drops_report_retry_after_one() {
        let ch = channel(0);
        let plan = FaultPlan::new(4).channel(0, ChannelFaults::NONE.drop_rate(1000));
        let view = FaultyChannelView::new(ch.view(), &plan, 0, 0, 0);
        assert_eq!(
            view.try_next_root_arrival(10),
            Err(TnnError::ChannelUnavailable {
                channel: 0,
                retry_after: 1
            })
        );
    }

    #[test]
    fn jitter_delays_arrivals_but_never_reorders_before_now() {
        let ch = channel(5);
        let plan = FaultPlan::new(8).channel(0, ChannelFaults::NONE.jitter(32));
        let mut delayed = false;
        for seq in 0..50 {
            let view = FaultyChannelView::new(ch.view(), &plan, 0, seq, 0);
            let plain = ch.next_root_arrival(100);
            let jittered = view.try_next_root_arrival(100).unwrap();
            assert!(jittered >= plain);
            assert!(jittered <= plain + 32);
            delayed |= jittered > plain;
        }
        assert!(delayed);
    }
}
