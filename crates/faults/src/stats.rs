//! The shared decision point and its accounting: [`FaultInjector`],
//! [`FaultStats`].

use crate::plan::{FaultPlan, TuneIn};
use crate::view::FaultyChannelView;
use std::sync::atomic::{AtomicU64, Ordering};
use tnn_broadcast::MultiChannelEnv;
use tnn_core::TnnError;

/// Exact counts of every fault decision an injector has handed out.
///
/// For plans without worker kills, the counts are a pure function of
/// `(seed, plan, admission sequence)` — bit-identical across worker
/// counts and reruns (a killed worker abandons the rest of its
/// micro-batch before those jobs are ever probed, which is why kills
/// break replay-exactness; see [`FaultPlan::worker_kill`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FaultStats {
    /// Tune-in attempts that lost their packet ([`TuneIn::Dropped`]).
    pub drops: u64,
    /// Tune-in attempts that found a channel dark ([`TuneIn::Outage`]).
    pub outages: u64,
    /// Total injected arrival-jitter slots over successful tune-ins.
    pub jitter_slots: u64,
    /// Engine runs panicked by injection.
    pub engine_panics: u64,
    /// Worker threads killed by injection.
    pub worker_kills: u64,
    /// Tune-in rounds (one per execution attempt) that cleared every
    /// channel without a fault.
    pub clean_rounds: u64,
}

impl FaultStats {
    /// Total faults injected (drops + outages + panics + kills; jitter
    /// delays but never fails, so it is not counted here).
    pub fn injected(&self) -> u64 {
        self.drops + self.outages + self.engine_panics + self.worker_kills
    }

    /// Publishes the fault tallies into `registry` under `tnn_faults_*`
    /// names. All tallies are cumulative, so repeated publications are
    /// monotone (Prometheus counter semantics).
    pub fn publish_metrics(&self, registry: &tnn_trace::MetricsRegistry) {
        registry.counter(
            "tnn_faults_drops_total",
            "Tune-in attempts that lost their packet",
            self.drops,
        );
        registry.counter(
            "tnn_faults_outages_total",
            "Tune-in attempts that found a channel dark",
            self.outages,
        );
        registry.counter(
            "tnn_faults_jitter_slots_total",
            "Injected arrival-jitter slots over successful tune-ins",
            self.jitter_slots,
        );
        registry.counter(
            "tnn_faults_engine_panics_total",
            "Engine runs panicked by injection",
            self.engine_panics,
        );
        registry.counter(
            "tnn_faults_worker_kills_total",
            "Worker threads killed by injection",
            self.worker_kills,
        );
        registry.counter(
            "tnn_faults_clean_rounds_total",
            "Tune-in rounds that cleared every channel without a fault",
            self.clean_rounds,
        );
    }
}

/// The shared, thread-safe decision point the serving layer probes: a
/// [`FaultPlan`] plus atomic fault accounting.
///
/// Decisions delegate to the plan (pure functions of job sequence and
/// attempt); only the *counting* is shared state, so concurrent workers
/// can probe without coordination and [`FaultInjector::stats`] still
/// tallies exactly.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    drops: AtomicU64,
    outages: AtomicU64,
    jitter_slots: AtomicU64,
    engine_panics: AtomicU64,
    worker_kills: AtomicU64,
    clean_rounds: AtomicU64,
}

impl FaultInjector {
    /// Wraps a plan with zeroed counters.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            drops: AtomicU64::new(0),
            outages: AtomicU64::new(0),
            jitter_slots: AtomicU64::new(0),
            engine_panics: AtomicU64::new(0),
            worker_kills: AtomicU64::new(0),
            clean_rounds: AtomicU64::new(0),
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// One tune-in round for attempt `attempt` of job `seq`: probes
    /// every channel of `env` through a [`FaultyChannelView`], first
    /// fault wins. `Ok(())` means the client reached all `k` roots and
    /// the engine run may proceed; the error is always the recoverable
    /// [`TnnError::ChannelUnavailable`].
    pub fn check_tune_in(
        &self,
        env: &MultiChannelEnv,
        seq: u64,
        attempt: u32,
    ) -> Result<(), TnnError> {
        let mut jitter_total = 0u64;
        for (i, channel) in env.channels().iter().enumerate() {
            let view = FaultyChannelView::new(channel.view(), &self.plan, i, seq, attempt);
            match view.decision() {
                TuneIn::Ok { jitter } => jitter_total += jitter,
                TuneIn::Dropped => {
                    self.drops.fetch_add(1, Ordering::Relaxed);
                    return Err(TnnError::ChannelUnavailable {
                        channel: i,
                        retry_after: 1,
                    });
                }
                TuneIn::Outage { retry_after } => {
                    self.outages.fetch_add(1, Ordering::Relaxed);
                    return Err(TnnError::ChannelUnavailable {
                        channel: i,
                        retry_after,
                    });
                }
            }
        }
        if jitter_total > 0 {
            self.jitter_slots.fetch_add(jitter_total, Ordering::Relaxed);
        }
        self.clean_rounds.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// `true` when job `seq`'s engine run should panic (counted).
    pub fn engine_panic(&self, seq: u64) -> bool {
        let hit = self.plan.engine_panic(seq);
        if hit {
            self.engine_panics.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// `true` when picking up job `seq` should kill the worker (counted).
    pub fn worker_kill(&self, seq: u64) -> bool {
        let hit = self.plan.worker_kill(seq);
        if hit {
            self.worker_kills.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// A snapshot of the fault tallies.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            drops: self.drops.load(Ordering::Relaxed),
            outages: self.outages.load(Ordering::Relaxed),
            jitter_slots: self.jitter_slots.load(Ordering::Relaxed),
            engine_panics: self.engine_panics.load(Ordering::Relaxed),
            worker_kills: self.worker_kills.load(Ordering::Relaxed),
            clean_rounds: self.clean_rounds.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChannelFaults;
    use std::sync::Arc;
    use tnn_broadcast::BroadcastParams;
    use tnn_geom::Point;
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn env(k: usize) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = (0..k)
            .map(|salt| {
                let pts: Vec<Point> = (0..40)
                    .map(|i| {
                        Point::new(((i * 7 + salt) % 53) as f64, ((i * 11 + salt) % 59) as f64)
                    })
                    .collect();
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        let phases: Vec<u64> = (0..k as u64).map(|i| i * 13).collect();
        MultiChannelEnv::new(trees, params, &phases)
    }

    #[test]
    fn zero_plan_rounds_are_clean_and_counted() {
        let env = env(3);
        let inj = FaultInjector::new(FaultPlan::none());
        for seq in 0..10 {
            assert_eq!(inj.check_tune_in(&env, seq, 0), Ok(()));
        }
        let stats = inj.stats();
        assert_eq!(stats.clean_rounds, 10);
        assert_eq!(stats.injected(), 0);
        assert_eq!(
            stats,
            FaultStats {
                clean_rounds: 10,
                ..FaultStats::default()
            }
        );
    }

    #[test]
    fn first_faulty_channel_wins_and_counts_once() {
        let env = env(3);
        let plan = FaultPlan::new(0)
            .channel(1, ChannelFaults::NONE.outage(1, 5))
            .channel(2, ChannelFaults::NONE.outage(1, 5));
        let inj = FaultInjector::new(plan);
        assert_eq!(
            inj.check_tune_in(&env, 0, 0),
            Err(TnnError::ChannelUnavailable {
                channel: 1,
                retry_after: 5
            })
        );
        let stats = inj.stats();
        assert_eq!(stats.outages, 1);
        assert_eq!(stats.clean_rounds, 0);
    }

    #[test]
    fn identical_probe_sequences_yield_identical_stats() {
        let env = env(2);
        let plan = FaultPlan::new(77)
            .all_channels(2, ChannelFaults::NONE.drop_rate(200).jitter(4))
            .panic_rate(100);
        let run = |plan: FaultPlan| {
            let inj = FaultInjector::new(plan);
            for seq in 0..300 {
                let mut attempt = 0;
                while inj.check_tune_in(&env, seq, attempt).is_err() && attempt < 5 {
                    attempt += 1;
                }
                inj.engine_panic(seq);
            }
            inj.stats()
        };
        let a = run(plan.clone());
        let b = run(plan);
        assert_eq!(a, b);
        assert!(a.drops > 0);
        assert!(a.jitter_slots > 0);
        assert!(a.engine_panics > 0);
    }

    #[test]
    fn kills_count() {
        let inj = FaultInjector::new(FaultPlan::new(0).kill_at(3));
        assert!(!inj.worker_kill(2));
        assert!(inj.worker_kill(3));
        assert_eq!(inj.stats().worker_kills, 1);
    }
}
