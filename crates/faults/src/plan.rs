//! The fault schedule: [`FaultPlan`], [`ChannelFaults`], [`TuneIn`].

/// SplitMix64 finalizer — the same mixer the load harness uses for its
/// deterministic workloads. Every fault decision funnels through this,
/// which is what makes the plan a pure function of its inputs.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One decision word per `(seed, salt, channel, seq, attempt)` tuple.
#[inline]
fn decide(seed: u64, salt: u64, channel: u64, seq: u64, attempt: u32) -> u64 {
    mix(seed ^ mix(salt ^ mix(channel ^ mix(seq ^ mix(attempt as u64)))))
}

const SALT_DROP: u64 = 0xD1;
const SALT_JITTER: u64 = 0x71;
const SALT_PANIC: u64 = 0xBA;

/// The fault schedule of one broadcast channel.
///
/// All rates are **per mille** (`0..=1000`) so the plan stays `Eq` and
/// hashable (no floats); schedules are expressed in *logical* units (job
/// sequence numbers and retry attempts), never wall-clock time, so the
/// same plan replays identically at any speed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ChannelFaults {
    /// Probability (‰) that one tune-in attempt loses the packet — a
    /// transient [`TuneIn::Dropped`]; an immediate retry redraws.
    pub drop_per_mille: u32,
    /// Maximum extra slots of arrival jitter on a *successful* tune-in
    /// (the drawn jitter is uniform in `0..=jitter_slots`). Models stale
    /// index segments: the client waits longer, the answer is unchanged.
    pub jitter_slots: u64,
    /// Periodic outage: the channel is dark for jobs whose sequence
    /// number falls in the first `outage_len` positions of every
    /// `outage_period`-wide window. `0` disables outages.
    pub outage_period: u64,
    /// Width of each outage window, in retry attempts: an affected job's
    /// attempt `a` still finds the channel dark while `a` is less than
    /// the remaining window, so [`TuneIn::Outage::retry_after`] counts
    /// down by one per retry and the ladder eventually clears it.
    pub outage_len: u64,
}

impl ChannelFaults {
    /// No faults on this channel.
    pub const NONE: ChannelFaults = ChannelFaults {
        drop_per_mille: 0,
        jitter_slots: 0,
        outage_period: 0,
        outage_len: 0,
    };

    /// `true` when this channel can never fault.
    pub fn is_zero(&self) -> bool {
        self.drop_per_mille == 0
            && self.jitter_slots == 0
            && (self.outage_period == 0 || self.outage_len == 0)
    }

    /// Sets the per-tune-in drop probability (‰, clamped to 1000).
    pub fn drop_rate(mut self, per_mille: u32) -> Self {
        self.drop_per_mille = per_mille.min(1000);
        self
    }

    /// Sets the maximum arrival jitter (slots) on successful tune-ins.
    pub fn jitter(mut self, slots: u64) -> Self {
        self.jitter_slots = slots;
        self
    }

    /// Sets a periodic outage: `len` dark positions per `period`-wide
    /// sequence window.
    pub fn outage(mut self, period: u64, len: u64) -> Self {
        self.outage_period = period;
        self.outage_len = len;
        self
    }
}

/// The classified result of one injected tune-in decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TuneIn {
    /// Tune-in succeeds, delayed by `jitter` extra slots.
    Ok {
        /// Injected arrival delay in broadcast slots.
        jitter: u64,
    },
    /// The packet was lost in transit; retrying immediately redraws.
    Dropped,
    /// The channel is dark; it clears after `retry_after` more attempts.
    Outage {
        /// Remaining attempts until the outage window has passed.
        retry_after: u64,
    },
}

/// A deterministic, seedable fault schedule for one serving run.
///
/// Every decision the plan hands out is a pure function of
/// `(seed, channel, job sequence, attempt)` — replaying the same plan
/// over the same admission sequence injects exactly the same faults,
/// regardless of worker count, machine speed, or wall-clock time. A
/// default plan ([`FaultPlan::none`]) injects nothing.
///
/// ```
/// use tnn_faults::{ChannelFaults, FaultPlan, TuneIn};
///
/// let plan = FaultPlan::new(42)
///     .channel(0, ChannelFaults::NONE.drop_rate(100).jitter(8))
///     .channel(1, ChannelFaults::NONE.outage(16, 3))
///     .fault_cap(4);
/// // Same inputs, same decision — forever.
/// assert_eq!(plan.tune_in(1, 16, 0), plan.tune_in(1, 16, 0));
/// // Channel 1 is dark for the first 3 positions of every 16-wide
/// // window, and each retry attempt counts the outage down by one.
/// assert_eq!(plan.tune_in(1, 16, 0), TuneIn::Outage { retry_after: 3 });
/// assert_eq!(plan.tune_in(1, 16, 2), TuneIn::Outage { retry_after: 1 });
/// assert_eq!(plan.tune_in(1, 16, 3), TuneIn::Ok { jitter: 0 });
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for every probabilistic draw.
    pub seed: u64,
    /// Per-channel schedules, indexed by channel; channels past the end
    /// of the vector are fault-free.
    pub channels: Vec<ChannelFaults>,
    /// Probability (‰) that a job's engine run panics (keyed by job
    /// sequence; the panic is injected once and the ticket resolves
    /// [`tnn_core::TnnError::Internal`]).
    pub panic_per_mille: u32,
    /// Job sequence numbers whose engine run panics unconditionally.
    pub panic_seqs: Vec<u64>,
    /// Job sequence numbers that hard-kill the executing worker thread
    /// (the panic unwinds the whole micro-batch, exercising respawn).
    pub kill_seqs: Vec<u64>,
    /// Fault budget, global: only jobs with `seq < fault_horizon` can
    /// fault at all (`0` = unlimited). Bounds total injected faults
    /// without any cross-thread counter.
    pub fault_horizon: u64,
    /// Fault budget, per query: attempts at index
    /// `>= max_faults_per_query` are forced fault-free (`0` =
    /// unlimited). Since a retry only happens after a fault, this caps
    /// the injected faults any one query can suffer — and guarantees a
    /// deep-enough retry ladder always escapes.
    pub max_faults_per_query: u32,
}

impl FaultPlan {
    /// An empty plan: injects nothing, ever.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with the given seed and no faults scheduled yet.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets channel `i`'s fault schedule (growing the table as needed).
    pub fn channel(mut self, i: usize, faults: ChannelFaults) -> Self {
        if self.channels.len() <= i {
            self.channels.resize(i + 1, ChannelFaults::NONE);
        }
        self.channels[i] = faults;
        self
    }

    /// Applies one schedule to every channel in `0..k`.
    pub fn all_channels(mut self, k: usize, faults: ChannelFaults) -> Self {
        for i in 0..k {
            self = self.channel(i, faults);
        }
        self
    }

    /// Sets the engine-panic injection rate (‰, clamped to 1000).
    pub fn panic_rate(mut self, per_mille: u32) -> Self {
        self.panic_per_mille = per_mille.min(1000);
        self
    }

    /// Schedules an unconditional engine panic for job `seq`.
    pub fn panic_at(mut self, seq: u64) -> Self {
        self.panic_seqs.push(seq);
        self
    }

    /// Schedules a worker kill for job `seq`.
    pub fn kill_at(mut self, seq: u64) -> Self {
        self.kill_seqs.push(seq);
        self
    }

    /// Caps faults to jobs with `seq < horizon` (`0` = unlimited).
    pub fn horizon(mut self, horizon: u64) -> Self {
        self.fault_horizon = horizon;
        self
    }

    /// Caps the faulted attempts of any one query (`0` = unlimited).
    pub fn fault_cap(mut self, cap: u32) -> Self {
        self.max_faults_per_query = cap;
        self
    }

    /// `true` when no decision this plan hands out can ever be a fault.
    pub fn is_zero(&self) -> bool {
        self.channels.iter().all(ChannelFaults::is_zero)
            && self.panic_per_mille == 0
            && self.panic_seqs.is_empty()
            && self.kill_seqs.is_empty()
    }

    /// `true` when job `seq` is inside the global fault budget.
    #[inline]
    fn in_horizon(&self, seq: u64) -> bool {
        self.fault_horizon == 0 || seq < self.fault_horizon
    }

    /// `true` when attempt index `attempt` of any query may still fault.
    #[inline]
    fn in_cap(&self, attempt: u32) -> bool {
        self.max_faults_per_query == 0 || attempt < self.max_faults_per_query
    }

    /// The tune-in decision for `(channel, seq, attempt)`: outage first
    /// (a dark channel drops everything), then the per-attempt packet
    /// drop draw, then the jitter draw on success.
    pub fn tune_in(&self, channel: usize, seq: u64, attempt: u32) -> TuneIn {
        let spec = match self.channels.get(channel) {
            Some(spec) if !spec.is_zero() => spec,
            _ => return TuneIn::Ok { jitter: 0 },
        };
        let budgeted = self.in_horizon(seq) && self.in_cap(attempt);
        if budgeted && spec.outage_period > 0 && spec.outage_len > 0 {
            let pos = seq % spec.outage_period;
            let left = spec.outage_len.saturating_sub(pos);
            if left > u64::from(attempt) {
                return TuneIn::Outage {
                    retry_after: left - u64::from(attempt),
                };
            }
        }
        if budgeted
            && spec.drop_per_mille > 0
            && decide(self.seed, SALT_DROP, channel as u64, seq, attempt) % 1000
                < u64::from(spec.drop_per_mille)
        {
            return TuneIn::Dropped;
        }
        let jitter = if spec.jitter_slots > 0 {
            decide(self.seed, SALT_JITTER, channel as u64, seq, attempt) % (spec.jitter_slots + 1)
        } else {
            0
        };
        TuneIn::Ok { jitter }
    }

    /// `true` when job `seq`'s engine run should panic (scheduled
    /// explicitly or drawn from [`FaultPlan::panic_per_mille`]).
    pub fn engine_panic(&self, seq: u64) -> bool {
        if !self.in_horizon(seq) {
            return false;
        }
        self.panic_seqs.contains(&seq)
            || (self.panic_per_mille > 0
                && decide(self.seed, SALT_PANIC, 0, seq, 0) % 1000
                    < u64::from(self.panic_per_mille))
    }

    /// `true` when picking up job `seq` should kill the worker thread.
    /// Kill injection is list-only (no rate): which *other* jobs a dying
    /// worker abandons depends on micro-batch composition, so kills are
    /// the one fault whose side effects are not replay-deterministic —
    /// keeping the list explicit keeps chaos runs interpretable.
    pub fn worker_kill(&self, seq: u64) -> bool {
        self.in_horizon(seq) && self.kill_seqs.contains(&seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_never_faults() {
        let plan = FaultPlan::none();
        assert!(plan.is_zero());
        for seq in 0..100 {
            for ch in 0..4 {
                assert_eq!(plan.tune_in(ch, seq, 0), TuneIn::Ok { jitter: 0 });
            }
            assert!(!plan.engine_panic(seq));
            assert!(!plan.worker_kill(seq));
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_inputs() {
        let plan = FaultPlan::new(7)
            .all_channels(3, ChannelFaults::NONE.drop_rate(300).jitter(16))
            .channel(1, ChannelFaults::NONE.outage(8, 2))
            .panic_rate(50);
        let replay = plan.clone();
        for seq in 0..200 {
            for ch in 0..3 {
                for attempt in 0..4 {
                    assert_eq!(
                        plan.tune_in(ch, seq, attempt),
                        replay.tune_in(ch, seq, attempt)
                    );
                }
            }
            assert_eq!(plan.engine_panic(seq), replay.engine_panic(seq));
        }
    }

    #[test]
    fn different_seeds_draw_different_faults() {
        let a = FaultPlan::new(1).all_channels(1, ChannelFaults::NONE.drop_rate(500));
        let b = FaultPlan::new(2).all_channels(1, ChannelFaults::NONE.drop_rate(500));
        let diverges = (0..64).any(|seq| a.tune_in(0, seq, 0) != b.tune_in(0, seq, 0));
        assert!(diverges);
    }

    #[test]
    fn drop_rate_is_roughly_calibrated() {
        let plan = FaultPlan::new(99).all_channels(1, ChannelFaults::NONE.drop_rate(250));
        let drops = (0..4000)
            .filter(|&seq| plan.tune_in(0, seq, 0) == TuneIn::Dropped)
            .count();
        // 250‰ of 4000 = 1000 expected; allow a generous band.
        assert!((700..1300).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn outages_count_down_by_attempt_and_clear() {
        let plan = FaultPlan::new(0).channel(0, ChannelFaults::NONE.outage(10, 3));
        // seq 10 is position 0 of its window: 3 attempts of darkness.
        assert_eq!(plan.tune_in(0, 10, 0), TuneIn::Outage { retry_after: 3 });
        assert_eq!(plan.tune_in(0, 10, 1), TuneIn::Outage { retry_after: 2 });
        assert_eq!(plan.tune_in(0, 10, 2), TuneIn::Outage { retry_after: 1 });
        assert_eq!(plan.tune_in(0, 10, 3), TuneIn::Ok { jitter: 0 });
        // seq 12 is position 2: one attempt of darkness left.
        assert_eq!(plan.tune_in(0, 12, 0), TuneIn::Outage { retry_after: 1 });
        assert_eq!(plan.tune_in(0, 12, 1), TuneIn::Ok { jitter: 0 });
        // seq 13 is clear from the start.
        assert_eq!(plan.tune_in(0, 13, 0), TuneIn::Ok { jitter: 0 });
    }

    #[test]
    fn budgets_suppress_faults() {
        let always_dark = ChannelFaults::NONE.outage(1, 1_000_000);
        let plan = FaultPlan::new(3)
            .channel(0, always_dark)
            .horizon(5)
            .fault_cap(2);
        // Horizon: seqs past 5 never fault.
        assert!(matches!(plan.tune_in(0, 4, 0), TuneIn::Outage { .. }));
        assert_eq!(plan.tune_in(0, 5, 0), TuneIn::Ok { jitter: 0 });
        // Per-query cap: the third attempt is forced clean even though
        // the outage schedule says dark.
        assert!(matches!(plan.tune_in(0, 0, 1), TuneIn::Outage { .. }));
        assert_eq!(plan.tune_in(0, 0, 2), TuneIn::Ok { jitter: 0 });
        // Kill/panic lists respect the horizon too.
        let plan = FaultPlan::new(0).panic_at(7).kill_at(8).horizon(6);
        assert!(!plan.engine_panic(7));
        assert!(!plan.worker_kill(8));
    }

    #[test]
    fn jitter_is_bounded_and_sometimes_nonzero() {
        let plan = FaultPlan::new(11).channel(0, ChannelFaults::NONE.jitter(8));
        let mut seen_nonzero = false;
        for seq in 0..100 {
            match plan.tune_in(0, seq, 0) {
                TuneIn::Ok { jitter } => {
                    assert!(jitter <= 8);
                    seen_nonzero |= jitter > 0;
                }
                other => panic!("jitter-only channel faulted: {other:?}"),
            }
        }
        assert!(seen_nonzero);
    }

    #[test]
    fn builder_round_trip() {
        let plan = FaultPlan::new(5)
            .channel(2, ChannelFaults::NONE.drop_rate(2000))
            .panic_at(3)
            .kill_at(4)
            .panic_rate(1)
            .horizon(100)
            .fault_cap(6);
        assert_eq!(plan.seed, 5);
        assert_eq!(plan.channels.len(), 3);
        assert_eq!(plan.channels[2].drop_per_mille, 1000); // clamped
        assert!(plan.channels[0].is_zero());
        assert_eq!(plan.panic_seqs, vec![3]);
        assert_eq!(plan.kill_seqs, vec![4]);
        assert_eq!(plan.fault_horizon, 100);
        assert_eq!(plan.max_faults_per_query, 6);
        assert!(!plan.is_zero());
        assert!(plan.engine_panic(3));
        assert!(plan.worker_kill(4));
        assert!(!plan.worker_kill(3));
    }
}
