//! # tnn-serve
//!
//! A concurrent query-serving front-end over the
//! [`tnn_core::QueryEngine`] — the executor-facing surface of the
//! broadcast-TNN reproduction: request queueing, backpressure, and
//! micro-batching over the `Sync`, O(1)-clonable engine the core crates
//! provide.
//!
//! Deliberately dependency-free: built on `std::thread`,
//! `std::sync::Mutex`/`Condvar`, and nothing else, so it runs in the
//! same offline environment as the rest of the workspace (no async
//! runtime required — the engine's per-query latency is microseconds,
//! so OS threads with a bounded queue are the right tool).
//!
//! ## Shape
//!
//! * [`Server::spawn`] starts `N` worker threads over one shared
//!   environment; each worker owns an O(1)-cloned engine handle and one
//!   recycled [`tnn_core::QueryScratch`], so the per-query hot path is
//!   the same zero-alloc [`tnn_core::QueryEngine::run_with`] path the
//!   batch runners use.
//! * [`Server::submit`] admits a [`tnn_core::Query`] through a **bounded
//!   queue** with an explicit [`Backpressure`] policy — [`Backpressure::Block`]
//!   the caller, [`Backpressure::Reject`] with
//!   [`tnn_core::TnnError::Overloaded`], or [`Backpressure::Shed`] the
//!   oldest queued query — and returns a non-blocking [`Ticket`];
//!   [`Server::submit_batch`] admits many under one lock acquisition and
//!   one worker wake-up.
//! * [`Ticket::poll`] / [`Ticket::wait`] read the outcome; both are
//!   idempotent (wait twice, poll after wait — always the same cached
//!   outcome, never a hang). [`Ticket::latency`] reports exact
//!   submission-to-resolution wall time, stamped by the resolver.
//! * [`Server::shutdown`] drains or cancels deterministically: when it
//!   returns, every admitted ticket has resolved.
//!
//! ## Guarantees
//!
//! Concurrency may reorder *completion*, never *answers*: every outcome
//! delivered through a ticket is byte-identical to a direct
//! [`tnn_core::QueryEngine::run`] of the same query. The property gate
//! lives in `crates/bench/tests/serve_equivalence.rs`; the
//! ticket-conservation invariant ([`ServeStats::conserved`]) is
//! stress-tested in `crates/bench/tests/serve_stress.rs`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod config;
mod server;
mod ticket;

pub use config::{Backpressure, ServeConfig, ShutdownMode};
pub use server::{ServeStats, Server};
pub use ticket::Ticket;
