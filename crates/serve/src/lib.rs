//! # tnn-serve
//!
//! A concurrent, QoS-aware query-serving front-end over the
//! [`tnn_core::QueryEngine`] — the executor-facing surface of the
//! broadcast-TNN reproduction: request queueing with priority classes
//! and deadlines, backpressure, a sharded result cache, and
//! micro-batching over the `Sync`, O(1)-clonable engine the core crates
//! provide.
//!
//! Deliberately dependency-free: built on `std::thread`,
//! `std::sync::Mutex`/`Condvar`, and the equally std-only QoS
//! primitives of [`tnn_qos`], so it runs in the same offline
//! environment as the rest of the workspace (no async runtime required
//! — the engine's per-query latency is microseconds, so OS threads with
//! a bounded queue are the right tool).
//!
//! ## Shape
//!
//! * [`Server::spawn`] starts `N` worker threads over one shared
//!   environment; each worker owns an O(1)-cloned engine handle and one
//!   recycled [`tnn_core::QueryScratch`], so the per-query hot path is
//!   the same zero-alloc [`tnn_core::QueryEngine::run_with`] path the
//!   batch runners use.
//! * [`Server::submit_with`] admits a [`tnn_core::Query`] under
//!   explicit [`Qos`] terms — a [`Priority`] class ([`Priority::Interactive`]
//!   `>` [`Priority::Batch`] `>` [`Priority::Background`], strictly
//!   drained most-urgent-first with per-class lane bounds) and an
//!   optional [`Deadline`] (enforced at admission, at shed-victim
//!   selection, and at dequeue; missed deadlines resolve
//!   [`tnn_core::TnnError::DeadlineExceeded`]). [`Server::submit`] is
//!   the QoS-oblivious shorthand (batch class, no deadline).
//! * A **sharded LRU result cache** keyed on [`tnn_core::QueryKey`]
//!   answers repeated queries — probed at admission (a hit resolves the
//!   ticket inside `submit`, touching no worker) and again at dequeue
//!   (duplicates queued behind their first occurrence skip the engine)
//!   — with bytes identical to a fresh engine run, because the engine
//!   is deterministic in exactly the keyed fields.
//! * Full lanes apply an explicit [`Backpressure`] policy —
//!   [`Backpressure::Block`] the caller, [`Backpressure::Reject`] with
//!   [`tnn_core::TnnError::Overloaded`], or [`Backpressure::Shed`]
//!   queued work, evicting *expired* queries before sacrificing viable
//!   ones ([`ShedDiscipline`]).
//! * [`Ticket::poll`] / [`Ticket::wait`] read the outcome; both are
//!   idempotent (wait twice, poll after wait — always the same cached
//!   outcome, never a hang). [`Ticket::latency`] reports exact
//!   submission-to-resolution wall time, stamped by the resolver.
//! * [`Server::shutdown`] drains or cancels deterministically: when it
//!   returns, every admitted ticket has resolved.
//! * [`Server::spawn_with_faults`] runs the same pool under a
//!   deterministic [`FaultPlan`]: injected tune-in failures enter a
//!   deadline-aware retry ladder ([`RetryPolicy`], per-class
//!   [`RetryBudget`]), exhausted ladders fall back per [`Degradation`]
//!   (outcomes tagged degraded, never cached), injected engine panics
//!   resolve [`tnn_core::TnnError::Internal`] behind a panic boundary,
//!   and killed workers respawn in place (bounded by
//!   [`ServeConfig::max_worker_restarts`]). See `docs/ROBUSTNESS.md`.
//!
//! ## Guarantees
//!
//! Concurrency, priorities, and caching may reorder or short-circuit
//! *completion*, never *answers*: every outcome delivered through a
//! ticket is byte-identical to a direct [`tnn_core::QueryEngine::run`]
//! of the same query. The property gates live in
//! `crates/bench/tests/serve_equivalence.rs` (scheduling) and
//! `crates/bench/tests/qos_equivalence.rs` (cache hits, within-class
//! FIFO order); the ticket-conservation invariant
//! ([`ServeStats::conserved`] — now per class, with every completion
//! classified by exactly one cache outcome) is stress-tested in
//! `crates/bench/tests/serve_stress.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod server;
mod ticket;

pub use config::{Backpressure, Degradation, ServeConfig, ShutdownMode};
pub use server::{ClassStats, ServeStats, Server};
pub use ticket::Ticket;

// The observability vocabulary ([`ServeConfig::trace`],
// [`Server::recorder`], [`Server::publish_metrics`]), re-exported so
// serving code speaks tracing without naming `tnn_trace` directly.
// `LatencyHistogram` moved to `tnn-trace` (it is the registry's
// histogram value type); this re-export keeps the original
// `tnn_serve::LatencyHistogram` path working.
pub use tnn_trace::{
    FlightRecorder, LatencyHistogram, MetricsRegistry, QueryTrace, RecorderConfig, Span, SpanKind,
    TraceConfig,
};

// The QoS vocabulary callers need to speak the submission API, re-
// exported so `tnn_serve` alone suffices for everyday serving code.
pub use tnn_qos::{
    CacheConfig, CacheStats, Deadline, Priority, Qos, RetryBudget, RetryPolicy, ShedDiscipline,
};

// The fault vocabulary for chaos-mode servers ([`Server::spawn_with_faults`]).
pub use tnn_faults::{ChannelFaults, FaultPlan, FaultStats, FaultyChannelView, TuneIn};
