//! The worker-pool server: strict-priority multi-level submission queue,
//! deadline enforcement, backpressure, an admission-time result cache,
//! micro-batched dispatch, fault-schedule execution (retry ladder,
//! degradation, panic isolation, worker respawn), and deterministic
//! shutdown.

// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use crate::config::{Backpressure, Degradation, ServeConfig, ShutdownMode};
use crate::ticket::{Ticket, TicketCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tnn_broadcast::MultiChannelEnv;
use tnn_core::{
    Algorithm, ArrivalHeap, CandidateQueue, Query, QueryEngine, QueryKey, QueryOutcome,
    QueryScratch, TnnError,
};
use tnn_faults::{FaultInjector, FaultPlan, FaultStats};
use tnn_qos::{
    Deadline, FlightOutcome, FlightTable, Lookup, MultiLevelQueue, Priority, Qos, ResultCache,
    RetryBudget,
};
use tnn_trace::{FlightRecorder, LatencyHistogram, MetricsRegistry, QueryTrace, SpanKind};

/// Admission/completion counters of one priority class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Submissions naming this class (including refused ones).
    pub submitted: u64,
    /// Queries admitted (including later-shed/expired ones; admission
    /// cache hits count here too — they are accepted *and* completed in
    /// one step).
    pub accepted: u64,
    /// Queries refused at the door: lane full under
    /// [`Backpressure::Reject`], or submitted during/after shutdown.
    pub rejected: u64,
    /// Admitted queries evicted by [`Backpressure::Shed`] while still
    /// viable (tickets resolved [`TnnError::Overloaded`]).
    pub shed: u64,
    /// Admitted queries resolved [`TnnError::Cancelled`] by a
    /// [`ShutdownMode::Cancel`] shutdown (or the final shutdown sweep).
    pub cancelled: u64,
    /// Queries whose outcome was delivered (engine-run, engine-error, or
    /// cache hit — all count as completions).
    pub completed: u64,
    /// Admitted queries whose deadline passed before a worker could
    /// answer — refused dead at admission, evicted as the expired shed
    /// victim, or discarded at dequeue (tickets resolved
    /// [`TnnError::DeadlineExceeded`]).
    pub expired: u64,
    /// Jobs admitted but not yet picked up, at snapshot time.
    pub queued: usize,
    /// Jobs being executed by a worker, at snapshot time.
    pub in_flight: usize,
    /// Retry attempts charged to this class: each time a job's tune-in
    /// failed recoverably and the ladder paused to try again.
    pub retried: u64,
    /// Completions answered by a degradation fallback (the delivered
    /// [`QueryOutcome`] carries `degraded = true`). A subset of
    /// [`ClassStats::completed`].
    pub degraded: u64,
    /// Submission-to-resolution latency of this class's completions
    /// (log₂ µs buckets; see [`LatencyHistogram`]). Jobs resolved by
    /// panic-unwind accounting are counted in `completed` but carry no
    /// latency observation.
    pub latency: LatencyHistogram,
}

impl ClassStats {
    /// Per-class ticket conservation: every submission naming this class
    /// is accounted for exactly once, and degraded completions never
    /// exceed completions (they are a subset).
    pub fn conserved(&self) -> bool {
        self.submitted == self.accepted + self.rejected
            && self.accepted
                == self.completed
                    + self.shed
                    + self.cancelled
                    + self.expired
                    + self.queued as u64
                    + self.in_flight as u64
            && self.degraded <= self.completed
    }

    /// Adds `other`'s counters (and latency observations) into `self` —
    /// the per-class half of multi-server aggregation. Merging snapshots
    /// that are each [`ClassStats::conserved`] yields a conserved result:
    /// every clause is a linear equation over the counters.
    pub fn merge(&mut self, other: &ClassStats) {
        self.submitted += other.submitted;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.cancelled += other.cancelled;
        self.completed += other.completed;
        self.expired += other.expired;
        self.queued += other.queued;
        self.in_flight += other.in_flight;
        self.retried += other.retried;
        self.degraded += other.degraded;
        self.latency.merge(&other.latency);
    }
}

/// Admission/completion counters, snapshotted atomically (all counters
/// mutate under one lock, so [`ServeStats::conserved`] holds for *every*
/// snapshot, not just quiescent ones). The flat fields are totals over
/// [`ServeStats::classes`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Total [`Server::submit`] calls (including refused ones).
    pub submitted: u64,
    /// Queries admitted into the queue (including later-shed ones and
    /// admission cache hits).
    pub accepted: u64,
    /// Queries refused at the door (full lane under
    /// [`Backpressure::Reject`], or shutdown).
    pub rejected: u64,
    /// Still-viable queries evicted by [`Backpressure::Shed`].
    pub shed: u64,
    /// Queries resolved [`TnnError::Cancelled`] at shutdown.
    pub cancelled: u64,
    /// Queries whose outcome was delivered (cache hits included).
    pub completed: u64,
    /// Queries resolved [`TnnError::DeadlineExceeded`] — at admission,
    /// by expiry-aware shedding, or at dequeue.
    pub expired: u64,
    /// Jobs admitted but not yet picked up, at snapshot time.
    pub queued: usize,
    /// Jobs being executed by a worker, at snapshot time.
    pub in_flight: usize,
    /// Completions served straight from the result cache (byte-identical
    /// to an engine run of the same query).
    pub cache_hits: u64,
    /// Completions that ran the engine because no cache entry existed
    /// (the outcome was then stored).
    pub cache_misses: u64,
    /// Completions that ran the engine because the cache entry's TTL had
    /// elapsed (the outcome re-stored, refreshing the entry).
    pub cache_expired: u64,
    /// Completions that never touched the cache: caching disabled, a
    /// degenerate (`k < 2`) environment, an error outcome (errors are
    /// never cached), a degraded outcome (fallback answers must not be
    /// replayed under a full-fidelity key), or a job abandoned by a
    /// dying worker.
    pub cache_bypass: u64,
    /// Completions coalesced onto another submission's in-flight engine
    /// run ([`ServeConfig::singleflight`]): the follower's ticket shares
    /// the leader's outcome, so the engine ran once for the whole
    /// flight. The leader itself is classified by its own cache outcome
    /// (`cache_misses` or `cache_expired`), never here.
    pub cache_coalesced: u64,
    /// Total retry attempts over all classes.
    pub retried: u64,
    /// Total degraded completions over all classes.
    pub degraded: u64,
    /// Worker serving rounds that panicked and respawned in place (an
    /// injected kill, or a bug that escaped per-job isolation). Bounded
    /// by [`ServeConfig::max_worker_restarts`]; beyond the bound the
    /// server fails closed.
    pub worker_restarts: u64,
    /// The same counters split by priority class (cache counters and
    /// worker restarts are tracked globally, not per class).
    pub classes: [ClassStats; Priority::COUNT],
}

impl ServeStats {
    /// The ticket-conservation invariant, now three-way:
    ///
    /// 1. every submission is accounted for exactly once
    ///    (`submitted = accepted + rejected` and `accepted = completed +
    ///    shed + cancelled + expired + queued + in_flight`);
    /// 2. the same holds within every priority class, and the classes
    ///    sum to the totals;
    /// 3. every completion is classified by exactly one cache outcome
    ///    (`completed = cache_hits + cache_misses + cache_expired +
    ///    cache_bypass + cache_coalesced`).
    ///
    /// Holds for every snapshot; after a shutdown `queued` and
    /// `in_flight` are 0, so clause 1 reduces to `submitted = rejected +
    /// shed + cancelled + expired + completed`.
    pub fn conserved(&self) -> bool {
        let totals = self.submitted == self.accepted + self.rejected
            && self.accepted
                == self.completed
                    + self.shed
                    + self.cancelled
                    + self.expired
                    + self.queued as u64
                    + self.in_flight as u64;
        let classes = self.classes.iter().all(ClassStats::conserved)
            && self.submitted == self.classes.iter().map(|c| c.submitted).sum::<u64>()
            && self.accepted == self.classes.iter().map(|c| c.accepted).sum::<u64>()
            && self.rejected == self.classes.iter().map(|c| c.rejected).sum::<u64>()
            && self.shed == self.classes.iter().map(|c| c.shed).sum::<u64>()
            && self.cancelled == self.classes.iter().map(|c| c.cancelled).sum::<u64>()
            && self.completed == self.classes.iter().map(|c| c.completed).sum::<u64>()
            && self.expired == self.classes.iter().map(|c| c.expired).sum::<u64>()
            && self.queued == self.classes.iter().map(|c| c.queued).sum::<usize>()
            && self.in_flight == self.classes.iter().map(|c| c.in_flight).sum::<usize>();
        let cache = self.completed
            == self.cache_hits
                + self.cache_misses
                + self.cache_expired
                + self.cache_bypass
                + self.cache_coalesced;
        let resilience = self.retried == self.classes.iter().map(|c| c.retried).sum::<u64>()
            && self.degraded == self.classes.iter().map(|c| c.degraded).sum::<u64>()
            && self
                .classes
                .iter()
                .all(|c| c.degraded <= c.completed && c.latency.count() <= c.completed);
        totals && classes && cache && resilience
    }

    /// The per-class counters for `class`.
    pub fn class(&self, class: Priority) -> &ClassStats {
        &self.classes[class.index()]
    }

    /// Adds `other`'s counters into `self`, per class and in total — the
    /// aggregation a multi-server deployment (one snapshot per shard
    /// replica) folds its fleet view out of. Every
    /// [`ServeStats::conserved`] clause is a linear equation over the
    /// counters, so **merging conserved snapshots yields a conserved
    /// aggregate** — the invariant the shard router's `ShardStats`
    /// re-asserts after folding.
    pub fn merge(&mut self, other: &ServeStats) {
        self.submitted += other.submitted;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.cancelled += other.cancelled;
        self.completed += other.completed;
        self.expired += other.expired;
        self.queued += other.queued;
        self.in_flight += other.in_flight;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_expired += other.cache_expired;
        self.cache_bypass += other.cache_bypass;
        self.cache_coalesced += other.cache_coalesced;
        self.retried += other.retried;
        self.degraded += other.degraded;
        self.worker_restarts += other.worker_restarts;
        for (mine, theirs) in self.classes.iter_mut().zip(other.classes.iter()) {
            mine.merge(theirs);
        }
    }

    /// Folds an iterator of per-server snapshots into one aggregate via
    /// [`ServeStats::merge`] (the empty fold is the all-zero snapshot,
    /// which is conserved).
    pub fn fold<'a>(snapshots: impl IntoIterator<Item = &'a ServeStats>) -> ServeStats {
        let mut total = ServeStats::default();
        for snapshot in snapshots {
            total.merge(snapshot);
        }
        total
    }

    /// Cache hit fraction of all completions, 0.0 before any complete.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.completed as f64
        }
    }

    /// Publishes this snapshot into `registry`: per-class
    /// admission/completion counters and latency histograms under
    /// `tnn_serve_*` (labelled `{class="..."}`), the cache-outcome
    /// classification, and the worker-restart tally. All counter fields
    /// of a live server's snapshots only ever grow, so repeated
    /// publications are monotone (Prometheus counter semantics).
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        for class in Priority::ALL {
            let c = self.class(class);
            let series = |name: &str| format!("{name}{{class=\"{}\"}}", class.name());
            registry.counter(
                &series("tnn_serve_submitted_total"),
                "Queries submitted, including refused ones",
                c.submitted,
            );
            registry.counter(
                &series("tnn_serve_accepted_total"),
                "Queries admitted into the queue",
                c.accepted,
            );
            registry.counter(
                &series("tnn_serve_rejected_total"),
                "Queries refused at the door",
                c.rejected,
            );
            registry.counter(
                &series("tnn_serve_shed_total"),
                "Viable queries evicted by load shedding",
                c.shed,
            );
            registry.counter(
                &series("tnn_serve_cancelled_total"),
                "Queries cancelled at shutdown",
                c.cancelled,
            );
            registry.counter(
                &series("tnn_serve_completed_total"),
                "Queries whose outcome was delivered",
                c.completed,
            );
            registry.counter(
                &series("tnn_serve_expired_total"),
                "Queries whose deadline passed unanswered",
                c.expired,
            );
            registry.counter(
                &series("tnn_serve_retried_total"),
                "Retry attempts charged to the class",
                c.retried,
            );
            registry.counter(
                &series("tnn_serve_degraded_total"),
                "Completions answered by a degradation fallback",
                c.degraded,
            );
            registry.gauge(
                &series("tnn_serve_queued"),
                "Jobs admitted but not yet picked up",
                c.queued as f64,
            );
            registry.gauge(
                &series("tnn_serve_in_flight"),
                "Jobs being executed by a worker",
                c.in_flight as f64,
            );
            registry.histogram(
                &series("tnn_serve_latency"),
                "Submission-to-resolution latency",
                &c.latency,
            );
        }
        registry.counter(
            "tnn_serve_cache_hits_total",
            "Completions served straight from the result cache",
            self.cache_hits,
        );
        registry.counter(
            "tnn_serve_cache_misses_total",
            "Completions that ran the engine on a cache miss",
            self.cache_misses,
        );
        registry.counter(
            "tnn_serve_cache_expired_total",
            "Completions that refreshed a TTL-expired cache entry",
            self.cache_expired,
        );
        registry.counter(
            "tnn_serve_cache_bypass_total",
            "Completions that never touched the cache",
            self.cache_bypass,
        );
        registry.counter(
            "tnn_serve_cache_coalesced_total",
            "Completions coalesced onto an in-flight engine run",
            self.cache_coalesced,
        );
        registry.counter(
            "tnn_serve_worker_restarts_total",
            "Worker serving rounds that panicked and respawned",
            self.worker_restarts,
        );
    }
}

/// One admitted query and the cell its ticket reads from.
struct Job {
    query: Query,
    cell: Arc<TicketCell>,
    class: Priority,
    deadline: Deadline,
    /// The query's cache identity — `Some` exactly when the result cache
    /// will be consulted for it (cache enabled, cacheable environment).
    key: Option<QueryKey>,
    /// The admission probe found a TTL-expired entry: this run refreshes
    /// it (classified `cache_expired`, not `cache_misses`).
    refresh: bool,
    /// This job leads a singleflight: concurrent identical submissions
    /// share its cell, and the worker that resolves it must retire the
    /// flight-table entry so the next miss of the key leads anew.
    lead: bool,
    /// Admission sequence number — the logical clock every fault
    /// decision is keyed by (see [`FaultPlan`]), assigned under the
    /// state lock at enqueue.
    seq: u64,
    /// When the client handed the query over, for the per-class latency
    /// histograms.
    submitted_at: Instant,
    /// When the job entered the queue — stamped only under
    /// [`tnn_trace::TraceConfig::On`] (`None` keeps the untraced
    /// admission path stamp-free), splitting admission wait from queue
    /// residency in the job's [`QueryTrace`].
    enqueued_at: Option<Instant>,
}

impl Drop for Job {
    fn drop(&mut self) {
        // Safety net: a job dropped without resolution (a worker
        // panicking mid-batch unwinds its local jobs through here) must
        // not strand its waiters. The job died to a server-side defect,
        // not to scheduling, so the waiter sees `Internal` — every
        // deliberate resolution path (workers, shedding, cancellation)
        // resolves explicitly first, making this a no-op there.
        self.cell.resolve(Err(TnnError::Internal));
    }
}

/// Per-class mutable counters (`queued` is read off the queue itself).
#[derive(Default, Clone, Copy)]
struct ClassCounters {
    submitted: u64,
    accepted: u64,
    rejected: u64,
    shed: u64,
    cancelled: u64,
    completed: u64,
    expired: u64,
    in_flight: usize,
    retried: u64,
    degraded: u64,
    latency: LatencyHistogram,
}

/// Mutable queue state — every field mutates under one mutex, which is
/// what makes the [`ServeStats`] conservation invariant snapshot-exact.
struct State {
    queue: MultiLevelQueue<Job>,
    shutdown: Option<ShutdownMode>,
    classes: [ClassCounters; Priority::COUNT],
    cache_hits: u64,
    cache_misses: u64,
    cache_expired: u64,
    cache_bypass: u64,
    cache_coalesced: u64,
    /// Next admission sequence number (assigned to enqueued jobs only,
    /// so a single-threaded submitter gets a deterministic numbering).
    next_seq: u64,
    /// Worker rounds that panicked and respawned, pool-wide.
    worker_restarts: u64,
}

impl State {
    fn cancel_backlog(&mut self) {
        while let Some((class, job)) = self.queue.pop() {
            self.classes[class.index()].cancelled += 1;
            job.cell.resolve(Err(TnnError::Cancelled));
        }
    }
}

impl Inner {
    /// Removes `key`'s singleflight entry (if flights are on and the
    /// job had a cache identity) — called by whichever path resolved a
    /// leader's cell, so the key's next miss leads a fresh engine run.
    fn retire_flight(&self, key: &Option<QueryKey>) {
        if let (Some(flights), Some(key)) = (&self.flights, key) {
            flights.complete(key);
        }
    }
}

struct Inner {
    state: Mutex<State>,
    /// Wakes workers when jobs arrive (or shutdown begins).
    work: Condvar,
    /// Wakes `Block`ed submitters when a worker frees queue slots.
    space: Condvar,
    /// The shared result cache; `None` when disabled by configuration.
    cache: Option<ResultCache<QueryKey, QueryOutcome>>,
    /// In-flight engine runs by cache key, for singleflight coalescing;
    /// `None` unless [`ServeConfig::singleflight`] is on, the cache is
    /// active, and no fault plan is installed (injected faults and
    /// degraded fallbacks would break the share-the-leader's-bytes
    /// contract).
    flights: Option<FlightTable<QueryKey, Arc<TicketCell>>>,
    /// The fault schedule workers execute under; `None` for servers
    /// spawned without one (the plain [`Server::spawn`] path keeps the
    /// exact PR 5 hot path — not even a zero-plan probe per job).
    faults: Option<FaultInjector>,
    /// Per-class retry-attempt pools ([`ServeConfig::retry_budget`]).
    budget: RetryBudget,
    /// The slow-query flight recorder; `Some` exactly when
    /// [`ServeConfig::trace`] is on. Workers record each executed
    /// job's [`QueryTrace`] here *after* resolving its ticket, holding
    /// no other lock.
    recorder: Option<FlightRecorder>,
    config: ServeConfig,
}

/// A concurrent query-serving front-end over a [`QueryEngine`].
///
/// `N` worker threads each own an O(1)-cloned engine handle and one
/// recycled [`tnn_core::QueryScratch`]; clients submit [`Query`]s through
/// a strict-priority bounded queue with an explicit [`Backpressure`]
/// policy and get non-blocking [`Ticket`]s back. Per-submission
/// [`Qos`] terms carry a priority class and an optional deadline
/// ([`Server::submit_with`]); a sharded result cache answers repeated
/// queries without touching a worker. Concurrency and caching may
/// reorder or short-circuit *completion*, never *answers*: every outcome
/// delivered through a ticket is byte-identical to a direct
/// [`QueryEngine::run`] of the same query (gated by
/// `crates/bench/tests/serve_equivalence.rs` and
/// `crates/bench/tests/qos_equivalence.rs`).
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
/// use tnn_core::Query;
/// use tnn_geom::Point;
/// use tnn_rtree::{PackingAlgorithm, RTree};
/// use tnn_serve::{Qos, ServeConfig, Server, ShutdownMode};
///
/// let params = BroadcastParams::new(64);
/// let tree = |salt: usize| {
///     let pts: Vec<Point> = (0..40)
///         .map(|i| Point::new(((i * 7 + salt) % 53) as f64, ((i * 11 + salt) % 59) as f64))
///         .collect();
///     Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
/// };
/// let env = MultiChannelEnv::new(vec![tree(0), tree(5)], params, &[3, 17]);
///
/// let server = Server::spawn(env, ServeConfig::new().workers(2));
/// let query = Query::tnn(Point::new(20.0, 20.0));
/// let qos = Qos::interactive().deadline_in(Duration::from_secs(5));
/// let ticket = server.submit_with(query.clone(), qos).unwrap();
/// let outcome = ticket.wait().unwrap();
/// assert_eq!(outcome.route.len(), 2);
/// // A repeat of the same query completes from the cache — same bytes.
/// let again = server.submit(query).unwrap().wait().unwrap();
/// assert_eq!(again, outcome);
/// let stats = server.shutdown(ShutdownMode::Drain);
/// assert!(stats.conserved());
/// assert_eq!(stats.cache_hits, 1);
/// ```
pub struct Server<Q: CandidateQueue + 'static = ArrivalHeap> {
    inner: Arc<Inner>,
    engine: QueryEngine<Q>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server<ArrivalHeap> {
    /// Spawns a server over `env` with the production heap-ordered queue
    /// backend. See [`Server::spawn_engine`] for the full contract.
    pub fn spawn(env: MultiChannelEnv, config: ServeConfig) -> Self {
        Server::spawn_engine(QueryEngine::new(env), config)
    }

    /// [`Server::spawn`] under a [`FaultPlan`]: workers execute every
    /// job through the plan's injected drops, outages, jitter, panics,
    /// and kills. See [`Server::spawn_engine_with_faults`].
    pub fn spawn_with_faults(env: MultiChannelEnv, config: ServeConfig, plan: FaultPlan) -> Self {
        Server::spawn_engine_with_faults(QueryEngine::new(env), config, plan)
    }
}

impl<Q: CandidateQueue + 'static> Server<Q> {
    /// Spawns `config.workers` worker threads over (clones of) `engine`.
    ///
    /// `config.workers = 0` is allowed and means a *paused* server:
    /// submissions queue up (and backpressure applies) but nothing
    /// executes; [`Server::shutdown`] then resolves the backlog as
    /// cancelled regardless of mode. `queue_capacity` and `batch_window`
    /// are clamped to at least 1.
    pub fn spawn_engine(engine: QueryEngine<Q>, config: ServeConfig) -> Self {
        Server::spawn_engine_faulted(engine, config, None)
    }

    /// [`Server::spawn_engine`] under a [`FaultPlan`]: before each
    /// execution attempt a worker probes every channel through the
    /// plan; a drop or outage surfaces as
    /// [`TnnError::ChannelUnavailable`] and enters the retry ladder
    /// ([`ServeConfig::retry`], then [`ServeConfig::degradation`]);
    /// injected engine panics resolve only their own ticket
    /// ([`TnnError::Internal`]); injected worker kills unwind a whole
    /// serving round and exercise in-place respawn
    /// ([`ServeStats::worker_restarts`]). A zero plan injects nothing:
    /// outcomes are byte-identical to a plain [`Server::spawn_engine`]
    /// (gated by `crates/bench/tests/fault_equivalence.rs`). Read the
    /// injected-fault tallies back with [`Server::fault_stats`].
    pub fn spawn_engine_with_faults(
        engine: QueryEngine<Q>,
        config: ServeConfig,
        plan: FaultPlan,
    ) -> Self {
        Server::spawn_engine_faulted(engine, config, Some(FaultInjector::new(plan)))
    }

    fn spawn_engine_faulted(
        engine: QueryEngine<Q>,
        config: ServeConfig,
        faults: Option<FaultInjector>,
    ) -> Self {
        let config = ServeConfig {
            queue_capacity: config.queue_capacity.max(1),
            batch_window: config.batch_window.max(1),
            ..config
        };
        // Caching needs a k ≥ 2 environment: anything else errors on
        // every query, and errors are never cached.
        let cache = (config.cache.enabled && engine.channels() >= 2)
            .then(|| ResultCache::new(config.cache));
        let flights =
            (config.singleflight && cache.is_some() && faults.is_none()).then(FlightTable::new);
        let recorder = config.trace.recorder().map(FlightRecorder::new);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: MultiLevelQueue::new(),
                shutdown: None,
                classes: [ClassCounters::default(); Priority::COUNT],
                cache_hits: 0,
                cache_misses: 0,
                cache_expired: 0,
                cache_bypass: 0,
                cache_coalesced: 0,
                next_seq: 0,
                worker_restarts: 0,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            cache,
            flights,
            faults,
            budget: RetryBudget::new(config.retry_budget),
            recorder,
            config,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let engine = engine.clone();
                std::thread::Builder::new()
                    .name(format!("tnn-serve-{i}"))
                    .spawn(move || worker_loop(&inner, &engine))
                    // check:allow(R2, construction-time OS spawn failure has no caller to report to — a server that cannot start its pool must not pretend it did)
                    .expect("spawn tnn-serve worker thread")
            })
            .collect();
        Server {
            inner,
            engine,
            workers: Mutex::new(workers),
        }
    }

    /// The engine the workers execute against (workers hold O(1) clones
    /// sharing this environment).
    pub fn engine(&self) -> &QueryEngine<Q> {
        &self.engine
    }

    /// Publishes `env` as the serving environment without stopping the
    /// server: workers pick up the new snapshot on their next job, while
    /// jobs already executing finish on the snapshot they started with.
    /// Queries admitted after the swap carry the new environment's
    /// epoch/fingerprint in their cache keys, so pre-swap cache entries
    /// miss instead of replaying stale answers (churn regression:
    /// `crates/serve/tests/churn.rs`).
    ///
    /// # Errors
    /// [`TnnError::WrongChannelCount`] when `env`'s channel count
    /// differs from the engine's — a swap may change data, never shape
    /// (see [`QueryEngine::swap_env`]). The server keeps serving the
    /// old environment on error.
    pub fn swap_env(&self, env: MultiChannelEnv) -> Result<(), TnnError> {
        self.engine.swap_env(env)
    }

    /// The normalized configuration the server runs with.
    pub fn config(&self) -> ServeConfig {
        self.inner.config
    }

    /// Submits one query under default QoS terms ([`Priority::Batch`],
    /// no deadline) and returns its completion [`Ticket`]. See
    /// [`Server::submit_with`].
    ///
    /// # Errors
    /// As [`Server::submit_with`].
    ///
    /// # Panics
    /// As [`Server::submit_with`].
    pub fn submit(&self, query: Query) -> Result<Ticket, TnnError> {
        self.submit_with(query, Qos::default())
    }

    /// Submits one query under explicit [`Qos`] terms and returns its
    /// completion [`Ticket`].
    ///
    /// The priority class selects the submission lane (strictly drained
    /// most-urgent-first) and the lane bound backpressure applies
    /// against. The deadline is enforced three times: a query already
    /// expired at admission resolves [`TnnError::DeadlineExceeded`]
    /// without queueing, expiry-aware [`Backpressure::Shed`] evicts
    /// expired work first, and a worker discards (rather than runs) a
    /// job whose deadline passed while queued. A result-cache hit
    /// resolves the ticket at admission with bytes identical to a fresh
    /// engine run.
    ///
    /// # Errors
    /// [`TnnError::Overloaded`] when the class lane is full under
    /// [`Backpressure::Reject`]; [`TnnError::Cancelled`] when the server
    /// is shutting down (under [`Backpressure::Block`] this can surface
    /// after a wait). Query-level errors (wrong channel count, empty
    /// channels, non-finite points) are *not* raised here — they travel
    /// through the ticket, exactly as [`QueryEngine::run`] would return
    /// them. A pre-expired deadline also travels through the ticket
    /// (the submission itself succeeded).
    ///
    /// # Panics
    /// Panics — on the submitting thread, before anything is enqueued —
    /// when per-channel phases or ANN modes do not match the engine's
    /// channel count (the same conditions under which
    /// [`QueryEngine::run`] panics; see [`Query::check_channels`]).
    pub fn submit_with(&self, query: Query, qos: Qos) -> Result<Ticket, TnnError> {
        query.check_channels(self.engine.channels());
        // Key derivation (hashing + small allocations) happens before
        // the state lock — the admission critical section stays short.
        let key = self.derive_key(&query);
        // Stamped before admission: under `Block` the wait for a queue
        // slot is part of the client-observed latency.
        let submitted_at = Instant::now();
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let (state, result, enqueued) = self.admit(state, query, key, qos, submitted_at);
        drop(state);
        if enqueued {
            self.inner.work.notify_one();
        }
        result
    }

    /// Submits many queries under one queue-lock acquisition and default
    /// QoS terms. See [`Server::submit_batch_with`].
    ///
    /// # Panics
    /// As [`Server::submit_with`] — every query is validated before the
    /// first one is enqueued.
    pub fn submit_batch(
        &self,
        queries: impl IntoIterator<Item = Query>,
    ) -> Vec<Result<Ticket, TnnError>> {
        self.submit_batch_with(queries, Qos::default())
    }

    /// Submits many queries under one queue-lock acquisition and shared
    /// [`Qos`] terms, wakes the workers once, and returns one [`Ticket`]
    /// result per query in order. Workers then drain the backlog in
    /// micro-batches of up to [`ServeConfig::batch_window`] jobs per
    /// wake-up, amortizing the wake/steal overhead that per-query
    /// submission would pay `n` times.
    ///
    /// Per-query admission follows [`Server::submit_with`] exactly (a
    /// [`Backpressure::Reject`] overflow rejects only the overflowing
    /// queries; [`Backpressure::Block`] may wait mid-batch for workers
    /// to free slots).
    ///
    /// # Panics
    /// As [`Server::submit_with`] — every query is validated before the
    /// first one is enqueued.
    pub fn submit_batch_with(
        &self,
        queries: impl IntoIterator<Item = Query>,
        qos: Qos,
    ) -> Vec<Result<Ticket, TnnError>> {
        self.submit_batch_qos(queries.into_iter().map(|query| (query, qos)))
    }

    /// Submits many `(query, qos)` pairs under one queue-lock
    /// acquisition — the mixed-class form of
    /// [`Server::submit_batch_with`] for front-ends whose inbound
    /// traffic carries heterogeneous priorities and deadlines. The whole
    /// batch is admitted atomically with respect to the workers: no job
    /// of the batch starts executing before the last one is enqueued
    /// (unless a [`Backpressure::Block`] wait has to yield the lock
    /// mid-batch), so strict-priority draining applies to the batch as
    /// a whole.
    ///
    /// # Panics
    /// As [`Server::submit_with`] — every query is validated before the
    /// first one is enqueued.
    pub fn submit_batch_qos(
        &self,
        submissions: impl IntoIterator<Item = (Query, Qos)>,
    ) -> Vec<Result<Ticket, TnnError>> {
        let submissions: Vec<(Query, Qos)> = submissions.into_iter().collect();
        for (query, _) in &submissions {
            query.check_channels(self.engine.channels());
        }
        // Keys for the whole batch are derived before the lock — the
        // batch-long critical section does no hashing or allocation.
        let keys: Vec<Option<QueryKey>> = submissions
            .iter()
            .map(|(query, _)| self.derive_key(query))
            .collect();
        // One stamp for the whole batch, taken at entry: time spent
        // blocked mid-batch counts toward the latency of every later
        // query in it — the client handed them all over at this instant.
        let submitted_at = Instant::now();
        let mut out = Vec::with_capacity(submissions.len());
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut admitted = false;
        for ((query, qos), key) in submissions.into_iter().zip(keys) {
            let (next, result, enqueued) = self.admit(state, query, key, qos, submitted_at);
            state = next;
            admitted |= enqueued;
            out.push(result);
        }
        drop(state);
        if admitted {
            self.inner.work.notify_all();
        }
        out
    }

    /// The query's cache identity, derived only when the cache exists
    /// (the spawn gate guarantees a cacheable `k ≥ 2` environment then).
    /// Stamped against the *current* environment snapshot: the key
    /// carries the env's epoch and content fingerprint, so entries
    /// written before a [`Server::swap_env`] can never answer queries
    /// admitted after it. A worker re-stamps the key if the environment
    /// moved between admission and execution.
    fn derive_key(&self, query: &Query) -> Option<QueryKey> {
        self.inner
            .cache
            .is_some()
            .then(|| query.cache_key(&self.engine.env()))
    }

    /// Admission under the state lock: deadline check, cache probe,
    /// backpressure, enqueue, ticket mint. Returns the (possibly
    /// re-acquired, for `Block`) guard so batch submission stays under
    /// one logical critical section, plus whether a job actually entered
    /// the queue (cache hits and dead-on-arrival deadlines resolve
    /// without one, so no worker wake-up is owed).
    fn admit<'a>(
        &self,
        mut state: MutexGuard<'a, State>,
        query: Query,
        key: Option<QueryKey>,
        qos: Qos,
        submitted_at: Instant,
    ) -> (MutexGuard<'a, State>, Result<Ticket, TnnError>, bool) {
        let class = qos.priority.index();
        state.classes[class].submitted += 1;
        if state.shutdown.is_some() {
            state.classes[class].rejected += 1;
            return (state, Err(TnnError::Cancelled), false);
        }
        // Deadline at admission: dead-on-arrival work resolves without
        // costing a slot (or a cache probe — the client said "by then").
        if qos.deadline.expired(Instant::now()) {
            state.classes[class].accepted += 1;
            state.classes[class].expired += 1;
            let cell = TicketCell::new();
            cell.resolve(Err(TnnError::DeadlineExceeded));
            return (state, Ok(Ticket { cell, submitted_at }), false);
        }
        // Admission-time cache probe: a hit completes right here —
        // byte-identical bytes, zero queue traffic. Probed at a fresh
        // `now`, not `submitted_at`: a batch stamp can be arbitrarily
        // stale after a mid-batch Block wait, and TTL expiry must be
        // judged against the present.
        let mut refresh = false;
        if let (Some(cache), Some(candidate)) = (&self.inner.cache, &key) {
            match cache.lookup(candidate, Instant::now()) {
                Lookup::Hit(outcome) => {
                    state.classes[class].accepted += 1;
                    state.classes[class].completed += 1;
                    state.cache_hits += 1;
                    state.classes[class]
                        .latency
                        .record(Instant::now().saturating_duration_since(submitted_at));
                    let cell = TicketCell::new();
                    cell.resolve(Ok(outcome));
                    return (state, Ok(Ticket { cell, submitted_at }), false);
                }
                Lookup::Expired => refresh = true,
                Lookup::Miss => {}
            }
        }
        // Singleflight: a live in-flight run of this exact key absorbs
        // the miss — the follower's ticket reads the leader's cell, no
        // job is enqueued, and the engine runs once for the whole
        // flight. Otherwise this submission becomes the leader and must
        // retire the flight entry on every exit path below.
        let cell = TicketCell::new();
        let mut lead = false;
        if let (Some(flights), Some(candidate)) = (&self.inner.flights, &key) {
            match flights.join_or_lead(candidate, Arc::clone(&cell), |c| !c.is_resolved()) {
                FlightOutcome::Joined(leader) => {
                    state.classes[class].accepted += 1;
                    state.classes[class].completed += 1;
                    state.cache_coalesced += 1;
                    state.classes[class]
                        .latency
                        .record(Instant::now().saturating_duration_since(submitted_at));
                    let cell = leader;
                    return (state, Ok(Ticket { cell, submitted_at }), false);
                }
                FlightOutcome::Led => lead = true,
            }
        }
        let capacity = self.inner.config.lane_capacity(qos.priority);
        loop {
            if state.shutdown.is_some() {
                state.classes[class].rejected += 1;
                // Followers already on this flight share the leader's
                // fate; the entry must not outlive it.
                if lead {
                    cell.resolve(Err(TnnError::Cancelled));
                    self.inner.retire_flight(&key);
                }
                return (state, Err(TnnError::Cancelled), false);
            }
            // The deadline can pass while Block-waiting for a slot.
            if qos.deadline.expired(Instant::now()) {
                state.classes[class].accepted += 1;
                state.classes[class].expired += 1;
                cell.resolve(Err(TnnError::DeadlineExceeded));
                if lead {
                    self.inner.retire_flight(&key);
                }
                return (state, Ok(Ticket { cell, submitted_at }), false);
            }
            if state.queue.len_of(qos.priority) < capacity {
                break;
            }
            match self.inner.config.backpressure {
                Backpressure::Block => {
                    // A full lane means there is work: make sure a
                    // worker is awake to drain it before sleeping on the
                    // space condvar (a batched submitter publishes its
                    // work notification only after the whole batch). A
                    // deadline bounds the sleep — on a wedged or paused
                    // server no space wake-up ever comes, and the query
                    // must still resolve `DeadlineExceeded` on time
                    // (checked at the top of the loop).
                    self.inner.work.notify_all();
                    state = match qos.deadline.remaining(Instant::now()) {
                        Some(left) => {
                            self.inner
                                .space
                                .wait_timeout(state, left)
                                .unwrap_or_else(|e| e.into_inner())
                                .0
                        }
                        None => self
                            .inner
                            .space
                            .wait(state)
                            .unwrap_or_else(|e| e.into_inner()),
                    };
                }
                Backpressure::Reject => {
                    state.classes[class].rejected += 1;
                    if lead {
                        cell.resolve(Err(TnnError::Overloaded));
                        self.inner.retire_flight(&key);
                    }
                    return (state, Err(TnnError::Overloaded), false);
                }
                Backpressure::Shed => {
                    let now = Instant::now();
                    let (victim, was_expired) = state
                        .queue
                        .shed_victim(qos.priority, self.inner.config.shed, |job| {
                            job.deadline.expired(now)
                        })
                        // check:allow(R2, Shed is only reached when the lane is full, and a full lane always yields a victim)
                        .expect("full lane has a victim");
                    if was_expired {
                        state.classes[victim.class.index()].expired += 1;
                        victim.cell.resolve(Err(TnnError::DeadlineExceeded));
                    } else {
                        state.classes[victim.class.index()].shed += 1;
                        victim.cell.resolve(Err(TnnError::Overloaded));
                    }
                    // An evicted leader's flight dies with it: retire
                    // the entry so the key's next miss leads a fresh
                    // run instead of probing a resolved cell.
                    if victim.lead {
                        self.inner.retire_flight(&victim.key);
                    }
                    break;
                }
            }
        }
        state.classes[class].accepted += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        state.queue.push_back(
            qos.priority,
            Job {
                query,
                cell: Arc::clone(&cell),
                class: qos.priority,
                deadline: qos.deadline,
                key,
                refresh,
                lead,
                seq,
                submitted_at,
                enqueued_at: self.inner.recorder.is_some().then(Instant::now),
            },
        );
        (state, Ok(Ticket { cell, submitted_at }), true)
    }

    /// A consistent snapshot of the admission/completion counters.
    pub fn stats(&self) -> ServeStats {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut stats = ServeStats {
            cache_hits: state.cache_hits,
            cache_misses: state.cache_misses,
            cache_expired: state.cache_expired,
            cache_bypass: state.cache_bypass,
            cache_coalesced: state.cache_coalesced,
            worker_restarts: state.worker_restarts,
            ..ServeStats::default()
        };
        for class in Priority::ALL {
            let i = class.index();
            let c = &state.classes[i];
            let snapshot = ClassStats {
                submitted: c.submitted,
                accepted: c.accepted,
                rejected: c.rejected,
                shed: c.shed,
                cancelled: c.cancelled,
                completed: c.completed,
                expired: c.expired,
                queued: state.queue.len_of(class),
                in_flight: c.in_flight,
                retried: c.retried,
                degraded: c.degraded,
                latency: c.latency,
            };
            stats.classes[i] = snapshot;
            stats.submitted += snapshot.submitted;
            stats.accepted += snapshot.accepted;
            stats.rejected += snapshot.rejected;
            stats.shed += snapshot.shed;
            stats.cancelled += snapshot.cancelled;
            stats.completed += snapshot.completed;
            stats.expired += snapshot.expired;
            stats.queued += snapshot.queued;
            stats.in_flight += snapshot.in_flight;
            stats.retried += snapshot.retried;
            stats.degraded += snapshot.degraded;
        }
        stats
    }

    /// Counters of the shared result cache (entry counts, evictions),
    /// `None` when caching is disabled. The per-completion hit/miss
    /// classification lives in [`ServeStats`].
    pub fn cache_stats(&self) -> Option<tnn_qos::CacheStats> {
        self.inner.cache.as_ref().map(ResultCache::stats)
    }

    /// Exact tallies of the injected faults so far, `None` for a server
    /// spawned without a [`FaultPlan`]. For plans without worker kills
    /// the tallies are bit-identical across worker counts and reruns of
    /// the same admission sequence (see [`FaultStats`]).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.inner.faults.as_ref().map(FaultInjector::stats)
    }

    /// The slow-query flight recorder, `None` unless
    /// [`ServeConfig::trace`] is on. Holds the N slowest and every
    /// degraded-or-errored [`QueryTrace`] of worker-executed jobs
    /// (admission-time cache hits and refusals resolve without a
    /// worker and are counted in [`ServeStats`] only).
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.inner.recorder.as_ref()
    }

    /// Publishes a snapshot of this server's metrics into `registry`:
    /// per-class admission/completion counters and latency histograms
    /// under `tnn_serve_*`, the cache-outcome classification, the
    /// result cache's own `tnn_cache_*` counters and the fault
    /// injector's `tnn_faults_*` tallies when present, and the flight
    /// recorder's retention counters under `tnn_trace_*`.
    ///
    /// Every counter is published from a stats snapshot whose fields
    /// only ever grow, so repeated publications are monotone —
    /// Prometheus counter semantics ([`MetricsRegistry::render_prometheus`]).
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        self.stats().publish_metrics(registry);
        if let Some(cache) = self.cache_stats() {
            cache.publish_metrics(registry);
        }
        if let Some(faults) = self.fault_stats() {
            faults.publish_metrics(registry);
        }
        if let Some(recorder) = self.recorder() {
            registry.counter(
                "tnn_trace_recorded_total",
                "Query traces offered to the flight recorder",
                recorder.recorded(),
            );
            registry.gauge(
                "tnn_trace_retained",
                "Query traces currently retained by the flight recorder",
                recorder.len() as f64,
            );
        }
    }

    /// Shuts the server down and joins every worker thread.
    ///
    /// Deterministic contract, regardless of mode and timing: when this
    /// returns, **every admitted ticket has resolved** — with its real
    /// outcome ([`ShutdownMode::Drain`], or any job already picked up by
    /// a worker), or with [`TnnError::Cancelled`]
    /// ([`ShutdownMode::Cancel`] backlog, and any backlog left when no
    /// worker survives to drain it, e.g. on a paused server). Concurrent
    /// `submit` calls from other threads fail with
    /// [`TnnError::Cancelled`] from the moment shutdown begins.
    ///
    /// Idempotent: later calls (including the implicit drain in `Drop`)
    /// join nothing and return the final stats; the first mode wins.
    pub fn shutdown(&self, mode: ShutdownMode) -> ServeStats {
        // Hold the handle lock across begin + join + sweep so a
        // concurrent shutdown call returns only after the first one has
        // fully quiesced the server.
        let mut handles = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        self.begin_shutdown(mode);
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
        // Final sweep: with zero (or crashed) workers the backlog is
        // still sitting in the queue; no ticket may outlive shutdown
        // unresolved.
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.cancel_backlog();
        drop(state);
        drop(handles);
        self.stats()
    }

    fn begin_shutdown(&self, mode: ShutdownMode) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.shutdown.is_none() {
            state.shutdown = Some(mode);
        }
        if state.shutdown == Some(ShutdownMode::Cancel) {
            // Resolve the backlog here, not in the workers: every queued
            // ticket has resolved by the time `shutdown` returns even if
            // all workers are busy mid-batch.
            state.cancel_backlog();
        }
        drop(state);
        self.inner.work.notify_all();
        self.inner.space.notify_all();
    }
}

impl<Q: CandidateQueue + 'static> Drop for Server<Q> {
    fn drop(&mut self) {
        let live = !self
            .workers
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty();
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let pending = !state.queue.is_empty();
        drop(state);
        if live || pending {
            self.shutdown(ShutdownMode::Drain);
        }
    }
}

/// Accounting guard for one popped micro-batch. The normal path settles
/// the per-class completed/expired counts (and the cache classification)
/// in one lock per batch (not per job); if the worker unwinds mid-batch
/// (an injected fault, or a real engine bug — either way the server must
/// not corrupt), the guard's `Drop` books the abandoned jobs as
/// *completed with a bypassed cache* — their tickets resolve
/// [`TnnError::Internal`] through [`Job`]'s drop right after this, so an
/// outcome **was** delivered — keeping [`ServeStats::conserved`] true and
/// `in_flight` exact. The worker itself respawns (bounded by
/// [`ServeConfig::max_worker_restarts`]); the server keeps serving.
struct BatchGuard<'a> {
    inner: &'a Inner,
    taken: [usize; Priority::COUNT],
    completed: [usize; Priority::COUNT],
    expired: [usize; Priority::COUNT],
    retried: [u64; Priority::COUNT],
    degraded: [u64; Priority::COUNT],
    latency: [LatencyHistogram; Priority::COUNT],
    cache_hits: u64,
    cache_misses: u64,
    cache_expired: u64,
    cache_bypass: u64,
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.cache_hits += self.cache_hits;
        state.cache_misses += self.cache_misses;
        state.cache_expired += self.cache_expired;
        state.cache_bypass += self.cache_bypass;
        let mut abandoned_total = 0u64;
        for i in 0..Priority::COUNT {
            let class = &mut state.classes[i];
            let abandoned = (self.taken[i] - self.completed[i] - self.expired[i]) as u64;
            // Abandoned jobs (worker unwound mid-batch) resolve
            // `Err(Internal)` when the batch buffer drops: the client got
            // an answer, so they complete — with no cache interaction.
            class.completed += self.completed[i] as u64 + abandoned;
            class.expired += self.expired[i] as u64;
            class.in_flight -= self.taken[i];
            class.retried += self.retried[i];
            class.degraded += self.degraded[i];
            class.latency.merge(&self.latency[i]);
            abandoned_total += abandoned;
        }
        state.cache_bypass += abandoned_total;
    }
}

/// Panic payload of an injected engine panic — a private type so tests
/// and the worker can tell injected unwinds from real bugs.
struct InjectedPanic;

/// Panic payload of an injected worker kill (abandons the whole
/// micro-batch, not just one query).
struct InjectedKill;

/// What one execution of a job produced.
enum Executed {
    /// The job ran (possibly after retries, possibly degraded, possibly
    /// to an error). `retries` counts the backoff pauses actually taken.
    Done {
        result: Result<QueryOutcome, TnnError>,
        retries: u64,
    },
    /// The deadline expired before any attempt could finish (`retries`
    /// still counts the backoff pauses taken on the way there).
    Expired { retries: u64 },
}

/// One worker thread: run serving rounds, and if a round unwinds (an
/// injected worker kill, or a real bug that escaped the per-query
/// isolation) respawn **in place** — the same OS thread re-enters the
/// serving loop — up to [`ServeConfig::max_worker_restarts`] restarts
/// pool-wide. Beyond the bound the server assumes a crash loop and fails
/// closed: emergency [`ShutdownMode::Cancel`] so submitters fail fast
/// instead of feeding a dying pool.
fn worker_loop<Q: CandidateQueue>(inner: &Inner, engine: &QueryEngine<Q>) {
    loop {
        if catch_unwind(AssertUnwindSafe(|| worker_rounds(inner, engine))).is_ok() {
            return; // clean shutdown
        }
        // The round unwound. Its batch guard already settled the
        // abandoned jobs (tickets resolved `Err(Internal)` as the batch
        // buffer dropped); all that is left is to count the restart and
        // decide whether this pool is still healthy.
        let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.worker_restarts += 1;
        if state.worker_restarts > u64::from(inner.config.max_worker_restarts) {
            if state.shutdown.is_none() {
                state.shutdown = Some(ShutdownMode::Cancel);
            }
            state.cancel_backlog();
            drop(state);
            inner.work.notify_all();
            inner.space.notify_all();
            return;
        }
    }
}

/// The serving rounds of one worker: wait for jobs, pop a micro-batch of
/// up to [`ServeConfig::batch_window`] in strict priority order, execute
/// it against a thread-local scratch (skipping jobs whose deadline
/// passed while queued, filling the result cache with fresh
/// non-degraded outcomes), resolve each ticket, repeat until shutdown.
/// May unwind mid-batch under an injected worker kill; [`worker_loop`]
/// catches and respawns.
fn worker_rounds<Q: CandidateQueue>(inner: &Inner, engine: &QueryEngine<Q>) {
    let mut scratch = engine.scratch();
    let mut local: Vec<Job> = Vec::with_capacity(inner.config.batch_window);
    'serve: loop {
        {
            let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match state.shutdown {
                    // Cancel already resolved the backlog; nothing left
                    // for workers to do.
                    Some(ShutdownMode::Cancel) => break 'serve,
                    Some(ShutdownMode::Drain) if state.queue.is_empty() => break 'serve,
                    _ => {}
                }
                if !state.queue.is_empty() {
                    break;
                }
                state = inner.work.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            let n = inner.config.batch_window.min(state.queue.len());
            for _ in 0..n {
                // `n` was clamped to the queue length under this same
                // guard, so pop cannot come up dry — but a defect here
                // must stop the batch, not the worker.
                let Some((class, job)) = state.queue.pop() else {
                    break;
                };
                state.classes[class.index()].in_flight += 1;
                local.push(job);
            }
            drop(state);
            // n slots freed — let Block'ed submitters race for them.
            inner.space.notify_all();
        }
        // Tickets resolve as each job finishes; the counters catch up in
        // the guard's single per-batch settlement (a snapshot may
        // briefly see a resolved job still in flight — conservation
        // holds either way).
        let mut guard = BatchGuard {
            inner,
            taken: [0; Priority::COUNT],
            completed: [0; Priority::COUNT],
            expired: [0; Priority::COUNT],
            retried: [0; Priority::COUNT],
            degraded: [0; Priority::COUNT],
            latency: [LatencyHistogram::default(); Priority::COUNT],
            cache_hits: 0,
            cache_misses: 0,
            cache_expired: 0,
            cache_bypass: 0,
        };
        for job in &local {
            guard.taken[job.class.index()] += 1;
        }
        for job in local.drain(..) {
            let class = job.class.index();
            if let Some(faults) = &inner.faults {
                if faults.worker_kill(job.seq) {
                    // Quiet unwind (skips the panic hook): this job and
                    // the rest of the batch resolve `Err(Internal)` via
                    // their drops, the guard books them, and
                    // `worker_loop` respawns the thread.
                    resume_unwind(Box::new(InjectedKill));
                }
            }
            let now = Instant::now();
            // Trace assembly starts at dequeue: admission wait and
            // queue residency are reconstructed from the job's stamps.
            // `None` whenever tracing is off — the untraced path takes
            // no stamps and allocates nothing.
            let mut trace = inner.recorder.as_ref().map(|_| {
                let mut t = QueryTrace::new(job.seq);
                if let Some(enqueued_at) = job.enqueued_at {
                    t.span(
                        SpanKind::AdmissionWait,
                        enqueued_at.saturating_duration_since(job.submitted_at),
                    );
                    t.span(
                        SpanKind::QueueResidency,
                        now.saturating_duration_since(enqueued_at),
                    );
                }
                t
            });
            // Deadline at dequeue: a job that died waiting is discarded,
            // not run — the worker's time goes to viable work.
            if job.deadline.expired(now) {
                job.cell.resolve(Err(TnnError::DeadlineExceeded));
                if job.lead {
                    inner.retire_flight(&job.key);
                }
                guard.expired[class] += 1;
                if let Some(t) = trace.as_mut() {
                    t.errored = true;
                }
                record_trace(inner, trace, job.submitted_at);
                continue;
            }
            // One environment snapshot pins this job's whole execution
            // — cache identity, fault probes, engine run — to a single
            // epoch, even while a concurrent [`Server::swap_env`]
            // publishes the next one mid-batch.
            let env = engine.env();
            // Re-stamp the cache identity if the environment moved
            // since admission: the job probes and fills the cache under
            // the identity of the environment it actually runs on (the
            // admission-time key would miss forever and, worse, write
            // an entry no future submission could ever hit). A re-stamp
            // also clears the refresh flag — the expired entry it
            // described belongs to the dead epoch.
            let (key, mut refresh) = match &job.key {
                Some(key) if !key.matches_env(&env) => (Some(job.query.cache_key(&env)), false),
                other => (other.clone(), job.refresh),
            };
            // Second cache probe, at dequeue: duplicates that were still
            // queued behind their first occurrence (an admission probe
            // runs before any of them executes — batch admission even
            // holds the queue lock across the whole batch) hit here
            // instead of re-running the engine. A hit also skips the
            // fault schedule entirely: a cached answer needs no tune-in.
            let cacheable = match (&key, &inner.cache) {
                (Some(key), Some(cache)) => {
                    let probe_started = trace.as_ref().map(|_| Instant::now());
                    let looked = cache.lookup(key, now);
                    if let (Some(t), Some(started)) = (trace.as_mut(), probe_started) {
                        t.span(
                            SpanKind::CacheProbe,
                            Instant::now().saturating_duration_since(started),
                        );
                    }
                    match looked {
                        Lookup::Hit(outcome) => {
                            guard.cache_hits += 1;
                            if let Some(t) = trace.as_mut() {
                                stamp_counters(t, &outcome);
                            }
                            job.cell.resolve(Ok(outcome));
                            if job.lead {
                                inner.retire_flight(&job.key);
                            }
                            guard.completed[class] += 1;
                            guard.latency[class]
                                .record(Instant::now().saturating_duration_since(job.submitted_at));
                            record_trace(inner, trace, job.submitted_at);
                            continue;
                        }
                        lookup => {
                            refresh = refresh || matches!(lookup, Lookup::Expired);
                            true
                        }
                    }
                }
                // A keyless (or cacheless) job never consults the cache.
                _ => false,
            };
            let run_started = trace.as_ref().map(|_| Instant::now());
            let mut ladder = LadderTimings::default();
            let executed = run_job(inner, engine, &env, &job, &mut scratch, &mut ladder);
            if let (Some(t), Some(started)) = (trace.as_mut(), run_started) {
                let elapsed = Instant::now().saturating_duration_since(started);
                t.span(
                    SpanKind::EngineRun,
                    elapsed
                        .saturating_sub(ladder.backoff)
                        .saturating_sub(ladder.degraded),
                );
                if !ladder.backoff.is_zero() {
                    t.span(SpanKind::RetryBackoff, ladder.backoff);
                }
                if !ladder.degraded.is_zero() {
                    t.span(SpanKind::Degradation, ladder.degraded);
                }
            }
            match executed {
                Executed::Expired { retries } => {
                    guard.retried[class] += retries;
                    job.cell.resolve(Err(TnnError::DeadlineExceeded));
                    if job.lead {
                        inner.retire_flight(&job.key);
                    }
                    guard.expired[class] += 1;
                    if let Some(t) = trace.as_mut() {
                        t.attempts = retries as u32;
                        t.errored = true;
                    }
                    record_trace(inner, trace, job.submitted_at);
                }
                Executed::Done { result, retries } => {
                    guard.retried[class] += retries;
                    let degraded = matches!(&result, Ok(outcome) if outcome.degraded);
                    if degraded {
                        guard.degraded[class] += 1;
                    }
                    // `cacheable` implies a key and a cache were present
                    // at dispatch; matching on all three keeps the
                    // worker panic-free if that coupling ever breaks.
                    // Inserted *before* the leader's cell resolves so a
                    // miss that arrives as the flight retires finds the
                    // fresh entry waiting in the cache.
                    match (&result, &key, &inner.cache) {
                        (Ok(outcome), Some(key), Some(cache)) if cacheable && !degraded => {
                            cache.insert(key.clone(), outcome.clone(), Instant::now());
                            if refresh {
                                guard.cache_expired += 1;
                            } else {
                                guard.cache_misses += 1;
                            }
                        }
                        // Errors and degraded outcomes are never cached:
                        // a transient fault must not mask the exact
                        // answer a later healthy run would produce.
                        _ => guard.cache_bypass += 1,
                    }
                    if let Some(t) = trace.as_mut() {
                        t.attempts = retries as u32 + 1;
                        match &result {
                            Ok(outcome) => stamp_counters(t, outcome),
                            Err(_) => t.errored = true,
                        }
                    }
                    job.cell.resolve(result);
                    if job.lead {
                        inner.retire_flight(&job.key);
                    }
                    guard.completed[class] += 1;
                    guard.latency[class]
                        .record(Instant::now().saturating_duration_since(job.submitted_at));
                    record_trace(inner, trace, job.submitted_at);
                }
            }
        }
        drop(guard);
    }
    engine.recycle(scratch);
}

/// Copies the engine's paper-native cost counters — tune-in pages,
/// node visits, delayed-pruning hits, the `(H−1)(M−1)`-bounded peak
/// queue — and the degradation flag off a delivered outcome into its
/// trace.
fn stamp_counters(trace: &mut QueryTrace, outcome: &QueryOutcome) {
    trace.degraded = outcome.degraded;
    trace.node_visits = outcome.node_visits();
    trace.prune_hits = outcome.prune_hits();
    trace.peak_queue = outcome.peak_queue();
    trace.tune_in = outcome.tune_in();
}

/// Seals `trace` with its end-to-end latency and offers it to the
/// flight recorder. Called after the job's ticket resolved, holding no
/// other lock (the recorder stripe lock is innermost — see
/// `docs/locks.toml`). A no-op when tracing is off.
fn record_trace(inner: &Inner, trace: Option<QueryTrace>, submitted_at: Instant) {
    if let (Some(recorder), Some(mut trace)) = (&inner.recorder, trace) {
        trace.total = Instant::now().saturating_duration_since(submitted_at);
        recorder.record(trace);
    }
}

/// Off-engine wall time [`run_job`] spent in the retry ladder,
/// accumulated for span stamping: backoff sleeps between attempts, and
/// the degraded-fallback run. The engine-run span is the run's elapsed
/// time minus these.
#[derive(Default)]
struct LadderTimings {
    backoff: Duration,
    degraded: Duration,
}

/// Executes one job under the server's fault schedule and retry policy.
///
/// Fault-free servers take a single straight-line engine run — the exact
/// pre-fault hot path, no probes and no ladder. Faulted servers probe
/// every channel tune-in first; a recoverable
/// [`TnnError::ChannelUnavailable`] enters the retry ladder (capped
/// exponential backoff with deterministic jitter, bounded by
/// [`tnn_qos::RetryPolicy::max_attempts`], the per-class
/// [`RetryBudget`], and the job's deadline — a retry never outlives the
/// submitter's deadline), and exhausting the ladder falls through to the
/// configured [`Degradation`].
fn run_job<Q: CandidateQueue>(
    inner: &Inner,
    engine: &QueryEngine<Q>,
    env: &MultiChannelEnv,
    job: &Job,
    scratch: &mut QueryScratch<Q>,
    timings: &mut LadderTimings,
) -> Executed {
    let Some(faults) = &inner.faults else {
        return Executed::Done {
            result: engine.run_on(env, &job.query, scratch),
            retries: 0,
        };
    };
    let policy = inner.config.retry;
    let mut attempt: u32 = 0; // failed tune-ins so far (advances outages)
    let mut retries: u64 = 0;
    loop {
        if job.deadline.expired(Instant::now()) {
            return Executed::Expired { retries };
        }
        match faults.check_tune_in(env, job.seq, attempt) {
            Ok(()) => {
                let inject = faults.engine_panic(job.seq);
                return Executed::Done {
                    result: run_isolated(engine, env, &job.query, scratch, inject),
                    retries,
                };
            }
            Err(err) => {
                attempt += 1;
                let can_retry =
                    attempt < policy.max_attempts.max(1) && inner.budget.try_charge(job.class);
                if !can_retry {
                    let fallback_started = inner.recorder.as_ref().map(|_| Instant::now());
                    let result = degrade(inner, engine, env, job, scratch, err);
                    if let Some(started) = fallback_started {
                        timings.degraded += Instant::now().saturating_duration_since(started);
                    }
                    return Executed::Done { result, retries };
                }
                retries += 1;
                let mut pause = policy.backoff(attempt, job.seq);
                if let Some(left) = job.deadline.remaining(Instant::now()) {
                    pause = pause.min(left);
                }
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                    timings.backoff += pause;
                }
            }
        }
    }
}

/// Runs `query` with the engine panic boundary in place: a panic (an
/// injected one, or a real engine bug) resolves to
/// [`TnnError::Internal`] instead of killing the worker, and the scratch
/// — which may hold arbitrary partial state after an unwind — is
/// replaced before reuse.
fn run_isolated<Q: CandidateQueue>(
    engine: &QueryEngine<Q>,
    env: &MultiChannelEnv,
    query: &Query,
    scratch: &mut QueryScratch<Q>,
    inject_panic: bool,
) -> Result<QueryOutcome, TnnError> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            // Quiet unwind: injected chaos must not spam the panic hook,
            // while real bugs still print a backtrace.
            resume_unwind(Box::new(InjectedPanic));
        }
        engine.run_on(env, query, scratch)
    }));
    match caught {
        Ok(result) => result,
        Err(_) => {
            *scratch = engine.scratch();
            Err(TnnError::Internal)
        }
    }
}

/// The last rung of the ladder: what a job does once retries are
/// exhausted. Fallback runs execute *outside* the fault schedule (they
/// model a replica or a cheaper code path that does not contend for the
/// faulty channels), and any outcome they produce is tagged
/// [`QueryOutcome::degraded`] — delivered to the client, never cached.
fn degrade<Q: CandidateQueue>(
    inner: &Inner,
    engine: &QueryEngine<Q>,
    env: &MultiChannelEnv,
    job: &Job,
    scratch: &mut QueryScratch<Q>,
    err: TnnError,
) -> Result<QueryOutcome, TnnError> {
    let fallback = match inner.config.degradation {
        Degradation::Fail => return Err(err),
        // `Query::algorithm` rewrites only TNN-kind queries; chain and
        // round-trip variants fall back to a replica-style exact rerun.
        Degradation::Approximate => job.query.clone().algorithm(Algorithm::ApproximateTnn),
        Degradation::Replica => job.query.clone(),
    };
    run_isolated(engine, env, &fallback, scratch, false).map(|mut outcome| {
        outcome.degraded = true;
        outcome
    })
}
