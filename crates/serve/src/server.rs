//! The worker-pool server: bounded submission queue, backpressure,
//! micro-batched dispatch, and deterministic shutdown.

use crate::config::{Backpressure, ServeConfig, ShutdownMode};
use crate::ticket::{Ticket, TicketCell};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;
use tnn_broadcast::MultiChannelEnv;
use tnn_core::{ArrivalHeap, CandidateQueue, Query, QueryEngine, TnnError};

/// Admission/completion counters, snapshotted atomically (all counters
/// mutate under one lock, so [`ServeStats::conserved`] holds for *every*
/// snapshot, not just quiescent ones).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Total [`Server::submit`] calls (including refused ones).
    pub submitted: u64,
    /// Queries admitted into the queue (including later-shed ones).
    pub accepted: u64,
    /// Queries refused at the door: queue full under
    /// [`Backpressure::Reject`], or submitted during/after shutdown.
    pub rejected: u64,
    /// Admitted queries evicted by [`Backpressure::Shed`] (their tickets
    /// resolved to [`TnnError::Overloaded`]).
    pub shed: u64,
    /// Admitted queries resolved to [`TnnError::Cancelled`] by a
    /// [`ShutdownMode::Cancel`] shutdown (or the final shutdown sweep).
    pub cancelled: u64,
    /// Queries executed by a worker (successfully or with a recoverable
    /// query error — both count as completions).
    pub completed: u64,
    /// Jobs admitted but not yet picked up, at snapshot time.
    pub queued: usize,
    /// Jobs being executed by a worker, at snapshot time.
    pub in_flight: usize,
}

impl ServeStats {
    /// The ticket-conservation invariant: every submission is accounted
    /// for exactly once. Holds for every snapshot; after a shutdown,
    /// [`ServeStats::queued`] and [`ServeStats::in_flight`] are both 0,
    /// so it reduces to `submitted = rejected + shed + cancelled +
    /// completed`.
    pub fn conserved(&self) -> bool {
        self.submitted == self.accepted + self.rejected
            && self.accepted
                == self.completed
                    + self.shed
                    + self.cancelled
                    + self.queued as u64
                    + self.in_flight as u64
    }
}

/// One admitted query and the cell its ticket reads from.
struct Job {
    query: Query,
    cell: Arc<TicketCell>,
}

impl Drop for Job {
    fn drop(&mut self) {
        // Safety net: a job dropped without resolution (a worker
        // panicking mid-batch unwinds its local jobs through here) must
        // not strand its waiters. For jobs resolved normally this is an
        // idempotent no-op.
        self.cell.resolve(Err(TnnError::Cancelled));
    }
}

/// Mutable queue state — every field mutates under one mutex, which is
/// what makes the [`ServeStats`] conservation invariant snapshot-exact.
struct State {
    queue: VecDeque<Job>,
    shutdown: Option<ShutdownMode>,
    in_flight: usize,
    submitted: u64,
    accepted: u64,
    rejected: u64,
    shed: u64,
    cancelled: u64,
    completed: u64,
}

struct Inner {
    state: Mutex<State>,
    /// Wakes workers when jobs arrive (or shutdown begins).
    work: Condvar,
    /// Wakes `Block`ed submitters when a worker frees queue slots.
    space: Condvar,
    config: ServeConfig,
}

/// A concurrent query-serving front-end over a [`QueryEngine`].
///
/// `N` worker threads each own an O(1)-cloned engine handle and one
/// recycled [`tnn_core::QueryScratch`]; clients submit [`Query`]s through
/// a bounded queue with an explicit [`Backpressure`] policy and get
/// non-blocking [`Ticket`]s back. Concurrency may reorder *completion*,
/// never *answers*: every outcome delivered through a ticket is
/// byte-identical to a direct [`QueryEngine::run`] of the same query
/// (gated by `crates/bench/tests/serve_equivalence.rs`).
///
/// ```
/// use std::sync::Arc;
/// use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
/// use tnn_core::Query;
/// use tnn_geom::Point;
/// use tnn_rtree::{PackingAlgorithm, RTree};
/// use tnn_serve::{ServeConfig, Server, ShutdownMode};
///
/// let params = BroadcastParams::new(64);
/// let tree = |salt: usize| {
///     let pts: Vec<Point> = (0..40)
///         .map(|i| Point::new(((i * 7 + salt) % 53) as f64, ((i * 11 + salt) % 59) as f64))
///         .collect();
///     Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
/// };
/// let env = MultiChannelEnv::new(vec![tree(0), tree(5)], params, &[3, 17]);
///
/// let server = Server::spawn(env, ServeConfig::new().workers(2));
/// let ticket = server.submit(Query::tnn(Point::new(20.0, 20.0))).unwrap();
/// let outcome = ticket.wait().unwrap();
/// assert_eq!(outcome.route.len(), 2);
/// let stats = server.shutdown(ShutdownMode::Drain);
/// assert!(stats.conserved());
/// ```
pub struct Server<Q: CandidateQueue + 'static = ArrivalHeap> {
    inner: Arc<Inner>,
    engine: QueryEngine<Q>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server<ArrivalHeap> {
    /// Spawns a server over `env` with the production heap-ordered queue
    /// backend. See [`Server::spawn_engine`] for the full contract.
    pub fn spawn(env: MultiChannelEnv, config: ServeConfig) -> Self {
        Server::spawn_engine(QueryEngine::new(env), config)
    }
}

impl<Q: CandidateQueue + 'static> Server<Q> {
    /// Spawns `config.workers` worker threads over (clones of) `engine`.
    ///
    /// `config.workers = 0` is allowed and means a *paused* server:
    /// submissions queue up (and backpressure applies) but nothing
    /// executes; [`Server::shutdown`] then resolves the backlog as
    /// cancelled regardless of mode. `queue_capacity` and `batch_window`
    /// are clamped to at least 1.
    pub fn spawn_engine(engine: QueryEngine<Q>, config: ServeConfig) -> Self {
        let config = ServeConfig {
            queue_capacity: config.queue_capacity.max(1),
            batch_window: config.batch_window.max(1),
            ..config
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: None,
                in_flight: 0,
                submitted: 0,
                accepted: 0,
                rejected: 0,
                shed: 0,
                cancelled: 0,
                completed: 0,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            config,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let engine = engine.clone();
                std::thread::Builder::new()
                    .name(format!("tnn-serve-{i}"))
                    .spawn(move || worker_loop(&inner, &engine))
                    .expect("spawn tnn-serve worker thread")
            })
            .collect();
        Server {
            inner,
            engine,
            workers: Mutex::new(workers),
        }
    }

    /// The engine the workers execute against (workers hold O(1) clones
    /// sharing this environment).
    pub fn engine(&self) -> &QueryEngine<Q> {
        &self.engine
    }

    /// The normalized configuration the server runs with.
    pub fn config(&self) -> ServeConfig {
        self.inner.config
    }

    /// Submits one query and returns its completion [`Ticket`].
    ///
    /// # Errors
    /// [`TnnError::Overloaded`] when the queue is full under
    /// [`Backpressure::Reject`]; [`TnnError::Cancelled`] when the server
    /// is shutting down (under [`Backpressure::Block`] this can surface
    /// after a wait). Query-level errors (wrong channel count, empty
    /// channels, non-finite points) are *not* raised here — they travel
    /// through the ticket, exactly as [`QueryEngine::run`] would return
    /// them.
    ///
    /// # Panics
    /// Panics — on the submitting thread, before anything is enqueued —
    /// when per-channel phases or ANN modes do not match the engine's
    /// channel count (the same conditions under which
    /// [`QueryEngine::run`] panics; see [`Query::check_channels`]).
    pub fn submit(&self, query: Query) -> Result<Ticket, TnnError> {
        query.check_channels(self.engine.channels());
        // Stamped before admission: under `Block` the wait for a queue
        // slot is part of the client-observed latency.
        let submitted_at = Instant::now();
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let (state, result) = self.admit(state, query, submitted_at);
        drop(state);
        if result.is_ok() {
            self.inner.work.notify_one();
        }
        result
    }

    /// Submits many queries under one queue-lock acquisition and wakes
    /// the workers once, returning one [`Ticket`] result per query in
    /// order. Workers then drain the backlog in micro-batches of up to
    /// [`ServeConfig::batch_window`] jobs per wake-up, amortizing the
    /// wake/steal overhead that per-query submission would pay `n`
    /// times.
    ///
    /// Per-query admission follows [`Server::submit`] exactly (a
    /// [`Backpressure::Reject`] overflow rejects only the overflowing
    /// queries; [`Backpressure::Block`] may wait mid-batch for workers
    /// to free slots).
    ///
    /// # Panics
    /// As [`Server::submit`] — every query is validated before the first
    /// one is enqueued.
    pub fn submit_batch(
        &self,
        queries: impl IntoIterator<Item = Query>,
    ) -> Vec<Result<Ticket, TnnError>> {
        let queries: Vec<Query> = queries.into_iter().collect();
        for query in &queries {
            query.check_channels(self.engine.channels());
        }
        // One stamp for the whole batch, taken at entry: time spent
        // blocked mid-batch counts toward the latency of every later
        // query in it — the client handed them all over at this instant.
        let submitted_at = Instant::now();
        let mut out = Vec::with_capacity(queries.len());
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut admitted = false;
        for query in queries {
            let (next, result) = self.admit(state, query, submitted_at);
            state = next;
            admitted |= result.is_ok();
            out.push(result);
        }
        drop(state);
        if admitted {
            self.inner.work.notify_all();
        }
        out
    }

    /// Admission under the state lock: applies the backpressure policy,
    /// pushes the job, and mints its ticket. Returns the (possibly
    /// re-acquired, for `Block`) guard so batch submission stays under
    /// one logical critical section.
    fn admit<'a>(
        &self,
        mut state: MutexGuard<'a, State>,
        query: Query,
        submitted_at: Instant,
    ) -> (MutexGuard<'a, State>, Result<Ticket, TnnError>) {
        state.submitted += 1;
        loop {
            if state.shutdown.is_some() {
                state.rejected += 1;
                return (state, Err(TnnError::Cancelled));
            }
            if state.queue.len() < self.inner.config.queue_capacity {
                break;
            }
            match self.inner.config.backpressure {
                Backpressure::Block => {
                    // A full queue means there is work: make sure a
                    // worker is awake to drain it before sleeping on the
                    // space condvar (a batched submitter publishes its
                    // work notification only after the whole batch).
                    self.inner.work.notify_all();
                    state = self
                        .inner
                        .space
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                Backpressure::Reject => {
                    state.rejected += 1;
                    return (state, Err(TnnError::Overloaded));
                }
                Backpressure::Shed => {
                    let victim = state.queue.pop_front().expect("full queue has a front");
                    state.shed += 1;
                    victim.cell.resolve(Err(TnnError::Overloaded));
                    break;
                }
            }
        }
        state.accepted += 1;
        let cell = TicketCell::new();
        state.queue.push_back(Job {
            query,
            cell: Arc::clone(&cell),
        });
        (state, Ok(Ticket { cell, submitted_at }))
    }

    /// A consistent snapshot of the admission/completion counters.
    pub fn stats(&self) -> ServeStats {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        ServeStats {
            submitted: state.submitted,
            accepted: state.accepted,
            rejected: state.rejected,
            shed: state.shed,
            cancelled: state.cancelled,
            completed: state.completed,
            queued: state.queue.len(),
            in_flight: state.in_flight,
        }
    }

    /// Shuts the server down and joins every worker thread.
    ///
    /// Deterministic contract, regardless of mode and timing: when this
    /// returns, **every admitted ticket has resolved** — with its real
    /// outcome ([`ShutdownMode::Drain`], or any job already picked up by
    /// a worker), or with [`TnnError::Cancelled`]
    /// ([`ShutdownMode::Cancel`] backlog, and any backlog left when no
    /// worker survives to drain it, e.g. on a paused server). Concurrent
    /// `submit` calls from other threads fail with
    /// [`TnnError::Cancelled`] from the moment shutdown begins.
    ///
    /// Idempotent: later calls (including the implicit drain in `Drop`)
    /// join nothing and return the final stats; the first mode wins.
    pub fn shutdown(&self, mode: ShutdownMode) -> ServeStats {
        // Hold the handle lock across begin + join + sweep so a
        // concurrent shutdown call returns only after the first one has
        // fully quiesced the server.
        let mut handles = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        self.begin_shutdown(mode);
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
        // Final sweep: with zero (or crashed) workers the backlog is
        // still sitting in the queue; no ticket may outlive shutdown
        // unresolved.
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        while let Some(job) = state.queue.pop_front() {
            state.cancelled += 1;
            job.cell.resolve(Err(TnnError::Cancelled));
        }
        drop(state);
        drop(handles);
        self.stats()
    }

    fn begin_shutdown(&self, mode: ShutdownMode) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.shutdown.is_none() {
            state.shutdown = Some(mode);
        }
        if state.shutdown == Some(ShutdownMode::Cancel) {
            // Resolve the backlog here, not in the workers: every queued
            // ticket has resolved by the time `shutdown` returns even if
            // all workers are busy mid-batch.
            while let Some(job) = state.queue.pop_front() {
                state.cancelled += 1;
                job.cell.resolve(Err(TnnError::Cancelled));
            }
        }
        drop(state);
        self.inner.work.notify_all();
        self.inner.space.notify_all();
    }
}

impl<Q: CandidateQueue + 'static> Drop for Server<Q> {
    fn drop(&mut self) {
        let live = !self
            .workers
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty();
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let pending = !state.queue.is_empty();
        drop(state);
        if live || pending {
            self.shutdown(ShutdownMode::Drain);
        }
    }
}

/// Accounting guard for one popped micro-batch. The normal path settles
/// `completed == taken` in one lock per batch (not per job); if the
/// worker unwinds mid-batch (an engine panic would be an internal bug,
/// but must not corrupt the server), the guard's `Drop` books the
/// abandoned jobs as cancelled — keeping [`ServeStats::conserved`] true
/// and `in_flight` exact — and **fails the server closed**: with a dead
/// worker, stranding clients on a queue nobody drains is worse than
/// refusing them.
struct BatchGuard<'a> {
    inner: &'a Inner,
    taken: usize,
    completed: u64,
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.completed += self.completed;
        state.in_flight -= self.taken;
        let abandoned = self.taken as u64 - self.completed;
        if abandoned > 0 {
            // Unwinding: the un-run jobs resolve `Cancelled` through
            // `Job::drop` right after this; account for them and trip an
            // emergency cancel-shutdown so submitters fail fast instead
            // of blocking on a worker that no longer exists.
            state.cancelled += abandoned;
            if state.shutdown.is_none() {
                state.shutdown = Some(ShutdownMode::Cancel);
            }
            while let Some(job) = state.queue.pop_front() {
                state.cancelled += 1;
                job.cell.resolve(Err(TnnError::Cancelled));
            }
            drop(state);
            self.inner.work.notify_all();
            self.inner.space.notify_all();
        }
    }
}

/// One worker: wait for jobs, pop a micro-batch of up to
/// [`ServeConfig::batch_window`], execute it against a thread-local
/// scratch, resolve each ticket, repeat until shutdown.
fn worker_loop<Q: CandidateQueue>(inner: &Inner, engine: &QueryEngine<Q>) {
    let mut scratch = engine.scratch();
    let mut local: Vec<Job> = Vec::with_capacity(inner.config.batch_window);
    'serve: loop {
        {
            let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match state.shutdown {
                    // Cancel already resolved the backlog; nothing left
                    // for workers to do.
                    Some(ShutdownMode::Cancel) => break 'serve,
                    Some(ShutdownMode::Drain) if state.queue.is_empty() => break 'serve,
                    _ => {}
                }
                if !state.queue.is_empty() {
                    break;
                }
                state = inner.work.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            let n = inner.config.batch_window.min(state.queue.len());
            local.extend(state.queue.drain(..n));
            state.in_flight += n;
            drop(state);
            // n slots freed — let Block'ed submitters race for them.
            inner.space.notify_all();
        }
        // Tickets resolve as each job finishes; the counters catch up in
        // the guard's single per-batch settlement (a snapshot may
        // briefly see a resolved job still in flight — conservation
        // holds either way).
        let mut guard = BatchGuard {
            inner,
            taken: local.len(),
            completed: 0,
        };
        for job in local.drain(..) {
            let result = engine.run_with(&job.query, &mut scratch);
            job.cell.resolve(result);
            guard.completed += 1;
        }
        drop(guard);
    }
    engine.recycle(scratch);
}
