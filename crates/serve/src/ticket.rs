//! Completion handles: [`Ticket`] and its shared resolution cell.

// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tnn_core::{QueryOutcome, TnnError};

/// The shared slot a worker (or the backpressure/shutdown machinery)
/// resolves exactly once; every [`Ticket`] accessor reads from it.
#[derive(Debug)]
pub(crate) struct TicketCell {
    state: Mutex<TicketState>,
    done: Condvar,
}

#[derive(Debug)]
enum TicketState {
    Pending,
    Done {
        result: Result<QueryOutcome, TnnError>,
        at: Instant,
    },
}

impl TicketCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketCell {
            state: Mutex::new(TicketState::Pending),
            done: Condvar::new(),
        })
    }

    /// Resolves the ticket. The queue discipline hands each admitted job
    /// to exactly one resolver (a worker, the shedder, or the canceller),
    /// so a second call can only happen on a logic error — it is ignored
    /// rather than clobbering the outcome waiters already observed.
    pub(crate) fn resolve(&self, result: Result<QueryOutcome, TnnError>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(*state, TicketState::Pending) {
            *state = TicketState::Done {
                result,
                at: Instant::now(),
            };
            self.done.notify_all();
        }
    }

    /// `true` once [`TicketCell::resolve`] has landed — the singleflight
    /// liveness probe: a resolved leader cell marks its flight dead, so
    /// new arrivals lead a fresh run instead of joining a finished one.
    pub(crate) fn is_resolved(&self) -> bool {
        matches!(
            &*self.state.lock().unwrap_or_else(|e| e.into_inner()),
            TicketState::Done { .. }
        )
    }
}

/// A non-blocking completion handle for one submitted [`tnn_core::Query`].
///
/// A ticket never owns its queue slot: the slot is freed the moment a
/// worker pops the job, so dropping a ticket without waiting neither
/// leaks capacity nor cancels the query (the outcome is simply computed
/// and discarded).
///
/// All accessors are **idempotent**: [`Ticket::wait`] may be called any
/// number of times, and [`Ticket::poll`] after a `wait` returns the same
/// cached outcome — it never hangs, panics, or changes the answer.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) cell: Arc<TicketCell>,
    pub(crate) submitted_at: Instant,
}

impl Ticket {
    /// The resolved outcome, or `None` while the query is still queued
    /// or executing. Never blocks.
    pub fn poll(&self) -> Option<Result<QueryOutcome, TnnError>> {
        let state = self.cell.state.lock().unwrap_or_else(|e| e.into_inner());
        match &*state {
            TicketState::Pending => None,
            TicketState::Done { result, .. } => Some(result.clone()),
        }
    }

    /// Blocks until the query resolves and returns the outcome. Calling
    /// `wait` again (or [`Ticket::poll`] afterwards) returns the same
    /// cached outcome immediately.
    pub fn wait(&self) -> Result<QueryOutcome, TnnError> {
        let mut state = self.cell.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let TicketState::Done { result, .. } = &*state {
                return result.clone();
            }
            state = self
                .cell
                .done
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// [`Ticket::wait`] with a deadline: `None` when `timeout` elapses
    /// first (the ticket stays valid and can be waited again).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<QueryOutcome, TnnError>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.cell.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let TicketState::Done { result, .. } = &*state {
                return Some(result.clone());
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            state = self
                .cell
                .done
                .wait_timeout(state, left)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// `true` once the query has resolved (completed, been shed, or been
    /// cancelled). Never blocks.
    pub fn is_done(&self) -> bool {
        matches!(
            &*self.cell.state.lock().unwrap_or_else(|e| e.into_inner()),
            TicketState::Done { .. }
        )
    }

    /// Wall-clock time from submission to resolution, stamped by the
    /// resolver at the moment of completion (so it is exact even when
    /// the caller waits much later). `None` while pending.
    pub fn latency(&self) -> Option<Duration> {
        let state = self.cell.state.lock().unwrap_or_else(|e| e.into_inner());
        match &*state {
            TicketState::Pending => None,
            TicketState::Done { at, .. } => Some(at.saturating_duration_since(self.submitted_at)),
        }
    }
}
