//! Server tuning knobs: [`ServeConfig`], [`Backpressure`],
//! [`ShutdownMode`], and [`Degradation`].

use tnn_qos::{CacheConfig, Priority, RetryPolicy, ShedDiscipline};
use tnn_trace::TraceConfig;

/// What [`crate::Server::submit`] does when the submission lane of the
/// query's priority class is at capacity.
///
/// The trade-off mirrors the admission/contention choices of the
/// multi-access serving literature: `Block` pushes the queueing delay
/// back into the client (closed-loop behaviour), `Reject` keeps the
/// client non-blocking and makes overload explicit, and `Shed` favours
/// fresh queries over stale ones when answers lose value with age.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the submitting thread until a worker frees a slot in the
    /// class's lane (or the server shuts down, or the query's own
    /// deadline passes). Submission never fails with
    /// [`tnn_core::TnnError::Overloaded`].
    Block,
    /// Refuse the new query immediately: `submit` returns
    /// [`tnn_core::TnnError::Overloaded`] and nothing is enqueued.
    Reject,
    /// Admit the new query by evicting a still-queued one from the same
    /// class. Which one is governed by [`ServeConfig::shed`]: under the
    /// default [`ShedDiscipline::ExpiredFirst`] the oldest *expired*
    /// query goes first (its ticket resolves
    /// [`tnn_core::TnnError::DeadlineExceeded`]), and only a lane with
    /// no expired work sacrifices its oldest (ticket resolves
    /// [`tnn_core::TnnError::Overloaded`]). Submission itself never
    /// fails.
    Shed,
}

/// How [`crate::Server::shutdown`] treats queued-but-unstarted work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Workers finish every queued job before exiting; every admitted
    /// ticket resolves with its real outcome.
    Drain,
    /// Queued jobs resolve immediately with
    /// [`tnn_core::TnnError::Cancelled`]; jobs already picked up by a
    /// worker run to completion. Deterministic: when `shutdown` returns,
    /// every admitted ticket has resolved one way or the other.
    Cancel,
}

/// What a worker does when the retry ladder gives up on a query whose
/// channels stay unreachable ([`tnn_core::TnnError::ChannelUnavailable`]
/// after [`RetryPolicy::max_attempts`], or an exhausted per-class retry
/// budget).
///
/// Both fallback modes run outside the fault schedule (they model tuning
/// to a replica carrier the plan does not cover), tag the outcome
/// [`tnn_core::QueryOutcome::degraded`], and **never** store it in the
/// result cache: a degraded answer must not be replayed under a
/// full-fidelity [`tnn_core::QueryKey`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Degradation {
    /// No fallback: the ticket resolves with the final
    /// [`tnn_core::TnnError::ChannelUnavailable`]. The default — opting
    /// into degraded answers is an explicit choice.
    #[default]
    Fail,
    /// Fall back to [`tnn_core::Algorithm::ApproximateTnn`] for
    /// TNN-kind queries (the paper's estimate-free pipeline: cheapest
    /// possible tune-in, may fail on skewed data); other query kinds
    /// have no approximate variant and fall back replica-style.
    Approximate,
    /// Re-run the query at full fidelity against a replica carrier:
    /// same bytes as the primary would have produced, tagged degraded
    /// because it was not served by the scheduled channels.
    Replica,
}

/// Configuration for [`crate::Server::spawn`].
///
/// ```
/// use tnn_qos::{CacheConfig, Priority, ShedDiscipline};
/// use tnn_serve::{Backpressure, ServeConfig};
/// let cfg = ServeConfig::new()
///     .workers(4)
///     .queue_capacity(256)
///     .class_capacity(Priority::Background, 32)
///     .backpressure(Backpressure::Shed)
///     .shed_discipline(ShedDiscipline::ExpiredFirst)
///     .cache(CacheConfig::new().capacity(8192))
///     .batch_window(32);
/// assert_eq!(cfg.workers, 4);
/// assert_eq!(cfg.class_capacity[Priority::Background.index()], 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads, each owning a cloned engine handle and one
    /// recycled [`tnn_core::QueryScratch`]. `0` is allowed and means a
    /// *paused* server: submissions queue (and backpressure applies)
    /// but nothing executes until shutdown resolves the backlog as
    /// cancelled — see [`crate::Server::spawn_engine`].
    pub workers: usize,
    /// Default bound of each priority class's submission lane (jobs
    /// admitted but not yet picked up). Clamped to at least 1. The
    /// total backlog is bounded by the *sum* of the per-class bounds.
    pub queue_capacity: usize,
    /// Per-class lane bounds, indexed by [`Priority::index`]; `0` (the
    /// default) means "inherit [`ServeConfig::queue_capacity`]". A
    /// tight `Background` bound keeps best-effort floods from holding
    /// memory that interactive traffic will never have to wait on.
    pub class_capacity: [usize; Priority::COUNT],
    /// Policy when the class's lane is full.
    pub backpressure: Backpressure,
    /// Victim selection for [`Backpressure::Shed`] (default: evict
    /// expired work before sacrificing anything still viable).
    pub shed: ShedDiscipline,
    /// The result cache over `(query, channel count)` keys
    /// ([`tnn_core::QueryKey`]). Enabled by default — hits are
    /// byte-identical to fresh engine runs (the engine is
    /// deterministic), so the cache is invisible except in latency and
    /// the [`crate::ServeStats`] cache counters. Disable it
    /// ([`CacheConfig::disabled`]) for honest throughput measurements
    /// of repeated workloads.
    pub cache: CacheConfig,
    /// Upper bound on jobs one worker pops per wake-up. Values above 1
    /// amortize the queue lock and condvar traffic over micro-batches
    /// under load while leaving latency untouched when the queue is
    /// short (a worker never waits to fill a batch). Clamped to at
    /// least 1.
    pub batch_window: usize,
    /// How workers pace retries of recoverable tune-in failures
    /// ([`tnn_core::TnnError::ChannelUnavailable`]). Retries never
    /// outlive the submitter's deadline: the ladder re-checks it before
    /// every attempt and bounds each backoff sleep by the time left.
    pub retry: RetryPolicy,
    /// The fallback once the retry ladder gives up (default:
    /// [`Degradation::Fail`]).
    pub degradation: Degradation,
    /// Upper bound on worker respawns, cumulative across the pool: a
    /// worker whose serving round panics (an injected kill, or a bug
    /// outside the per-job isolation) restarts in place until the pool
    /// has spent this many restarts, after which the next death fails
    /// the server closed (emergency cancel) — endless respawn would
    /// mask a crash loop.
    pub max_worker_restarts: u32,
    /// Per-class pools of retry attempts, indexed by
    /// [`Priority::index`]; `0` (the default) means unlimited. A bounded
    /// Background pool keeps a storm of failing best-effort queries
    /// from occupying workers with backoff sleeps that Interactive
    /// traffic then queues behind.
    pub retry_budget: [u64; Priority::COUNT],
    /// Coalesce concurrent identical cache misses into one engine run
    /// (singleflight): the first miss of a key leads and executes, and
    /// while it is in flight every further submission of the same key
    /// joins its ticket instead of queueing a duplicate job
    /// ([`crate::ServeStats::cache_coalesced`]). Off by default; takes
    /// effect only when the result cache is active (queries need cache
    /// identities to coalesce by) and the server runs without a fault
    /// plan (followers share the leader's outcome byte-for-byte, which
    /// injected faults and degraded fallbacks would break).
    pub singleflight: bool,
    /// Cross-layer query tracing ([`TraceConfig::Off`] by default).
    /// When on, workers stamp per-query phase spans (admission wait,
    /// queue residency, cache probe, engine run, retry backoff) and a
    /// bounded [`tnn_trace::FlightRecorder`] retains the slowest and
    /// every degraded-or-errored [`tnn_trace::QueryTrace`]
    /// ([`crate::Server::recorder`]). Tracing observes and never
    /// steers: delivered outcomes and [`crate::ServeStats`] counters
    /// are byte-identical either way (gated by
    /// `crates/bench/tests/trace_equivalence.rs`).
    pub trace: TraceConfig,
}

impl ServeConfig {
    /// The default configuration: one worker per available CPU, a
    /// 1024-slot lane per class, [`Backpressure::Block`],
    /// expired-first shedding, the default result cache, and a 16-job
    /// batch window.
    pub fn new() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 1024,
            class_capacity: [0; Priority::COUNT],
            backpressure: Backpressure::Block,
            shed: ShedDiscipline::ExpiredFirst,
            cache: CacheConfig::new(),
            batch_window: 16,
            retry: RetryPolicy::new(),
            degradation: Degradation::Fail,
            max_worker_restarts: 32,
            retry_budget: [0; Priority::COUNT],
            singleflight: false,
            trace: TraceConfig::Off,
        }
    }

    /// Sets the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the default per-class submission-lane bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the lane bound of one priority class (`0` restores
    /// "inherit [`ServeConfig::queue_capacity`]").
    pub fn class_capacity(mut self, class: Priority, capacity: usize) -> Self {
        self.class_capacity[class.index()] = capacity;
        self
    }

    /// Sets the full-lane policy.
    pub fn backpressure(mut self, policy: Backpressure) -> Self {
        self.backpressure = policy;
        self
    }

    /// Sets the [`Backpressure::Shed`] victim discipline.
    pub fn shed_discipline(mut self, shed: ShedDiscipline) -> Self {
        self.shed = shed;
        self
    }

    /// Configures (or disables) the result cache.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the per-wake-up micro-batch bound.
    pub fn batch_window(mut self, window: usize) -> Self {
        self.batch_window = window;
        self
    }

    /// Sets the retry pacing policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Sets the exhausted-retries fallback.
    pub fn degradation(mut self, mode: Degradation) -> Self {
        self.degradation = mode;
        self
    }

    /// Sets the pool-wide worker-respawn bound.
    pub fn max_worker_restarts(mut self, restarts: u32) -> Self {
        self.max_worker_restarts = restarts;
        self
    }

    /// Bounds one class's pool of retry attempts (`0` restores
    /// unlimited).
    pub fn retry_budget(mut self, class: Priority, attempts: u64) -> Self {
        self.retry_budget[class.index()] = attempts;
        self
    }

    /// Enables (or disables) singleflight coalescing of concurrent
    /// identical cache misses.
    pub fn singleflight(mut self, enabled: bool) -> Self {
        self.singleflight = enabled;
        self
    }

    /// Sets the tracing mode ([`TraceConfig::on`] for the default
    /// flight-recorder retention, or `TraceConfig::On` with explicit
    /// [`tnn_trace::RecorderConfig`] bounds).
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// The effective lane bound of `class` after inheritance and
    /// clamping — what the server actually enforces.
    pub fn lane_capacity(&self, class: Priority) -> usize {
        let cap = self.class_capacity[class.index()];
        if cap == 0 {
            self.queue_capacity.max(1)
        } else {
            cap
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let cfg = ServeConfig::default()
            .workers(3)
            .queue_capacity(7)
            .backpressure(Backpressure::Shed)
            .shed_discipline(ShedDiscipline::OldestFirst)
            .cache(CacheConfig::disabled())
            .batch_window(5)
            .retry(RetryPolicy::NONE.max_attempts(9))
            .degradation(Degradation::Approximate)
            .max_worker_restarts(2)
            .retry_budget(Priority::Background, 64)
            .singleflight(true)
            .trace(TraceConfig::on());
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue_capacity, 7);
        assert_eq!(cfg.backpressure, Backpressure::Shed);
        assert_eq!(cfg.shed, ShedDiscipline::OldestFirst);
        assert!(!cfg.cache.enabled);
        assert_eq!(cfg.batch_window, 5);
        assert_eq!(cfg.retry.max_attempts, 9);
        assert_eq!(cfg.degradation, Degradation::Approximate);
        assert_eq!(cfg.max_worker_restarts, 2);
        assert_eq!(cfg.retry_budget[Priority::Background.index()], 64);
        assert!(cfg.singleflight);
        assert!(cfg.trace.is_on());
        assert!(ServeConfig::new().workers >= 1);
        assert_eq!(ServeConfig::new().backpressure, Backpressure::Block);
        assert_eq!(ServeConfig::new().shed, ShedDiscipline::ExpiredFirst);
        assert!(ServeConfig::new().cache.enabled);
        // Fault-free defaults: no degradation, unlimited retry pools.
        assert_eq!(ServeConfig::new().degradation, Degradation::Fail);
        assert_eq!(ServeConfig::new().retry_budget, [0; Priority::COUNT]);
        assert!(ServeConfig::new().retry.max_attempts > 1);
        // Coalescing is opt-in: plain spawns keep one-job-per-submission.
        assert!(!ServeConfig::new().singleflight);
        // Tracing is opt-in: plain spawns keep the exact untraced path.
        assert!(!ServeConfig::new().trace.is_on());
    }

    #[test]
    fn class_capacities_inherit_the_queue_bound() {
        let cfg = ServeConfig::new()
            .queue_capacity(10)
            .class_capacity(Priority::Background, 3);
        assert_eq!(cfg.lane_capacity(Priority::Interactive), 10);
        assert_eq!(cfg.lane_capacity(Priority::Batch), 10);
        assert_eq!(cfg.lane_capacity(Priority::Background), 3);
        // Degenerate bounds clamp to one slot.
        assert_eq!(
            ServeConfig::new()
                .queue_capacity(0)
                .lane_capacity(Priority::Batch),
            1
        );
    }
}
