//! Server tuning knobs: [`ServeConfig`], [`Backpressure`], and
//! [`ShutdownMode`].

/// What [`crate::Server::submit`] does when the submission queue is at
/// capacity.
///
/// The trade-off mirrors the admission/contention choices of the
/// multi-access serving literature: `Block` pushes the queueing delay
/// back into the client (closed-loop behaviour), `Reject` keeps the
/// client non-blocking and makes overload explicit, and `Shed` favours
/// fresh queries over stale ones when answers lose value with age.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the submitting thread until a worker frees a slot (or the
    /// server shuts down). Submission never fails with
    /// [`tnn_core::TnnError::Overloaded`].
    Block,
    /// Refuse the new query immediately: `submit` returns
    /// [`tnn_core::TnnError::Overloaded`] and nothing is enqueued.
    Reject,
    /// Admit the new query by evicting the **oldest** still-queued one,
    /// whose ticket resolves to [`tnn_core::TnnError::Overloaded`].
    /// Submission itself never fails.
    Shed,
}

/// How [`crate::Server::shutdown`] treats queued-but-unstarted work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Workers finish every queued job before exiting; every admitted
    /// ticket resolves with its real outcome.
    Drain,
    /// Queued jobs resolve immediately with
    /// [`tnn_core::TnnError::Cancelled`]; jobs already picked up by a
    /// worker run to completion. Deterministic: when `shutdown` returns,
    /// every admitted ticket has resolved one way or the other.
    Cancel,
}

/// Configuration for [`crate::Server::spawn`].
///
/// ```
/// use tnn_serve::{Backpressure, ServeConfig};
/// let cfg = ServeConfig::new()
///     .workers(4)
///     .queue_capacity(256)
///     .backpressure(Backpressure::Reject)
///     .batch_window(32);
/// assert_eq!(cfg.workers, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads, each owning a cloned engine handle and one
    /// recycled [`tnn_core::QueryScratch`]. `0` is allowed and means a
    /// *paused* server: submissions queue (and backpressure applies)
    /// but nothing executes until shutdown resolves the backlog as
    /// cancelled — see [`crate::Server::spawn_engine`].
    pub workers: usize,
    /// Bound of the submission queue (jobs admitted but not yet picked
    /// up). Clamped to at least 1.
    pub queue_capacity: usize,
    /// Policy when the queue is full.
    pub backpressure: Backpressure,
    /// Upper bound on jobs one worker pops per wake-up. Values above 1
    /// amortize the queue lock and condvar traffic over micro-batches
    /// under load while leaving latency untouched when the queue is
    /// short (a worker never waits to fill a batch). Clamped to at
    /// least 1.
    pub batch_window: usize,
}

impl ServeConfig {
    /// The default configuration: one worker per available CPU, a
    /// 1024-slot queue, [`Backpressure::Block`], and a 16-job batch
    /// window.
    pub fn new() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 1024,
            backpressure: Backpressure::Block,
            batch_window: 16,
        }
    }

    /// Sets the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the submission-queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the full-queue policy.
    pub fn backpressure(mut self, policy: Backpressure) -> Self {
        self.backpressure = policy;
        self
    }

    /// Sets the per-wake-up micro-batch bound.
    pub fn batch_window(mut self, window: usize) -> Self {
        self.batch_window = window;
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let cfg = ServeConfig::default()
            .workers(3)
            .queue_capacity(7)
            .backpressure(Backpressure::Shed)
            .batch_window(5);
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue_capacity, 7);
        assert_eq!(cfg.backpressure, Backpressure::Shed);
        assert_eq!(cfg.batch_window, 5);
        assert!(ServeConfig::new().workers >= 1);
        assert_eq!(ServeConfig::new().backpressure, Backpressure::Block);
    }
}
