//! Behavioural tests for the QoS layer: deadline enforcement at all
//! three points (admission, shed, dequeue), the expiry-aware Shed
//! redesign, per-class lanes and stats, and the result-cache lifecycle.

// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::{Duration, Instant};
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{Query, TnnError};
use tnn_geom::{Point, Rect};
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{
    Backpressure, CacheConfig, Priority, Qos, ServeConfig, Server, ShedDiscipline, ShutdownMode,
};

fn env(k: usize) -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let trees: Vec<Arc<RTree>> = (0..k)
        .map(|i| {
            let pts = tnn_datasets::uniform_points(150 + 20 * i, &region, 0x0D15EA5E + i as u64);
            Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    let phases: Vec<u64> = (0..k as u64).map(|i| i * 5 + 1).collect();
    MultiChannelEnv::new(trees, params, &phases)
}

fn points(n: usize) -> Vec<Point> {
    tnn_datasets::uniform_points(n, &Rect::from_coords(0.0, 0.0, 1000.0, 1000.0), 0xFACADE)
}

/// A deadline already in the past resolves `DeadlineExceeded` at
/// admission — accepted, never queued, never run.
#[test]
fn pre_expired_deadline_resolves_at_admission() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(1));
    let qos = Qos::interactive().deadline_at(Instant::now() - Duration::from_millis(1));
    let ticket = server.submit_with(Query::tnn(points(1)[0]), qos).unwrap();
    // Resolved synchronously: poll (never wait) must already see it.
    assert_eq!(
        ticket.poll().expect("dead-on-arrival resolves in submit"),
        Err(TnnError::DeadlineExceeded)
    );
    let latency = ticket.latency().expect("resolved tickets have a latency");
    assert!(latency < Duration::from_secs(1), "no worker round-trip");
    let stats = server.stats();
    let interactive = stats.class(Priority::Interactive);
    assert_eq!((interactive.accepted, interactive.expired), (1, 1));
    assert_eq!(interactive.completed, 0);
    assert!(stats.conserved());
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.expired, 1);
    assert!(stats.conserved());
}

/// A job whose deadline passes while it waits in the queue is discarded
/// at dequeue: the worker never runs it, and its ticket resolves
/// `DeadlineExceeded`.
#[test]
fn deadline_expiring_in_queue_is_discarded_at_dequeue() {
    let server = Server::spawn(
        env(2),
        ServeConfig::new()
            .workers(1)
            .cache(CacheConfig::disabled())
            .batch_window(4),
    );
    // A wall of real work keeps the single worker busy for far longer
    // than the stamped deadline...
    let wall = points(1000);
    let wall_tickets = server.submit_batch(wall.into_iter().map(Query::tnn));
    // ...so this query reliably expires while queued behind it.
    let doomed = server
        .submit_with(
            Query::tnn(points(1)[0]),
            Qos::new().deadline_in(Duration::from_millis(1)),
        )
        .unwrap();
    assert_eq!(doomed.wait(), Err(TnnError::DeadlineExceeded));
    for ticket in wall_tickets {
        assert!(ticket.unwrap().wait().is_ok(), "the wall itself completes");
    }
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 1000);
    assert!(stats.conserved());
}

/// A deadline bounds a `Block` wait: on a paused server with a full
/// lane — where no space wake-up will ever come — the submission still
/// resolves `DeadlineExceeded` when its deadline passes, instead of
/// blocking the submitter forever.
#[test]
fn deadline_bounds_a_block_wait_on_a_wedged_server() {
    let server = Server::spawn(
        env(2),
        ServeConfig::new()
            .workers(0) // paused: the lane can never drain
            .queue_capacity(1)
            .backpressure(Backpressure::Block),
    );
    let pts = points(2);
    let filler = server.submit(Query::tnn(pts[0])).unwrap();
    let t0 = Instant::now();
    let ticket = server
        .submit_with(
            Query::tnn(pts[1]),
            Qos::new().deadline_in(Duration::from_millis(30)),
        )
        .expect("an expired deadline travels through the ticket");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "the blocked submit returned via its deadline, not a hang"
    );
    assert_eq!(ticket.wait(), Err(TnnError::DeadlineExceeded));
    assert!(!filler.is_done());
    let stats = server.stats();
    assert_eq!((stats.expired, stats.queued), (1, 1));
    assert!(stats.conserved());
    let stats = server.shutdown(ShutdownMode::Cancel);
    assert_eq!(stats.cancelled, 1);
    assert!(stats.conserved());
}

/// The Shed redesign's regression gate: an unexpired ticket survives a
/// storm of expired ones — expiry-aware shedding evicts dead work first
/// and only sacrifices viable queries when no expired victim exists.
#[test]
fn expiry_aware_shed_spares_viable_work_under_an_expired_storm() {
    let server = Server::spawn(
        env(2),
        ServeConfig::new()
            .workers(0) // paused: queue occupancy is deterministic
            .queue_capacity(3)
            .backpressure(Backpressure::Shed)
            .shed_discipline(ShedDiscipline::ExpiredFirst),
    );
    let pts = points(6);
    // The oldest queued query is viable for another 10 seconds...
    let survivor = server
        .submit_with(
            Query::tnn(pts[0]),
            Qos::new().deadline_in(Duration::from_secs(10)),
        )
        .unwrap();
    // ...while the two behind it die in 20 ms.
    let doomed: Vec<_> = (1..3)
        .map(|i| {
            server
                .submit_with(
                    Query::tnn(pts[i]),
                    Qos::new().deadline_in(Duration::from_millis(20)),
                )
                .unwrap()
        })
        .collect();
    std::thread::sleep(Duration::from_millis(40));
    // The storm: two overflowing submissions, each of which must evict
    // an expired victim — never the older-but-viable survivor.
    let fresh: Vec<_> = (3..5)
        .map(|i| server.submit(Query::tnn(pts[i])).unwrap())
        .collect();
    for ticket in &doomed {
        assert_eq!(
            ticket.poll().expect("shed victims resolve immediately"),
            Err(TnnError::DeadlineExceeded)
        );
    }
    assert!(!survivor.is_done(), "viable work outlives the storm");
    let stats = server.stats();
    assert_eq!((stats.expired, stats.shed, stats.queued), (2, 0, 3));
    assert!(stats.conserved());
    // Only once no expired victim exists does shedding fall back to the
    // oldest viable query.
    let last = server.submit(Query::tnn(pts[5])).unwrap();
    assert_eq!(survivor.wait(), Err(TnnError::Overloaded));
    let stats = server.shutdown(ShutdownMode::Cancel);
    assert_eq!((stats.expired, stats.shed, stats.cancelled), (2, 1, 3));
    assert!(stats.conserved());
    for ticket in fresh.iter().chain([&last]) {
        assert_eq!(ticket.wait(), Err(TnnError::Cancelled));
    }
}

/// The pre-redesign behaviour, kept as an explicit discipline: oldest-
/// first shedding sacrifices the viable front query while expired work
/// keeps its slot (this is exactly why `ExpiredFirst` is the default).
#[test]
fn oldest_first_shed_sacrifices_viable_work() {
    let server = Server::spawn(
        env(2),
        ServeConfig::new()
            .workers(0)
            .queue_capacity(2)
            .backpressure(Backpressure::Shed)
            .shed_discipline(ShedDiscipline::OldestFirst),
    );
    let pts = points(4);
    let viable = server
        .submit_with(
            Query::tnn(pts[0]),
            Qos::new().deadline_in(Duration::from_secs(10)),
        )
        .unwrap();
    let expired = server
        .submit_with(
            Query::tnn(pts[1]),
            Qos::new().deadline_in(Duration::from_millis(10)),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(25));
    // Overflow: the oldest (viable!) query is evicted as plain overload.
    let _t3 = server.submit(Query::tnn(pts[2])).unwrap();
    assert_eq!(viable.wait(), Err(TnnError::Overloaded));
    assert!(!expired.is_done(), "the dead query kept its slot");
    // The next overflow takes the expired one — and reports it honestly
    // as a deadline miss, not overload.
    let _t4 = server.submit(Query::tnn(pts[3])).unwrap();
    assert_eq!(expired.wait(), Err(TnnError::DeadlineExceeded));
    let stats = server.shutdown(ShutdownMode::Cancel);
    assert_eq!((stats.shed, stats.expired, stats.cancelled), (1, 1, 2));
    assert!(stats.conserved());
}

/// Lanes are bounded per class: a background flood fills only its own
/// lane, and interactive admissions are untouched by it.
#[test]
fn per_class_lanes_have_independent_capacity() {
    let server = Server::spawn(
        env(2),
        ServeConfig::new()
            .workers(0)
            .queue_capacity(4)
            .class_capacity(Priority::Background, 1)
            .backpressure(Backpressure::Reject),
    );
    let pts = points(8);
    assert!(server
        .submit_with(Query::tnn(pts[0]), Qos::background())
        .is_ok());
    assert_eq!(
        server
            .submit_with(Query::tnn(pts[1]), Qos::background())
            .unwrap_err(),
        TnnError::Overloaded,
        "background lane holds one job"
    );
    for p in &pts[2..6] {
        assert!(
            server
                .submit_with(Query::tnn(*p), Qos::interactive())
                .is_ok(),
            "the flooded background lane does not tax interactive admission"
        );
    }
    assert_eq!(
        server
            .submit_with(Query::tnn(pts[6]), Qos::interactive())
            .unwrap_err(),
        TnnError::Overloaded
    );
    let stats = server.stats();
    let bg = stats.class(Priority::Background);
    let fg = stats.class(Priority::Interactive);
    assert_eq!(
        (bg.submitted, bg.accepted, bg.rejected, bg.queued),
        (2, 1, 1, 1)
    );
    assert_eq!(
        (fg.submitted, fg.accepted, fg.rejected, fg.queued),
        (5, 4, 1, 4)
    );
    assert!(stats.conserved());
    let stats = server.shutdown(ShutdownMode::Cancel);
    assert_eq!(stats.cancelled, 5);
    assert!(stats.conserved());
}

/// A repeated query completes from the result cache at admission time —
/// same bytes as the engine, no worker involved, counted as a hit.
#[test]
fn cache_hits_complete_at_admission_with_identical_bytes() {
    let server = Server::spawn(env(3), ServeConfig::new().workers(1));
    let query = Query::tnn(points(1)[0]).issued_at(11);
    let expect = server.engine().run(&query).unwrap();
    let first = server.submit(query.clone()).unwrap().wait().unwrap();
    let hit = server.submit(query.clone()).unwrap();
    // The hit resolved inside submit — poll it, never wait.
    let outcome = hit
        .poll()
        .expect("admission hit resolves synchronously")
        .unwrap();
    assert_eq!(first, expect);
    assert_eq!(outcome, expect, "cache hit is byte-identical");
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
    assert_eq!(stats.completed, 2);
    assert!(stats.conserved());
    assert!(stats.cache_hit_rate() > 0.0);
    let cache = server.cache_stats().expect("cache enabled by default");
    assert_eq!((cache.hits, cache.insertions), (1, 1));
}

/// Queries differing in any outcome-affecting field miss each other's
/// cache entries; errors are never cached at all.
#[test]
fn distinct_keys_and_errors_do_not_hit() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(1));
    let p = points(1)[0];
    server.submit(Query::tnn(p)).unwrap().wait().unwrap();
    // Same point, different issue slot: a different answer schedule.
    server
        .submit(Query::tnn(p).issued_at(5))
        .unwrap()
        .wait()
        .unwrap();
    // Errors run the engine every time (classified bypass, never stored).
    let nan = Query::tnn(Point::new(f64::NAN, 0.0));
    for _ in 0..2 {
        assert_eq!(
            server.submit(nan.clone()).unwrap().wait(),
            Err(TnnError::NonFiniteQuery)
        );
    }
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.cache_bypass, 2);
    assert!(stats.conserved());
}

/// With a TTL, a stale entry is refreshed by the next repeat (classified
/// `cache_expired`, not a miss) instead of being served.
#[test]
fn cache_ttl_refreshes_stale_entries() {
    let server = Server::spawn(
        env(2),
        ServeConfig::new()
            .workers(1)
            .cache(CacheConfig::new().ttl(Some(Duration::ZERO))),
    );
    let query = Query::tnn(points(1)[0]);
    server.submit(query.clone()).unwrap().wait().unwrap();
    server.submit(query.clone()).unwrap().wait().unwrap();
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(
        (stats.cache_hits, stats.cache_misses, stats.cache_expired),
        (0, 1, 1)
    );
    assert!(stats.conserved());
}

/// Disabling the cache reproduces uncached serving: every completion is
/// a bypass and repeats run the engine.
#[test]
fn disabled_cache_bypasses_everything() {
    let server = Server::spawn(
        env(2),
        ServeConfig::new().workers(1).cache(CacheConfig::disabled()),
    );
    let query = Query::tnn(points(1)[0]);
    let a = server.submit(query.clone()).unwrap().wait().unwrap();
    let b = server.submit(query).unwrap().wait().unwrap();
    assert_eq!(a, b);
    assert!(server.cache_stats().is_none());
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.cache_bypass, 2);
    assert_eq!(
        stats.cache_hits + stats.cache_misses + stats.cache_expired,
        0
    );
    assert!(stats.conserved());
}

/// Mixed-class batch admission is atomic with respect to the workers:
/// with everything queued before the first pop, strict priority means
/// every interactive job completes before any background one starts.
#[test]
fn strict_priority_never_inverts_across_an_atomic_batch() {
    let server = Server::spawn(
        env(2),
        ServeConfig::new()
            .workers(1)
            .cache(CacheConfig::disabled())
            .batch_window(4),
    );
    let pts = points(60);
    let submissions: Vec<(Query, Qos)> = pts[..30]
        .iter()
        .map(|p| (Query::tnn(*p), Qos::background()))
        .chain(
            pts[30..]
                .iter()
                .map(|p| (Query::tnn(*p), Qos::interactive())),
        )
        .collect();
    let tickets: Vec<_> = server
        .submit_batch_qos(submissions)
        .into_iter()
        .map(|t| t.unwrap())
        .collect();
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.completed, 60);
    assert!(stats.conserved());
    // One submission stamp for the whole batch, resolver-stamped
    // completions: latency order is completion order.
    let background_latencies: Vec<_> = tickets[..30].iter().map(|t| t.latency().unwrap()).collect();
    let interactive_latencies: Vec<_> =
        tickets[30..].iter().map(|t| t.latency().unwrap()).collect();
    let last_interactive = interactive_latencies.iter().max().unwrap();
    let first_background = background_latencies.iter().min().unwrap();
    assert!(
        last_interactive <= first_background,
        "a background job completed before an interactive one \
         (interactive max {last_interactive:?}, background min {first_background:?})"
    );
    // And within each class, completion stays FIFO in submission order.
    for window in interactive_latencies.windows(2) {
        assert!(window[0] <= window[1], "within-class order inverted");
    }
    for window in background_latencies.windows(2) {
        assert!(window[0] <= window[1], "within-class order inverted");
    }
}

/// Shutdown modes respect classes too: per-class conservation holds and
/// every ticket resolves, whatever lane it sat in.
#[test]
fn cancel_shutdown_accounts_per_class() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(0));
    let pts = points(9);
    let tickets: Vec<_> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let qos = match i % 3 {
                0 => Qos::interactive(),
                1 => Qos::batch(),
                _ => Qos::background(),
            };
            server.submit_with(Query::tnn(*p), qos).unwrap()
        })
        .collect();
    let stats = server.shutdown(ShutdownMode::Cancel);
    assert!(stats.conserved());
    for class in Priority::ALL {
        let c = stats.class(class);
        assert_eq!((c.accepted, c.cancelled), (3, 3), "{}", class.name());
        assert!(c.conserved(), "{}", class.name());
    }
    for ticket in &tickets {
        assert_eq!(ticket.wait(), Err(TnnError::Cancelled));
    }
}
