//! Regression tests for the fault-injection serving path: panic
//! isolation, worker respawn (and its bound), deadline-aware retries,
//! degradation tagging/caching rules, and retry budgets.

// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::Duration;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{Algorithm, Query, TnnError};
use tnn_geom::Rect;
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{
    ChannelFaults, Degradation, FaultPlan, Priority, Qos, RetryPolicy, ServeConfig, Server,
    ShutdownMode,
};

fn env(k: usize) -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let trees: Vec<Arc<RTree>> = (0..k)
        .map(|i| {
            let pts = tnn_datasets::uniform_points(100 + 25 * i, &region, 0xFA117 + i as u64);
            Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    let phases: Vec<u64> = (0..k as u64).map(|i| i * 5 + 3).collect();
    MultiChannelEnv::new(trees, params, &phases)
}

fn queries(n: usize) -> Vec<Query> {
    tnn_datasets::uniform_points(n, &Rect::from_coords(0.0, 0.0, 1000.0, 1000.0), 0xDEAD)
        .into_iter()
        .map(Query::tnn)
        .collect()
}

/// A plan whose channels are *always* mid-outage at attempt 0 and for
/// far more attempts than any policy in these tests retries.
fn permanent_outage(k: usize, seed: u64) -> FaultPlan {
    FaultPlan::new(seed).all_channels(k, ChannelFaults::NONE.outage(1, 1 << 40))
}

#[test]
fn injected_engine_panic_is_isolated_and_serving_continues() {
    // Panic exactly on the second admitted job (seq 1). The panic must
    // resolve that ticket `Internal` without killing the worker — and
    // the jobs before and after it get real answers.
    let server = Server::spawn_with_faults(
        env(2),
        ServeConfig::new().workers(1),
        FaultPlan::new(7).panic_at(1),
    );
    let qs = queries(3);
    let expect: Vec<_> = qs.iter().map(|q| server.engine().run(q).unwrap()).collect();
    assert_eq!(
        server.submit(qs[0].clone()).unwrap().wait().unwrap(),
        expect[0]
    );
    assert_eq!(
        server.submit(qs[1].clone()).unwrap().wait().unwrap_err(),
        TnnError::Internal
    );
    // The regression this pins down: a panicked query used to fail the
    // server closed — now the very next submission is served normally.
    assert_eq!(
        server.submit(qs[2].clone()).unwrap().wait().unwrap(),
        expect[2]
    );
    let faults = server.fault_stats().unwrap();
    assert_eq!(faults.engine_panics, 1);
    assert_eq!(faults.worker_kills, 0);
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.worker_restarts, 0, "panics are isolated, not fatal");
    assert_eq!(stats.completed, 3);
    assert!(stats.conserved());
}

#[test]
fn worker_kill_respawns_in_place_and_keeps_serving() {
    let server = Server::spawn_with_faults(
        env(2),
        ServeConfig::new().workers(1),
        FaultPlan::new(7).kill_at(0),
    );
    let qs = queries(2);
    // The killed worker abandons the job: its ticket resolves `Internal`
    // when the batch buffer unwinds.
    assert_eq!(
        server.submit(qs[0].clone()).unwrap().wait().unwrap_err(),
        TnnError::Internal
    );
    // The same OS thread respawns and serves the next submission.
    let expect = server.engine().run(&qs[1]).unwrap();
    assert_eq!(
        server.submit(qs[1].clone()).unwrap().wait().unwrap(),
        expect
    );
    assert_eq!(server.fault_stats().unwrap().worker_kills, 1);
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.worker_restarts, 1);
    assert_eq!(stats.completed, 2, "abandoned jobs still complete");
    assert!(stats.conserved());
}

#[test]
fn restart_bound_fails_the_server_closed() {
    let server = Server::spawn_with_faults(
        env(2),
        ServeConfig::new().workers(1).max_worker_restarts(1),
        FaultPlan::new(7).kill_at(0).kill_at(1),
    );
    let qs = queries(3);
    assert_eq!(
        server.submit(qs[0].clone()).unwrap().wait().unwrap_err(),
        TnnError::Internal
    );
    assert_eq!(
        server.submit(qs[1].clone()).unwrap().wait().unwrap_err(),
        TnnError::Internal
    );
    // The second restart exceeds the bound: the pool declares a crash
    // loop and fails closed. The ticket resolving (`Job::drop`) races
    // the restart accounting by a hair, so spin briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().worker_restarts < 2 {
        assert!(std::time::Instant::now() < deadline, "restart not counted");
        std::thread::yield_now();
    }
    assert_eq!(
        server.submit(qs[2].clone()).unwrap_err(),
        TnnError::Cancelled,
        "a crash-looping server refuses new work instead of stranding it"
    );
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.worker_restarts, 2);
    assert!(stats.conserved());
}

#[test]
fn expired_deadline_under_outage_resolves_deadline_exceeded() {
    // A 0-TTL deadline dies while queued; the dequeue check refuses to
    // burn retry time on it even though the channels are mid-outage.
    let server = Server::spawn_with_faults(
        env(2),
        ServeConfig::new().workers(1),
        permanent_outage(2, 11),
    );
    let ticket = server
        .submit_with(
            queries(1)[0].clone(),
            Qos::new().deadline_in(Duration::ZERO),
        )
        .unwrap();
    assert_eq!(ticket.wait().unwrap_err(), TnnError::DeadlineExceeded);
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.expired, 1);
    assert!(stats.conserved());
}

#[test]
fn deadline_expiring_mid_retry_resolves_instead_of_hanging() {
    // Alive at dequeue, dead before the ladder can ever tune in: the
    // retry loop must notice and resolve `DeadlineExceeded` — a retry
    // never outlives the submitter's deadline.
    let server = Server::spawn_with_faults(
        env(2),
        ServeConfig::new().workers(1).retry(
            RetryPolicy::new()
                .max_attempts(u32::MAX)
                .base(Duration::from_micros(500))
                .cap(Duration::from_millis(2)),
        ),
        permanent_outage(2, 13),
    );
    let ticket = server
        .submit_with(
            queries(1)[0].clone(),
            Qos::new().deadline_in(Duration::from_millis(20)),
        )
        .unwrap();
    assert_eq!(
        ticket
            .wait_timeout(Duration::from_secs(10))
            .expect("no hang"),
        Err(TnnError::DeadlineExceeded)
    );
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.expired, 1);
    assert!(stats.retried > 0, "the ladder ran before the deadline hit");
    assert!(stats.conserved());
}

#[test]
fn degraded_outcomes_are_tagged_and_never_cached() {
    let server = Server::spawn_with_faults(
        env(2),
        ServeConfig::new()
            .workers(1)
            .retry(RetryPolicy::NONE)
            .degradation(Degradation::Approximate),
        permanent_outage(2, 17),
    );
    let query = queries(1)[0].clone();
    let mut expect = server
        .engine()
        .run(&query.clone().algorithm(Algorithm::ApproximateTnn))
        .unwrap();
    expect.degraded = true;
    let first = server.submit(query.clone()).unwrap().wait().unwrap();
    assert!(first.degraded);
    assert_eq!(first, expect, "the fallback is a real approximate run");
    // Same query again: a cached degraded answer would hit here — it
    // must not, because degraded outcomes are never inserted.
    let second = server.submit(query).unwrap().wait().unwrap();
    assert!(second.degraded);
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.cache_hits, 0, "degraded answers are not replayed");
    assert_eq!(stats.degraded, 2);
    assert_eq!(stats.cache_bypass, 2);
    assert!(stats.conserved());
}

#[test]
fn replica_degradation_returns_the_exact_answer_tagged() {
    let server = Server::spawn_with_faults(
        env(3),
        ServeConfig::new()
            .workers(1)
            .retry(RetryPolicy::NONE)
            .degradation(Degradation::Replica),
        permanent_outage(3, 19),
    );
    let query = queries(1)[0].clone();
    let mut expect = server.engine().run(&query).unwrap();
    expect.degraded = true;
    let got = server.submit(query).unwrap().wait().unwrap();
    assert_eq!(got, expect, "a replica fallback re-runs the exact query");
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.degraded, 1);
    assert!(stats.conserved());
}

#[test]
fn retries_escape_a_finite_outage_with_the_exact_answer() {
    // Outage of length 2 at every 4th sequence position: attempts count
    // the outage down, so a 4-attempt ladder always escapes — and the
    // answer it then produces is byte-identical to a fault-free run.
    let server = Server::spawn_with_faults(
        env(2),
        ServeConfig::new().workers(1).retry(
            RetryPolicy::new()
                .max_attempts(4)
                .base(Duration::from_micros(100))
                .cap(Duration::from_micros(800)),
        ),
        FaultPlan::new(23).all_channels(2, ChannelFaults::NONE.outage(4, 2)),
    );
    let qs = queries(8);
    for q in &qs {
        let expect = server.engine().run(q).unwrap();
        let got = server.submit(q.clone()).unwrap().wait().unwrap();
        assert!(!got.degraded);
        assert_eq!(got, expect);
    }
    let faults = server.fault_stats().unwrap();
    assert!(faults.outages > 0, "the outage schedule actually fired");
    let stats = server.shutdown(ShutdownMode::Drain);
    assert!(stats.retried > 0);
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.degraded, 0);
    assert!(stats.conserved());
}

#[test]
fn exhausted_retry_budget_skips_the_ladder() {
    // One retry attempt in the Batch pool, endless outage, Fail
    // degradation: the first job spends the budget on its single retry,
    // the second cannot retry at all.
    let server = Server::spawn_with_faults(
        env(2),
        ServeConfig::new()
            .workers(1)
            .retry(
                RetryPolicy::new()
                    .max_attempts(8)
                    .base(Duration::from_micros(100)),
            )
            .retry_budget(Priority::Batch, 1),
        permanent_outage(2, 29),
    );
    let qs = queries(2);
    for q in &qs {
        let err = server.submit(q.clone()).unwrap().wait().unwrap_err();
        assert!(
            matches!(err, TnnError::ChannelUnavailable { .. }),
            "Fail degradation surfaces the recoverable error: {err:?}"
        );
    }
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.retried, 1, "exactly the budgeted retry was taken");
    assert!(stats.conserved());
}

#[test]
fn zero_fault_plan_keeps_stats_clean() {
    let server =
        Server::spawn_with_faults(env(2), ServeConfig::new().workers(2), FaultPlan::none());
    let qs = queries(10);
    for q in &qs {
        let expect = server.engine().run(q).unwrap();
        assert_eq!(server.submit(q.clone()).unwrap().wait().unwrap(), expect);
    }
    let faults = server.fault_stats().unwrap();
    assert_eq!(faults.injected(), 0);
    assert_eq!(faults.clean_rounds, 10);
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(
        (stats.retried, stats.degraded, stats.worker_restarts),
        (0, 0, 0)
    );
    assert!(stats.conserved());
}

#[test]
fn latency_histograms_cover_every_completion() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(2));
    let tickets: Vec<_> = queries(30)
        .into_iter()
        .map(|q| server.submit(q).unwrap())
        .collect();
    for t in &tickets {
        t.wait().unwrap();
    }
    let stats = server.shutdown(ShutdownMode::Drain);
    let recorded: u64 = stats.classes.iter().map(|c| c.latency.count()).sum();
    assert_eq!(recorded, 30, "every completion records one latency");
    let batch = &stats.classes[Priority::Batch.index()];
    assert!(batch.latency.p50() <= batch.latency.p99());
    assert!(batch.latency.p99() > Duration::ZERO);
    assert!(stats.conserved());
}
