//! Behavioural tests for the serving subsystem: ticket lifecycle,
//! backpressure policies, shutdown determinism, and the double-wait
//! regression.

// R1-approved timing module (see check/r1.allow): wall-clock calls are
// deliberate here, so the clippy mirror of the rule is waived file-wide.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::Duration;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{Algorithm, Query, TnnError};
use tnn_geom::{Point, Rect};
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{Backpressure, ServeConfig, Server, ShutdownMode};

fn env(k: usize) -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let trees: Vec<Arc<RTree>> = (0..k)
        .map(|i| {
            let pts = tnn_datasets::uniform_points(120 + 30 * i, &region, 0xC0FFEE + i as u64);
            Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    let phases: Vec<u64> = (0..k as u64).map(|i| i * 7 + 2).collect();
    MultiChannelEnv::new(trees, params, &phases)
}

fn points(n: usize) -> Vec<Point> {
    tnn_datasets::uniform_points(n, &Rect::from_coords(0.0, 0.0, 1000.0, 1000.0), 0xBEEF)
}

/// Spin until the server has completed `n` jobs (bounded).
fn await_completed(server: &Server, n: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().completed < n {
        assert!(
            std::time::Instant::now() < deadline,
            "server did not complete {n} jobs in time: {:?}",
            server.stats()
        );
        std::thread::yield_now();
    }
}

#[test]
fn served_outcomes_equal_direct_engine_runs() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(2));
    for p in points(20) {
        let query = Query::tnn(p).algorithm(Algorithm::HybridNn).issued_at(3);
        let expect = server.engine().run(&query).unwrap();
        let got = server.submit(query).unwrap().wait().unwrap();
        assert_eq!(got, expect);
    }
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.completed, 20);
    assert!(stats.conserved());
}

#[test]
fn wait_is_idempotent_and_poll_after_wait_returns_cache() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(1));
    let ticket = server
        .submit(Query::chain(Point::new(480.0, 520.0)))
        .unwrap();
    let first = ticket.wait();
    // The double-wait footgun: a second wait (and a poll after wait)
    // must return the cached outcome immediately — never hang or panic.
    let second = ticket.wait();
    let polled = ticket.poll().expect("resolved ticket polls Some");
    assert_eq!(first, second);
    assert_eq!(first, polled);
    assert!(ticket.is_done());
    assert!(ticket.latency().is_some());
    // wait_timeout on a resolved ticket is immediate too.
    assert_eq!(
        ticket.wait_timeout(Duration::from_millis(1)),
        Some(first.clone())
    );
    // And the outcome is still the engine's.
    assert_eq!(
        first.unwrap(),
        server
            .engine()
            .run(&Query::chain(Point::new(480.0, 520.0)))
            .unwrap()
    );
}

#[test]
fn reject_policy_errors_at_the_door_when_paused() {
    // A paused (zero-worker) server makes queue occupancy deterministic.
    let server = Server::spawn(
        env(2),
        ServeConfig::new()
            .workers(0)
            .queue_capacity(2)
            .backpressure(Backpressure::Reject),
    );
    let pts = points(3);
    let t1 = server.submit(Query::tnn(pts[0])).unwrap();
    let t2 = server.submit(Query::tnn(pts[1])).unwrap();
    let refused = server.submit(Query::tnn(pts[2]));
    assert_eq!(refused.unwrap_err(), TnnError::Overloaded);
    assert!(t1.poll().is_none());
    assert!(!t2.is_done());
    let stats = server.stats();
    assert_eq!((stats.accepted, stats.rejected, stats.queued), (2, 1, 2));
    assert!(stats.conserved());
    // Shutdown of a paused server resolves the backlog as cancelled —
    // no ticket ever outlives shutdown unresolved.
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.cancelled, 2);
    assert!(stats.conserved());
    assert_eq!(t1.wait().unwrap_err(), TnnError::Cancelled);
    assert_eq!(t2.wait().unwrap_err(), TnnError::Cancelled);
}

#[test]
fn shed_policy_evicts_the_oldest_queued_query() {
    let server = Server::spawn(
        env(2),
        ServeConfig::new()
            .workers(0)
            .queue_capacity(2)
            .backpressure(Backpressure::Shed),
    );
    let pts = points(3);
    let t1 = server.submit(Query::tnn(pts[0])).unwrap();
    let t2 = server.submit(Query::tnn(pts[1])).unwrap();
    // Queue full: admitting the third sheds the *oldest* (t1).
    let t3 = server.submit(Query::tnn(pts[2])).unwrap();
    assert_eq!(t1.wait().unwrap_err(), TnnError::Overloaded);
    assert!(!t2.is_done());
    assert!(!t3.is_done());
    let stats = server.stats();
    assert_eq!((stats.accepted, stats.shed, stats.queued), (3, 1, 2));
    assert!(stats.conserved());
    let stats = server.shutdown(ShutdownMode::Cancel);
    assert_eq!(stats.cancelled, 2);
    assert!(stats.conserved());
}

#[test]
fn block_policy_completes_everything_through_a_tiny_queue() {
    let server = Server::spawn(
        env(2),
        ServeConfig::new()
            .workers(1)
            .queue_capacity(2)
            .backpressure(Backpressure::Block)
            .batch_window(2),
    );
    let tickets: Vec<_> = points(40)
        .into_iter()
        .map(|p| server.submit(Query::tnn(p)).expect("Block never refuses"))
        .collect();
    for t in &tickets {
        assert!(t.wait().is_ok());
    }
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(
        (stats.accepted, stats.completed, stats.rejected),
        (40, 40, 0)
    );
    assert!(stats.conserved());
}

#[test]
fn submit_batch_matches_per_query_submission() {
    let server = Server::spawn(env(3), ServeConfig::new().workers(2).batch_window(4));
    let queries: Vec<Query> = points(12)
        .into_iter()
        .map(|p| Query::tnn(p).algorithm(Algorithm::DoubleNn))
        .collect();
    let expect: Vec<_> = queries
        .iter()
        .map(|q| server.engine().run(q).unwrap())
        .collect();
    let tickets = server.submit_batch(queries);
    assert_eq!(tickets.len(), 12);
    for (ticket, expect) in tickets.into_iter().zip(expect) {
        assert_eq!(ticket.unwrap().wait().unwrap(), expect);
    }
}

#[test]
fn dropped_ticket_does_not_leak_a_queue_slot() {
    let server = Server::spawn(
        env(2),
        ServeConfig::new()
            .workers(1)
            .queue_capacity(1)
            .backpressure(Backpressure::Reject),
    );
    let p = points(1)[0];
    // Fire-and-forget: drop the ticket without ever waiting.
    drop(server.submit(Query::tnn(p)).unwrap());
    await_completed(&server, 1);
    // The slot came back (it was freed when the worker popped the job,
    // not when the ticket was dropped) — a second submission is admitted.
    let t = server.submit(Query::tnn(p)).unwrap();
    assert!(t.wait().is_ok());
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.completed, 2);
    assert!(stats.conserved());
}

#[test]
fn drain_shutdown_finishes_the_backlog() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(1).batch_window(1));
    let tickets: Vec<_> = server
        .submit_batch(points(30).into_iter().map(Query::tnn))
        .into_iter()
        .map(|t| t.unwrap())
        .collect();
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.completed, 30);
    assert_eq!(stats.cancelled, 0);
    assert!(stats.conserved());
    for t in &tickets {
        assert!(t.wait().is_ok(), "drained tickets carry real outcomes");
    }
}

#[test]
fn cancel_shutdown_resolves_every_ticket_deterministically() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(1).batch_window(1));
    let tickets: Vec<_> = server
        .submit_batch(points(50).into_iter().map(Query::tnn))
        .into_iter()
        .map(|t| t.unwrap())
        .collect();
    let stats = server.shutdown(ShutdownMode::Cancel);
    assert!(stats.conserved());
    assert_eq!(stats.completed + stats.cancelled, 50);
    let mut completed = 0u64;
    let mut cancelled = 0u64;
    for t in &tickets {
        // Every ticket is resolved by now — poll, never wait.
        match t.poll().expect("shutdown resolves every ticket") {
            Ok(_) => completed += 1,
            Err(TnnError::Cancelled) => cancelled += 1,
            Err(other) => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!((completed, cancelled), (stats.completed, stats.cancelled));
}

#[test]
fn submissions_during_shutdown_are_refused() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(1));
    let p = points(1)[0];
    std::thread::scope(|scope| {
        let submitter = scope.spawn(|| {
            // Submit until the shutdown takes effect; each pre-shutdown
            // submission must still resolve.
            let mut okayed = 0u64;
            loop {
                match server.submit(Query::tnn(p)) {
                    Ok(ticket) => {
                        let _ = ticket.wait();
                        okayed += 1;
                    }
                    Err(e) => {
                        assert_eq!(e, TnnError::Cancelled);
                        return okayed;
                    }
                }
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        let stats = server.shutdown(ShutdownMode::Drain);
        let okayed = submitter.join().unwrap();
        assert!(stats.conserved());
        // The loop's closing refusal may land after `shutdown` already
        // returned its snapshot (the admission-time cache makes the
        // submitter a pure spinner, so it no longer reliably wins that
        // race); count it from a snapshot taken after the submitter
        // exited, as the stress suite does.
        let stats = server.stats();
        assert!(stats.conserved());
        assert!(stats.rejected >= 1, "the loop ends on a refusal");
        assert!(okayed <= stats.accepted);
    });
}

#[test]
fn shutdown_is_idempotent_and_drop_is_safe_after_it() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(2));
    let t = server.submit(Query::order_free(points(1)[0])).unwrap();
    let first = server.shutdown(ShutdownMode::Drain);
    let second = server.shutdown(ShutdownMode::Cancel);
    assert_eq!(first, second, "second shutdown observes the same stats");
    assert!(t.poll().is_some());
    drop(server);
}

#[test]
fn query_errors_travel_through_tickets_not_submit() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(1));
    let ticket = server
        .submit(Query::tnn(Point::new(f64::NAN, 1.0)))
        .expect("malformed points are a query-level error, not admission");
    assert_eq!(ticket.wait().unwrap_err(), TnnError::NonFiniteQuery);
    server.shutdown(ShutdownMode::Drain);
}

#[test]
#[should_panic(expected = "one phase per channel")]
fn phase_arity_panics_on_the_submitting_thread() {
    let server = Server::spawn(env(2), ServeConfig::new().workers(1));
    let _ = server.submit(Query::tnn(Point::ORIGIN).phases(&[1, 2, 3]));
}

#[test]
fn variant_queries_serve_like_tnn_ones() {
    let server = Server::spawn(env(3), ServeConfig::new().workers(2));
    for p in points(6) {
        for query in [Query::order_free(p), Query::round_trip(p), Query::chain(p)] {
            let expect = server.engine().run(&query).unwrap();
            assert_eq!(server.submit(query).unwrap().wait().unwrap(), expect);
        }
    }
}

#[test]
fn stats_merge_preserves_conservation_and_sums_totals() {
    // Two live servers with different traffic shapes; each snapshot is
    // conserved, and the fold of the two must be conserved with summed
    // totals — the multi-server aggregation the shard router relies on.
    let server_a = Server::spawn(env(2), ServeConfig::new().workers(1));
    let server_b = Server::spawn(env(3), ServeConfig::new().workers(2));
    for p in points(12) {
        let _ = server_a.submit(Query::tnn(p)).unwrap();
        let _ = server_b.submit(Query::chain(p)).unwrap();
        let _ = server_b.submit(Query::round_trip(p)).unwrap();
    }
    let a = server_a.shutdown(ShutdownMode::Drain);
    let b = server_b.shutdown(ShutdownMode::Drain);
    assert!(a.conserved() && b.conserved());

    let folded = tnn_serve::ServeStats::fold([&a, &b]);
    assert!(
        folded.conserved(),
        "folded snapshot broke conservation: {folded:?}"
    );
    assert_eq!(folded.submitted, a.submitted + b.submitted);
    assert_eq!(folded.completed, a.completed + b.completed);
    assert_eq!(folded.cache_hits, a.cache_hits + b.cache_hits);
    for i in 0..folded.classes.len() {
        assert_eq!(
            folded.classes[i].submitted,
            a.classes[i].submitted + b.classes[i].submitted
        );
        assert_eq!(
            folded.classes[i].latency.count(),
            a.classes[i].latency.count() + b.classes[i].latency.count()
        );
    }

    // merge == fold of two, and the empty fold is the zero snapshot.
    let mut merged = a;
    merged.merge(&b);
    assert_eq!(merged, folded);
    let empty = tnn_serve::ServeStats::fold([]);
    assert_eq!(empty, tnn_serve::ServeStats::default());
    assert!(empty.conserved());
}

#[test]
fn stats_merge_of_mid_flight_snapshots_is_conserved() {
    // Conservation is snapshot-exact per server, so folding snapshots
    // taken while work is queued/in flight must also be conserved.
    let server = Server::spawn(env(2), ServeConfig::new().workers(1).queue_capacity(64));
    let tickets: Vec<_> = points(30)
        .into_iter()
        .map(|p| server.submit(Query::tnn(p)).unwrap())
        .collect();
    let live_a = server.stats();
    let live_b = server.stats();
    let folded = tnn_serve::ServeStats::fold([&live_a, &live_b]);
    assert!(
        folded.conserved(),
        "mid-flight fold broke conservation: {folded:?}"
    );
    for t in tickets {
        let _ = t.wait();
    }
    server.shutdown(ShutdownMode::Drain);
}
