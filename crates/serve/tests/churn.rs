//! Behavioural tests for serving under data churn: environment swaps
//! must kill stale cache entries (epoch-stamped keys), post-swap
//! answers must match a fresh engine over the new data, and identical
//! concurrent misses must coalesce into one engine run (singleflight).

use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{Query, TnnError};
use tnn_geom::{Point, Rect};
use tnn_rtree::{PackingAlgorithm, RTree};
use tnn_serve::{ServeConfig, Server, ShutdownMode};

fn env_seeded(k: usize, seed: u64) -> MultiChannelEnv {
    let params = BroadcastParams::new(64);
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let trees: Vec<Arc<RTree>> = (0..k)
        .map(|i| {
            let pts = tnn_datasets::uniform_points(150 + 20 * i, &region, seed + i as u64);
            Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    let phases: Vec<u64> = (0..k as u64).map(|i| i * 5 + 1).collect();
    MultiChannelEnv::new(trees, params, &phases)
}

/// New trees for every channel of `env` — same shape, next epoch.
fn advanced(env: &MultiChannelEnv, seed: u64) -> MultiChannelEnv {
    let params = *env.channel(0).params();
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let trees: Vec<Arc<RTree>> = (0..env.len())
        .map(|i| {
            let pts = tnn_datasets::uniform_points(130 + 10 * i, &region, seed + i as u64);
            Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    env.advance(trees)
}

/// Swapping the environment must make every pre-swap cache entry miss:
/// a query primed before the swap runs fresh afterwards and returns the
/// new data's answer, never the cached pre-swap one.
#[test]
fn env_swap_invalidates_stale_cache_entries() {
    let env = env_seeded(2, 0xC0FFEE);
    let server = Server::spawn(env.clone(), ServeConfig::new().workers(1));
    let query = Query::tnn(Point::new(481.0, 522.0)).issued_at(9);

    // Prime the cache and prove it hits.
    let old_answer = server.submit(query.clone()).unwrap().wait().unwrap();
    let hit = server.submit(query.clone()).unwrap().wait().unwrap();
    assert_eq!(hit, old_answer);
    assert_eq!(server.stats().cache_hits, 1);

    let next = advanced(&env, 0xD00F);
    server.swap_env(next.clone()).unwrap();
    assert_eq!(server.engine().env().epoch(), env.epoch() + 1);

    // Same query bytes, new epoch: the old entry must not be served.
    let fresh = server.submit(query.clone()).unwrap().wait().unwrap();
    let want = server.engine().run(&query).unwrap();
    assert_eq!(fresh, want, "post-swap answer must come from the new data");
    assert_ne!(
        fresh.route, old_answer.route,
        "swapped-in data was chosen to change this answer"
    );
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.cache_hits, 1, "no hit may cross the swap");
    assert_eq!(stats.cache_misses, 2);
    assert!(stats.conserved(), "{stats:?}");
}

/// After a swap, the cache works normally at the new epoch: a repeat
/// query hits, and the hit is byte-identical to a fresh engine run over
/// the swapped-in environment.
#[test]
fn post_swap_cache_hit_equals_fresh_run() {
    let env = env_seeded(3, 0xAB1E);
    let server = Server::spawn(env.clone(), ServeConfig::new().workers(1));
    let next = advanced(&env, 0x5EED);
    server.swap_env(next.clone()).unwrap();

    let query = Query::chain(Point::new(40.0, 900.0)).issued_at(3);
    let first = server.submit(query.clone()).unwrap().wait().unwrap();
    let hit = server.submit(query.clone()).unwrap().wait().unwrap();
    let fresh = tnn_core::QueryEngine::new(next).run(&query).unwrap();
    assert_eq!(first, fresh);
    assert_eq!(hit, fresh, "post-swap hit is byte-identical to fresh run");
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
    assert!(stats.conserved(), "{stats:?}");
}

/// A swap cannot change the environment's shape, and a shut-down server
/// refuses swaps outright.
#[test]
fn swap_env_rejects_shape_changes() {
    let server = Server::spawn(env_seeded(2, 0xFEED), ServeConfig::new().workers(1));
    assert_eq!(
        server.swap_env(env_seeded(3, 0xFEED)),
        Err(TnnError::WrongChannelCount {
            needed: 2,
            available: 3,
        })
    );
    server.shutdown(ShutdownMode::Drain);
}

/// N identical queries admitted in one batch collapse into a single
/// engine run under singleflight: one miss leads, the rest join its
/// flight and resolve from the leader's result — byte-identical, with
/// the followers counted as `cache_coalesced`.
#[test]
fn identical_concurrent_misses_coalesce_into_one_run() {
    let env = env_seeded(2, 0xF11E);
    let server = Server::spawn(
        env.clone(),
        ServeConfig::new()
            .workers(1)
            .queue_capacity(64)
            .singleflight(true),
    );
    let query = Query::order_free(Point::new(250.0, 750.0)).issued_at(5);
    let want = server.engine().run(&query).unwrap();

    // One batch, one queue-lock acquisition: all eight are admitted
    // before the worker can run any of them, so exactly one leads.
    let tickets = server.submit_batch(std::iter::repeat_n(query, 8));
    for ticket in tickets {
        let outcome = ticket.unwrap().wait().unwrap();
        assert_eq!(outcome, want, "followers share the leader's bytes");
    }
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.cache_misses, 1, "one engine run for eight arrivals");
    assert_eq!(stats.cache_coalesced, 7, "{stats:?}");
    assert_eq!(stats.completed, 8);
    assert!(stats.conserved(), "{stats:?}");
}

/// Without the singleflight flag the same batch runs (or cache-hits)
/// each query individually — coalescing is strictly opt-in.
#[test]
fn singleflight_is_opt_in() {
    let server = Server::spawn(env_seeded(2, 0xF12E), ServeConfig::new().workers(1));
    let query = Query::order_free(Point::new(250.0, 750.0)).issued_at(5);
    let tickets = server.submit_batch(std::iter::repeat_n(query, 4));
    for ticket in tickets {
        ticket.unwrap().wait().unwrap();
    }
    let stats = server.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.cache_coalesced, 0);
    assert_eq!(stats.cache_hits + stats.cache_misses, 4);
    assert!(stats.conserved(), "{stats:?}");
}
