//! Property-based tests for the geometry kernel: the transitive metrics
//! must bound the true objective on arbitrary configurations, and the exact
//! overlap areas must agree with sampling estimates.

use proptest::prelude::*;
use tnn_geom::{
    circle_rect_overlap_area, ellipse_rect_overlap_area, max_dist, min_max_trans_dist,
    min_trans_dist, transitive_dist, Circle, Ellipse, Point, Rect, Segment,
};

fn point_strategy() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (point_strategy(), point_strategy()).prop_map(|(a, b)| Rect::new(a, b))
}

/// Rect with strictly positive extent in both dimensions.
fn fat_rect_strategy() -> impl Strategy<Value = Rect> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.5f64..50.0,
        0.5f64..50.0,
    )
        .prop_map(|(x, y, w, h)| Rect::from_coords(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// MinTransDist lower-bounds the transitive distance through every
    /// interior and boundary sample of the MBR.
    #[test]
    fn min_trans_dist_is_lower_bound(
        p in point_strategy(),
        r in point_strategy(),
        m in rect_strategy(),
        ti in 0.0f64..1.0,
        tj in 0.0f64..1.0,
    ) {
        let lb = min_trans_dist(p, &m, r);
        let s = Point::new(
            m.min.x + ti * m.width(),
            m.min.y + tj * m.height(),
        );
        prop_assert!(transitive_dist(p, s, r) >= lb - 1e-7);
    }

    /// MinTransDist is *tight*: dense boundary sampling plus per-side
    /// ternary search comes within epsilon of it.
    #[test]
    fn min_trans_dist_is_tight(
        p in point_strategy(),
        r in point_strategy(),
        m in rect_strategy(),
    ) {
        let lb = min_trans_dist(p, &m, r);
        // If the straight segment crosses the rect the optimum is |p−r|.
        let mut best = if Segment::new(p, r).intersects_rect(&m) {
            p.dist(r)
        } else {
            f64::INFINITY
        };
        for side in m.sides() {
            let (mut lo, mut hi) = (0.0f64, 1.0f64);
            for _ in 0..100 {
                let m1 = lo + (hi - lo) / 3.0;
                let m2 = hi - (hi - lo) / 3.0;
                if transitive_dist(p, side.at(m1), r) < transitive_dist(p, side.at(m2), r) {
                    hi = m2;
                } else {
                    lo = m1;
                }
            }
            best = best.min(transitive_dist(p, side.at(lo), r));
        }
        prop_assert!((lb - best).abs() < 1e-6,
            "analytic {lb} vs searched {best} (p={p:?}, r={r:?}, m={m:?})");
    }

    /// MinTransDist can never be less than the direct distance |p−r|
    /// (the triangle inequality through any s).
    #[test]
    fn min_trans_dist_at_least_direct(
        p in point_strategy(),
        r in point_strategy(),
        m in rect_strategy(),
    ) {
        prop_assert!(min_trans_dist(p, &m, r) >= p.dist(r) - 1e-9);
    }

    /// MaxDist upper-bounds the transitive distance through every point of
    /// the segment, and is attained at an endpoint.
    #[test]
    fn max_dist_is_tight_upper_bound(
        p in point_strategy(),
        r in point_strategy(),
        a in point_strategy(),
        b in point_strategy(),
        t in 0.0f64..1.0,
    ) {
        let seg = Segment::new(a, b);
        let ub = max_dist(p, &seg, r);
        prop_assert!(transitive_dist(p, seg.at(t), r) <= ub + 1e-9);
        let at_ends = transitive_dist(p, a, r).max(transitive_dist(p, b, r));
        prop_assert!((ub - at_ends).abs() < 1e-9);
    }

    /// The metric sandwich: MinTransDist ≤ MinMaxTransDist, and every side
    /// has some point within MinMaxTransDist.
    #[test]
    fn metric_sandwich(
        p in point_strategy(),
        r in point_strategy(),
        m in rect_strategy(),
    ) {
        let lb = min_trans_dist(p, &m, r);
        let ub = min_max_trans_dist(p, &m, r);
        prop_assert!(lb <= ub + 1e-9);
    }

    /// Both transitive MBR metrics are symmetric in p and r (the rectangle
    /// sees the same set of paths in either direction).
    #[test]
    fn transitive_metrics_symmetric(
        p in point_strategy(),
        r in point_strategy(),
        m in rect_strategy(),
    ) {
        prop_assert!((min_trans_dist(p, &m, r) - min_trans_dist(r, &m, p)).abs() < 1e-7);
        prop_assert!((min_max_trans_dist(p, &m, r) - min_max_trans_dist(r, &m, p)).abs() < 1e-7);
    }

    /// Circle–rectangle overlap is bounded by both areas and exact against
    /// a grid estimate.
    #[test]
    fn circle_overlap_bounded_and_sane(
        cx in -50.0f64..50.0,
        cy in -50.0f64..50.0,
        rad in 0.1f64..40.0,
        m in fat_rect_strategy(),
    ) {
        let c = Circle::new(Point::new(cx, cy), rad);
        let ov = circle_rect_overlap_area(&c, &m);
        prop_assert!(ov >= -1e-9);
        prop_assert!(ov <= c.area() + 1e-6);
        prop_assert!(ov <= m.area() + 1e-6);
        if !c.intersects_rect(&m) {
            prop_assert!(ov.abs() < 1e-9);
        }
        if c.contains_rect(&m) {
            prop_assert!((ov - m.area()).abs() < 1e-6 * m.area().max(1.0));
        }
    }

    /// Overlap area is monotone in the radius.
    #[test]
    fn circle_overlap_monotone_in_radius(
        cx in -50.0f64..50.0,
        cy in -50.0f64..50.0,
        rad in 0.1f64..40.0,
        extra in 0.0f64..10.0,
        m in fat_rect_strategy(),
    ) {
        let center = Point::new(cx, cy);
        let small = circle_rect_overlap_area(&Circle::new(center, rad), &m);
        let large = circle_rect_overlap_area(&Circle::new(center, rad + extra), &m);
        prop_assert!(large >= small - 1e-7);
    }

    /// Ellipse–rectangle overlap: bounded by both areas, zero for empty
    /// ellipses, consistent with containment.
    #[test]
    fn ellipse_overlap_bounded_and_sane(
        f1 in point_strategy(),
        f2 in point_strategy(),
        slack in 0.0f64..100.0,
        m in fat_rect_strategy(),
    ) {
        let major = f1.dist(f2) + slack;
        let e = Ellipse::new(f1, f2, major);
        let ov = ellipse_rect_overlap_area(&e, &m);
        prop_assert!(ov >= -1e-9);
        prop_assert!(ov <= e.area() + 1e-6 * e.area().max(1.0));
        prop_assert!(ov <= m.area() + 1e-6);
    }

    /// A shrunk ellipse (smaller major axis, same foci) never overlaps more.
    #[test]
    fn ellipse_overlap_monotone_in_major(
        f1 in point_strategy(),
        f2 in point_strategy(),
        slack in 0.1f64..50.0,
        shrink in 0.0f64..1.0,
        m in fat_rect_strategy(),
    ) {
        let major = f1.dist(f2) + slack;
        let big = ellipse_rect_overlap_area(&Ellipse::new(f1, f2, major), &m);
        let small_major = f1.dist(f2) + slack * shrink;
        let small = ellipse_rect_overlap_area(&Ellipse::new(f1, f2, small_major), &m);
        prop_assert!(small <= big + 1e-6 * big.max(1.0));
    }

    /// Rect invariants under union/expand.
    #[test]
    fn rect_union_contains_both(a in rect_strategy(), b in rect_strategy()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    /// MinDist / MinMaxDist / MaxDist ordering for any point and rect.
    #[test]
    fn rect_distance_ordering(p in point_strategy(), m in rect_strategy()) {
        let lo = m.min_dist(p);
        let mid = m.min_max_dist(p);
        let hi = m.max_dist(p);
        prop_assert!(lo <= mid + 1e-9);
        prop_assert!(mid <= hi + 1e-9);
    }

    /// MinDist is achieved by the clamped closest point.
    #[test]
    fn min_dist_matches_closest_point(p in point_strategy(), m in rect_strategy()) {
        prop_assert!((m.min_dist(p) - p.dist(m.closest_point(p))).abs() < 1e-9);
    }

    /// Segment reflection preserves distances to the line's points.
    #[test]
    fn reflection_preserves_line_distance(
        a in point_strategy(),
        b in point_strategy(),
        p in point_strategy(),
        t in 0.0f64..1.0,
    ) {
        prop_assume!(a.dist(b) > 1e-6);
        let seg = Segment::new(a, b);
        let refl = seg.reflect(p);
        let on_line = seg.at(t);
        prop_assert!((on_line.dist(p) - on_line.dist(refl)).abs() < 1e-6);
    }
}
