//! Exact overlap areas between circles/ellipses and rectangles, backing the
//! approximate-NN pruning heuristics of the paper's §5.1:
//!
//! * **Heuristic 1 (circle–rectangle):** prune an R-tree node when the area
//!   of `MBR ∩ circle(p, upper_bound)` is at most `α · area(MBR)`;
//! * **Heuristic 2 (ellipse–rectangle):** the same with the transitive-
//!   distance ellipse (foci `p`, `r`, major axis `upper_bound`).
//!
//! Both reduce to the exact area of intersection between a circle and a
//! convex polygon, computed by clipping each polygon edge against the
//! circle and summing signed triangle and circular-sector contributions
//! (Green's-theorem decomposition). The ellipse case is mapped onto the
//! unit circle by the affine transform of [`Ellipse::to_unit_circle`],
//! which turns the rectangle into a (still convex) parallelogram and
//! scales all areas by `1 / (a·b)`.

use crate::{Circle, Ellipse, Point, Rect};

/// Exact area of `circle ∩ rect` (both treated as filled regions).
pub fn circle_rect_overlap_area(circle: &Circle, rect: &Rect) -> f64 {
    circle_polygon_overlap_area(circle, &rect.corners())
}

/// Exact area of `ellipse ∩ rect`. Zero for empty or degenerate ellipses.
pub fn ellipse_rect_overlap_area(ellipse: &Ellipse, rect: &Rect) -> f64 {
    let Some(map) = ellipse.to_unit_circle() else {
        return 0.0;
    };
    // Affine image of the rectangle: a convex parallelogram with the same
    // orientation (the map's determinant is positive).
    let quad = rect.corners().map(|c| map.apply(c));
    let unit = Circle::new(Point::ORIGIN, 1.0);
    circle_polygon_overlap_area(&unit, &quad) * map.ab
}

/// Exact area of the intersection of a circle and a **convex polygon**
/// given in counter-clockwise order.
///
/// Decomposes the polygon into signed triangles `(center, vᵢ, vᵢ₊₁)` and
/// clips each against the circle: portions of an edge inside the circle
/// contribute triangle area, portions outside contribute circular sectors.
/// The result is exact up to floating-point rounding.
pub fn circle_polygon_overlap_area(circle: &Circle, polygon: &[Point]) -> f64 {
    let n = polygon.len();
    if n < 3 || circle.radius <= 0.0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        let a = polygon[i] - circle.center;
        let b = polygon[(i + 1) % n] - circle.center;
        total += clipped_triangle_area(circle.radius, a, b);
    }
    // A ccw polygon accumulates positive area; guard against tiny negative
    // rounding residue.
    total.max(0.0)
}

/// Signed area of `circle(O, r) ∩ triangle(O, a, b)` with `a`, `b` given
/// relative to the circle center `O`.
fn clipped_triangle_area(r: f64, a: Point, b: Point) -> f64 {
    let cross = a.cross(b);
    if cross == 0.0 {
        return 0.0; // degenerate triangle contributes nothing
    }
    let r2 = r * r;
    let a_in = a.dot(a) <= r2;
    let b_in = b.dot(b) <= r2;
    if a_in && b_in {
        return cross * 0.5;
    }
    // Intersect the segment a→b with the circle: |a + t·(b−a)|² = r².
    let d = b - a;
    let qa = d.dot(d);
    let qb = 2.0 * a.dot(d);
    let qc = a.dot(a) - r2;
    let disc = qb * qb - 4.0 * qa * qc;
    if disc <= 0.0 || qa == 0.0 {
        // The chord misses the segment entirely: the whole wedge is the
        // circular sector between directions a and b.
        return sector_area(r, a, b);
    }
    let sqrt_disc = disc.sqrt();
    let t1 = (-qb - sqrt_disc) / (2.0 * qa);
    let t2 = (-qb + sqrt_disc) / (2.0 * qa);
    if t2 <= 0.0 || t1 >= 1.0 {
        // Intersections fall outside the segment span: all outside.
        return sector_area(r, a, b);
    }
    let t1c = t1.clamp(0.0, 1.0);
    let t2c = t2.clamp(0.0, 1.0);
    let p1 = a + d * t1c;
    let p2 = a + d * t2c;
    // [0, t1c): outside (sector), [t1c, t2c]: inside (triangle),
    // (t2c, 1]: outside (sector). Degenerate pieces have zero angle/area.
    sector_area(r, a, p1) + p1.cross(p2) * 0.5 + sector_area(r, p2, b)
}

/// Signed circular-sector area swept from direction `a` to direction `b`
/// (angle measured via `atan2`, in `(−π, π]`; triangle wedges at the center
/// always subtend less than π).
#[inline]
fn sector_area(r: f64, a: Point, b: Point) -> f64 {
    let ang = a.cross(b).atan2(a.dot(b));
    0.5 * r * r * ang
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const EPS: f64 = 1e-9;

    #[test]
    fn rect_fully_inside_circle() {
        let c = Circle::new(Point::ORIGIN, 10.0);
        let r = Rect::from_coords(-1.0, -1.0, 1.0, 1.0);
        assert!((circle_rect_overlap_area(&c, &r) - 4.0).abs() < EPS);
    }

    #[test]
    fn circle_fully_inside_rect() {
        let c = Circle::new(Point::new(0.5, 0.5), 0.25);
        let r = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert!((circle_rect_overlap_area(&c, &r) - PI * 0.0625).abs() < EPS);
    }

    #[test]
    fn disjoint_is_zero() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        let r = Rect::from_coords(5.0, 5.0, 6.0, 6.0);
        assert!(circle_rect_overlap_area(&c, &r).abs() < EPS);
    }

    #[test]
    fn quarter_circle() {
        // Unit circle at origin ∩ the first-quadrant unit square = quarter disc.
        let c = Circle::new(Point::ORIGIN, 1.0);
        let r = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert!((circle_rect_overlap_area(&c, &r) - PI / 4.0).abs() < EPS);
    }

    #[test]
    fn half_circle() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        let r = Rect::from_coords(0.0, -2.0, 3.0, 2.0);
        assert!((circle_rect_overlap_area(&c, &r) - PI / 2.0).abs() < EPS);
    }

    #[test]
    fn circular_segment_half_radius() {
        // Circle radius 1, half-plane x ≥ 0.5 within a big box: circular
        // segment of area  r²·(θ − sinθ)/2 with θ = 2·acos(0.5).
        let c = Circle::new(Point::ORIGIN, 1.0);
        let r = Rect::from_coords(0.5, -2.0, 3.0, 2.0);
        let theta = 2.0 * 0.5f64.acos();
        let expect = 0.5 * (theta - theta.sin());
        assert!((circle_rect_overlap_area(&c, &r) - expect).abs() < EPS);
    }

    #[test]
    fn zero_radius_circle() {
        let c = Circle::new(Point::new(0.5, 0.5), 0.0);
        let r = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert_eq!(circle_rect_overlap_area(&c, &r), 0.0);
    }

    #[test]
    fn degenerate_rect_zero_area() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        let r = Rect::from_coords(0.0, 0.0, 0.0, 1.0); // zero-width line
        assert!(circle_rect_overlap_area(&c, &r).abs() < EPS);
    }

    fn monte_carlo_circle(c: &Circle, r: &Rect, n: u64) -> f64 {
        // Deterministic low-discrepancy-ish grid over the rect.
        let side = (n as f64).sqrt() as u64;
        let mut hits = 0u64;
        for i in 0..side {
            for j in 0..side {
                let p = Point::new(
                    r.min.x + (i as f64 + 0.5) / side as f64 * r.width(),
                    r.min.y + (j as f64 + 0.5) / side as f64 * r.height(),
                );
                if c.contains(p) {
                    hits += 1;
                }
            }
        }
        hits as f64 / (side * side) as f64 * r.area()
    }

    #[test]
    fn matches_grid_estimate_on_generic_overlaps() {
        let cases = [
            (
                Circle::new(Point::new(0.3, -0.2), 1.3),
                Rect::from_coords(-1.0, -1.0, 1.0, 0.5),
            ),
            (
                Circle::new(Point::new(2.0, 2.0), 2.5),
                Rect::from_coords(0.0, 0.0, 3.0, 1.0),
            ),
            (
                Circle::new(Point::new(-1.0, 0.0), 0.8),
                Rect::from_coords(-0.5, -2.0, 0.5, 2.0),
            ),
        ];
        for (c, r) in cases {
            let exact = circle_rect_overlap_area(&c, &r);
            let approx = monte_carlo_circle(&c, &r, 1_000_000);
            assert!(
                (exact - approx).abs() < 0.01 * r.area().max(1.0),
                "exact {exact}, grid {approx}"
            );
        }
    }

    #[test]
    fn ellipse_full_containment() {
        // Ellipse a=5, b=4 centered at origin inside a huge rectangle.
        let e = Ellipse::new(Point::new(-3.0, 0.0), Point::new(3.0, 0.0), 10.0);
        let r = Rect::from_coords(-10.0, -10.0, 10.0, 10.0);
        assert!((ellipse_rect_overlap_area(&e, &r) - PI * 20.0).abs() < 1e-6);
    }

    #[test]
    fn ellipse_half_overlap() {
        // Axis-aligned ellipse cut by the half-plane x ≥ 0 through its center.
        let e = Ellipse::new(Point::new(-3.0, 0.0), Point::new(3.0, 0.0), 10.0);
        let r = Rect::from_coords(0.0, -10.0, 10.0, 10.0);
        assert!((ellipse_rect_overlap_area(&e, &r) - PI * 10.0).abs() < 1e-6);
    }

    #[test]
    fn empty_ellipse_gives_zero() {
        let e = Ellipse::new(Point::ORIGIN, Point::new(10.0, 0.0), 5.0);
        let r = Rect::from_coords(-10.0, -10.0, 20.0, 10.0);
        assert_eq!(ellipse_rect_overlap_area(&e, &r), 0.0);
    }

    #[test]
    fn degenerate_segment_ellipse_gives_zero() {
        let e = Ellipse::new(Point::ORIGIN, Point::new(4.0, 0.0), 4.0);
        let r = Rect::from_coords(-1.0, -1.0, 5.0, 1.0);
        assert_eq!(ellipse_rect_overlap_area(&e, &r), 0.0);
    }

    fn monte_carlo_ellipse(e: &Ellipse, r: &Rect, n: u64) -> f64 {
        let side = (n as f64).sqrt() as u64;
        let mut hits = 0u64;
        for i in 0..side {
            for j in 0..side {
                let p = Point::new(
                    r.min.x + (i as f64 + 0.5) / side as f64 * r.width(),
                    r.min.y + (j as f64 + 0.5) / side as f64 * r.height(),
                );
                if e.contains(p) {
                    hits += 1;
                }
            }
        }
        hits as f64 / (side * side) as f64 * r.area()
    }

    #[test]
    fn rotated_ellipse_matches_grid_estimate() {
        let e = Ellipse::new(Point::new(0.0, 0.0), Point::new(3.0, 3.0), 8.0);
        let r = Rect::from_coords(0.5, -1.0, 4.0, 2.5);
        let exact = ellipse_rect_overlap_area(&e, &r);
        let approx = monte_carlo_ellipse(&e, &r, 1_000_000);
        assert!(
            (exact - approx).abs() < 0.02 * r.area(),
            "exact {exact}, grid {approx}"
        );
    }

    #[test]
    fn overlap_bounded_by_both_areas() {
        let c = Circle::new(Point::new(1.0, 1.0), 1.7);
        let r = Rect::from_coords(0.0, 0.0, 2.5, 2.0);
        let ov = circle_rect_overlap_area(&c, &r);
        assert!(ov <= c.area() + EPS);
        assert!(ov <= r.area() + EPS);
        assert!(ov >= 0.0);
    }

    #[test]
    fn polygon_triangle_overlap() {
        // Right triangle fully inside a big circle.
        let c = Circle::new(Point::ORIGIN, 100.0);
        let tri = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
        ];
        assert!((circle_polygon_overlap_area(&c, &tri) - 6.0).abs() < EPS);
    }

    #[test]
    fn polygon_with_fewer_than_three_vertices_is_zero() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        assert_eq!(circle_polygon_overlap_area(&c, &[]), 0.0);
        assert_eq!(circle_polygon_overlap_area(&c, &[Point::ORIGIN]), 0.0);
        assert_eq!(
            circle_polygon_overlap_area(&c, &[Point::ORIGIN, Point::new(1.0, 0.0)]),
            0.0
        );
    }
}
