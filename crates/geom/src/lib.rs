//! # tnn-geom
//!
//! 2-D geometry kernel for transitive nearest-neighbor (TNN) query
//! processing over wireless broadcast channels, reproducing the metrics of
//! *Zhang, Lee, Mitra, Zheng: Processing Transitive Nearest-Neighbor Queries
//! in Multi-Channel Access Environments* (EDBT 2008).
//!
//! The crate provides:
//!
//! * [`Point`], [`Rect`], [`Segment`], [`Circle`] and [`Ellipse`] primitives;
//! * the classical R-tree pruning metrics `MinDist` ([`Rect::min_dist`]) and
//!   `MinMaxDist` ([`Rect::min_max_dist`]);
//! * the paper's transitive metrics [`min_trans_dist`] (Definition 1),
//!   [`max_dist`] (Definition 2) and [`min_max_trans_dist`] (Definition 3);
//! * exact circle–rectangle and ellipse–rectangle overlap areas
//!   ([`circle_rect_overlap_area`], [`ellipse_rect_overlap_area`]) backing the
//!   approximate-NN pruning heuristics of the paper's §5.
//!
//! All computations use `f64`. The kernel is allocation-free on every hot
//! path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod circle;
mod ellipse;
mod overlap;
mod point;
mod rect;
mod segment;
mod transit;

pub use circle::Circle;
pub use ellipse::Ellipse;
pub use overlap::{
    circle_polygon_overlap_area, circle_rect_overlap_area, ellipse_rect_overlap_area,
};
pub use point::Point;
pub use rect::Rect;
pub use segment::Segment;
pub use transit::{max_dist, min_max_trans_dist, min_trans_dist, min_trans_dist_via_segment};

/// Convenience alias: Euclidean distance between two points, the paper's
/// `dis(p, s)`.
#[inline]
pub fn dis(p: Point, q: Point) -> f64 {
    p.dist(q)
}

/// Transitive distance `dis(p, s) + dis(s, r)` of the path `p → s → r`
/// (the quantity a TNN query minimizes over `(s, r) ∈ S × R`).
#[inline]
pub fn transitive_dist(p: Point, s: Point, r: Point) -> f64 {
    p.dist(s) + s.dist(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitive_dist_is_sum_of_legs() {
        let p = Point::new(0.0, 0.0);
        let s = Point::new(3.0, 4.0);
        let r = Point::new(3.0, 8.0);
        assert!((transitive_dist(p, s, r) - 9.0).abs() < 1e-12);
        assert!((dis(p, s) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn transitive_dist_triangle_inequality() {
        let p = Point::new(1.0, 2.0);
        let s = Point::new(-4.0, 7.0);
        let r = Point::new(10.0, -3.0);
        assert!(transitive_dist(p, s, r) >= dis(p, r) - 1e-12);
    }
}
