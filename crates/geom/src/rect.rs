//! Axis-aligned rectangles (minimal bounding rectangles, MBRs) and the
//! classical R-tree distance metrics.

use crate::{Point, Segment};
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle, used as the minimal bounding rectangle (MBR)
/// of R-tree nodes. May be degenerate (zero width and/or height); such MBRs
/// arise naturally from collinear or single-point leaf nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners given in any order.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from `(min_x, min_y, max_x, max_y)`.
    ///
    /// # Panics
    /// Panics in debug builds when `min > max` in either dimension.
    #[inline]
    pub fn from_coords(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted rectangle");
        Rect {
            min: Point::new(min_x, min_y),
            max: Point::new(max_x, max_y),
        }
    }

    /// The degenerate rectangle covering a single point.
    #[inline]
    pub fn point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// The smallest rectangle enclosing all points of `pts`.
    ///
    /// Returns `None` for an empty slice.
    pub fn bounding(pts: &[Point]) -> Option<Self> {
        let first = *pts.first()?;
        let mut r = Rect::point(first);
        for &p in &pts[1..] {
            r.expand(p);
        }
        Some(r)
    }

    /// The smallest rectangle enclosing all rectangles of `rects`.
    ///
    /// Returns `None` for an empty slice.
    pub fn bounding_rects(rects: &[Rect]) -> Option<Self> {
        let mut it = rects.iter();
        let mut acc = *it.next()?;
        for r in it {
            acc = acc.union(r);
        }
        Some(acc)
    }

    /// Grows the rectangle (in place) to cover `p`.
    #[inline]
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// The smallest rectangle covering both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area (zero for degenerate rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` when `other` lies entirely inside (or on the boundary of)
    /// `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// `true` when the two rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The four corners in counter-clockwise order starting from the
    /// lower-left corner.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// The four sides as segments, counter-clockwise (bottom, right, top,
    /// left). Sides may be degenerate for degenerate rectangles.
    #[inline]
    pub fn sides(&self) -> [Segment; 4] {
        let [a, b, c, d] = self.corners();
        [
            Segment::new(a, b),
            Segment::new(b, c),
            Segment::new(c, d),
            Segment::new(d, a),
        ]
    }

    /// The point of the rectangle closest to `p` (which is `p` itself when
    /// `p` is inside).
    #[inline]
    pub fn closest_point(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// `MinDist(p, R)`: the minimum distance from `p` to any point of the
    /// rectangle — the classical R-tree lower bound used to prune nodes
    /// during nearest-neighbor search. Zero when `p` is inside.
    #[inline]
    pub fn min_dist(&self, p: Point) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared [`Rect::min_dist`], avoiding the square root for comparisons.
    #[inline]
    pub fn min_dist_sq(&self, p: Point) -> f64 {
        p.dist_sq(self.closest_point(p))
    }

    /// The maximum distance from `p` to any point of the rectangle
    /// (attained at one of the corners).
    #[inline]
    pub fn max_dist(&self, p: Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// `MinMaxDist(p, R)` of Roussopoulos et al. \[15\]: the smallest distance
    /// within which at least one data point of a *non-empty* R-tree node
    /// bounded by this MBR is guaranteed to exist (by the MBR face
    /// property: every face of an R-tree MBR touches at least one point).
    ///
    /// Used as a conservative upper bound to tighten nearest-neighbor
    /// searches before any actual point has been seen.
    #[inline]
    pub fn min_max_dist(&self, p: Point) -> f64 {
        self.min_max_dist_sq(p).sqrt()
    }

    /// Squared [`Rect::min_max_dist`], avoiding the square root for
    /// comparisons (the broadcast NN search runs its whole point-mode
    /// bound arithmetic in squared space).
    pub fn min_max_dist_sq(&self, p: Point) -> f64 {
        // For each axis k: take the *closer* face along k and the *farther*
        // coordinate along the other axis, then minimize over axes.
        let rm_x = if p.x <= (self.min.x + self.max.x) * 0.5 {
            self.min.x
        } else {
            self.max.x
        };
        let rm_y = if p.y <= (self.min.y + self.max.y) * 0.5 {
            self.min.y
        } else {
            self.max.y
        };
        let r_far_x = if p.x >= (self.min.x + self.max.x) * 0.5 {
            self.min.x
        } else {
            self.max.x
        };
        let r_far_y = if p.y >= (self.min.y + self.max.y) * 0.5 {
            self.min.y
        } else {
            self.max.y
        };
        let dx_near = p.x - rm_x;
        let dy_near = p.y - rm_y;
        let dx_far = p.x - r_far_x;
        let dy_far = p.y - r_far_y;
        let along_x = dx_near * dx_near + dy_far * dy_far;
        let along_y = dy_near * dy_near + dx_far * dx_far;
        along_x.min(along_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::from_coords(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn new_normalizes_corner_order() {
        let r = Rect::new(Point::new(2.0, -1.0), Point::new(-3.0, 5.0));
        assert_eq!(r.min, Point::new(-3.0, -1.0));
        assert_eq!(r.max, Point::new(2.0, 5.0));
    }

    #[test]
    fn bounding_of_points() {
        let pts = [
            Point::new(1.0, 4.0),
            Point::new(-2.0, 0.5),
            Point::new(3.0, 2.0),
        ];
        let r = Rect::bounding(&pts).unwrap();
        assert_eq!(r, Rect::from_coords(-2.0, 0.5, 3.0, 4.0));
        assert!(Rect::bounding(&[]).is_none());
    }

    #[test]
    fn union_and_contains_rect() {
        let a = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_coords(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::from_coords(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn geometry_accessors() {
        let r = Rect::from_coords(1.0, 2.0, 4.0, 6.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), Point::new(2.5, 4.0));
    }

    #[test]
    fn containment_includes_boundary() {
        let r = unit();
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(r.contains(Point::new(0.5, 1.0)));
        assert!(!r.contains(Point::new(1.0 + 1e-12, 0.5)));
    }

    #[test]
    fn intersects_touching_edges() {
        let a = unit();
        let b = Rect::from_coords(1.0, 0.0, 2.0, 1.0); // shares the x = 1 edge
        let c = Rect::from_coords(1.1, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn min_dist_outside_and_inside() {
        let r = unit();
        assert_eq!(r.min_dist(Point::new(0.5, 0.5)), 0.0);
        assert_eq!(r.min_dist(Point::new(2.0, 0.5)), 1.0);
        assert!((r.min_dist(Point::new(2.0, 2.0)) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn max_dist_is_farthest_corner() {
        let r = unit();
        let p = Point::new(-1.0, -1.0);
        // Farthest corner is (1, 1), at distance 2·√2.
        assert!((r.max_dist(p) - 2.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn min_max_dist_bounds() {
        let r = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        let p = Point::new(-1.0, 1.0);
        let mmd = r.min_max_dist(p);
        // MinMaxDist must lie between MinDist and the farthest-corner distance.
        assert!(mmd >= r.min_dist(p) - 1e-12);
        assert!(mmd <= r.max_dist(p) + 1e-12);
        // For this configuration the nearest face is x = 0; its farthest
        // y-coordinate from p is y = 2 at corner distance sqrt(1 + 1) wait:
        // closer face x=0, far y corner => sqrt(1^2 + 1^2). Along y: closer
        // face y=0 or y=2 equidistant (y=0 chosen), far x = 2 => sqrt(1+9).
        assert!((mmd - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_max_dist_degenerate_point_rect() {
        let p = Point::new(3.0, 4.0);
        let r = Rect::point(Point::new(0.0, 0.0));
        assert!((r.min_max_dist(p) - 5.0).abs() < 1e-12);
        assert!((r.min_dist(p) - 5.0).abs() < 1e-12);
        assert!((r.max_dist(p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn corners_are_ccw() {
        let r = Rect::from_coords(0.0, 0.0, 2.0, 1.0);
        let c = r.corners();
        // Shoelace area of ccw polygon is positive.
        let mut area2 = 0.0;
        for i in 0..4 {
            area2 += c[i].cross(c[(i + 1) % 4]);
        }
        assert!(area2 > 0.0);
        assert_eq!(area2 * 0.5, r.area());
    }

    #[test]
    fn closest_point_clamps() {
        let r = unit();
        assert_eq!(r.closest_point(Point::new(2.0, 0.5)), Point::new(1.0, 0.5));
        assert_eq!(
            r.closest_point(Point::new(-1.0, -1.0)),
            Point::new(0.0, 0.0)
        );
        assert_eq!(r.closest_point(Point::new(0.3, 0.7)), Point::new(0.3, 0.7));
    }
}
