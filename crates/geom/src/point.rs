//! 2-D points and the vector arithmetic used throughout the kernel.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` (the paper's `dis(p, s)`).
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`; cheaper when only comparisons
    /// are needed.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length `‖self‖`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (`z` component of the 3-D cross product); positive
    /// when `other` lies counter-clockwise of `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Component-wise midpoint of two points.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation `self + t·(other − self)`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
    }

    #[test]
    fn dist_is_symmetric_and_zero_on_self() {
        let a = Point::new(-2.5, 7.0);
        let b = Point::new(4.0, -1.0);
        assert_eq!(a.dist(b), b.dist(a));
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let e1 = Point::new(1.0, 0.0);
        let e2 = Point::new(0.0, 1.0);
        assert!(e1.cross(e2) > 0.0); // ccw
        assert!(e2.cross(e1) < 0.0); // cw
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.midpoint(b), Point::new(5.0, -2.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Point::new(2.5, -1.0));
    }

    #[test]
    fn conversions() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(p, Point::new(1.5, 2.5));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, 2.5));
    }

    #[test]
    fn is_finite_rejects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
